"""The ``Thing`` base class.

Things are regular objects with three superpowers (paper section 2):

* **Automatic conversion.** Every public attribute that is not listed in
  the class's ``__transient__`` tuple is serialized to JSON when the
  thing is stored on a tag; attributes starting with ``_`` are always
  internal. (In the paper, GSON plus Java's ``transient`` keyword.)
* **save_async.** A thing bound to a tag can be modified freely and then
  saved back; saving is enforced to be asynchronous because it writes the
  full serialized thing to tag memory -- long-lasting and failure-prone.
* **broadcast.** A thing can be pushed to nearby phones over Beam with
  the same asynchronous listener interface; received things arrive
  unbound (they can later be bound by initializing an empty tag).

Synchronous access to attributes is always allowed -- a thing *is* its
cached state -- with the paper's staleness caveat: another phone may have
rewritten the tag since the thing was last read.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.core.listeners import ListenerLike, as_callback
from repro.core.operations import Operation
from repro.core.reference import TagReference
from repro.errors import ThingError
from repro.gson.gson import class_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.things.activity import ThingActivity


class Thing:
    """Base class for objects that live on RFID tags.

    Subclass it, assign public attributes, and pass the owning
    :class:`~repro.things.activity.ThingActivity` to the constructor::

        class WifiConfig(Thing):
            def __init__(self, activity, ssid, key):
                super().__init__(activity)
                self.ssid = ssid
                self.key = key
    """

    __transient__: tuple = ()

    def __init__(self, activity: "ThingActivity") -> None:
        self._activity = activity
        self._reference: Optional[TagReference] = None

    # -- binding -----------------------------------------------------------------

    @property
    def activity(self) -> "ThingActivity":
        return self._activity

    @property
    def reference(self) -> Optional[TagReference]:
        """The tag reference this thing is bound to, or ``None``."""
        return self._reference

    @property
    def is_bound(self) -> bool:
        """Whether this thing is causally connected to a specific tag."""
        return self._reference is not None

    @property
    def tag_uid(self) -> Optional[bytes]:
        return self._reference.uid if self._reference is not None else None

    @property
    def aio(self):
        """Coroutine view: ``await thing.aio.save()`` / ``.refresh()``.

        Same operations and coalescing as ``save_async``/``refresh_async``
        (see :mod:`repro.core.aio`); requires the thing to be bound at
        call time, like the listener-style calls.
        """
        from repro.core.aio import AsyncThing

        return AsyncThing(self)

    def _bind(self, reference: TagReference, activity: "ThingActivity") -> None:
        self._reference = reference
        self._activity = activity

    # -- persistence ----------------------------------------------------------------

    def save_async(
        self,
        on_saved: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
        coalesce: bool = True,
    ) -> Operation:
        """Write this thing's current state back to its tag, asynchronously.

        ``on_saved(thing)`` runs on the main thread after the serialized
        state physically reached the tag; ``on_failed()`` runs when the
        operation timed out or failed permanently. Raises
        :class:`~repro.errors.ThingError` when the thing is not bound.

        Saves coalesce by default: while the tag is out of range,
        consecutive queued saves collapse to the newest serialized state
        and land in one physical write, with every ``on_saved`` still
        firing in FIFO order (the tag holds a state at least as new as
        the one each save captured). Pass ``coalesce=False`` to force
        every save onto the tag individually.
        """
        reference = self._require_bound("save")
        saved = as_callback(on_saved)
        failed = as_callback(on_failed)
        return reference.write(
            self,
            on_written=lambda _ref: saved(self),
            on_failed=lambda _ref: failed(),
            timeout=timeout,
            coalesce=coalesce,
        )

    def refresh_async(
        self,
        on_refreshed: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> Operation:
        """Re-read the tag and update this thing's attributes in place.

        The asynchronous alternative to trusting the cache in critical
        cases (paper section 2.3). On success the freshly deserialized
        state is copied into this object and ``on_refreshed(thing)`` runs.
        """
        reference = self._require_bound("refresh")
        refreshed = as_callback(on_refreshed)
        failed = as_callback(on_failed)

        def absorb(ref: TagReference) -> None:
            fresh = ref.cached
            if isinstance(fresh, Thing):
                self._copy_public_fields_from(fresh)
                refreshed(self)
            else:
                failed()

        return reference.read(
            on_read=absorb,
            on_failed=lambda _ref: failed(),
            timeout=timeout,
        )

    # -- broadcast --------------------------------------------------------------------

    def broadcast(
        self,
        on_success: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> Operation:
        """Push this thing to any phone in Beam range, asynchronously.

        ``on_success(thing)`` / ``on_failed(thing)`` run on the main
        thread, per the paper's ``ThingBroadcast*Listener`` signatures.
        The receiving phone's ``ThingActivity`` sees the thing through its
        standard ``when_discovered`` callback, unbound to any tag.
        """
        succeeded = as_callback(on_success)
        failed = as_callback(on_failed)
        beamer = self._activity.thing_beamer
        return beamer.beam(
            self,
            on_success=lambda: succeeded(self),
            on_failed=lambda: failed(self),
            timeout=timeout,
        )

    # -- helpers ------------------------------------------------------------------------

    def public_fields(self) -> dict:
        """The attributes that participate in serialization."""
        skip = class_plan(type(self)).transients  # cached per class
        return {
            name: value
            for name, value in self.__dict__.items()
            if not name.startswith("_") and name not in skip
        }

    def _copy_public_fields_from(self, other: "Thing") -> None:
        for name, value in other.public_fields().items():
            setattr(self, name, value)

    def _require_bound(self, verb: str) -> TagReference:
        if self._reference is None:
            raise ThingError(
                f"cannot {verb} an unbound thing; initialize it onto an empty "
                "tag first (when_discovered_empty -> EmptyRecord.initialize)"
            )
        return self._reference

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in sorted(self.public_fields().items()))
        bound = self._reference.uid_hex if self._reference else "unbound"
        return f"{type(self).__name__}({fields}) [{bound}]"
