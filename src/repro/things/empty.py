"""``EmptyRecord``: the special thing denoting an empty RFID tag.

Paper section 2.2: ``when_discovered_empty`` is triggered with an
``EmptyRecord`` whenever an empty tag is scanned; its ``initialize``
method binds a not-yet-bound thing to that tag by (asynchronously)
writing the serialized thing into the tag's memory. Factory-blank
(unformatted) tags are handled too: an NDEF format operation is queued
ahead of the write, and the reference's in-order queue guarantees the
sequencing.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.listeners import ListenerLike, as_callback
from repro.core.operations import Operation
from repro.core.reference import TagReference
from repro.errors import ThingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.things.activity import ThingActivity
    from repro.things.thing import Thing


class EmptyRecord:
    """A handle on one empty (or factory-blank) tag."""

    def __init__(self, reference: TagReference, activity: "ThingActivity") -> None:
        self._reference = reference
        self._activity = activity

    @property
    def reference(self) -> TagReference:
        return self._reference

    @property
    def tag_uid(self) -> bytes:
        return self._reference.uid

    @property
    def is_formatted(self) -> bool:
        return self._reference.tag.simulated.is_ndef_formatted

    def initialize(
        self,
        thing: "Thing",
        on_saved: ListenerLike = None,
        on_save_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> Operation:
        """Bind ``thing`` to this empty tag by writing it, asynchronously.

        On success the thing becomes bound to the tag's reference and
        ``on_saved(thing)`` runs on the main thread; on timeout or
        permanent failure ``on_save_failed()`` runs and the thing stays
        unbound. Initializing an already-bound thing raises
        :class:`~repro.errors.ThingError` -- a thing is causally connected
        to at most one tag.
        """
        from repro.things.thing import Thing  # local: import cycle

        if not isinstance(thing, Thing):
            raise ThingError(
                f"can only initialize Thing instances, got {type(thing).__name__}"
            )
        if thing.is_bound:
            raise ThingError(
                "this thing is already bound to a tag; create a new thing "
                "or broadcast this one instead"
            )
        saved = as_callback(on_saved)
        failed = as_callback(on_save_failed)
        if not self.is_formatted:
            # Queued ahead of the write; in-order processing sequences them.
            self._reference.format(timeout=timeout)

        def bind_and_signal(reference: TagReference) -> None:
            thing._bind(reference, self._activity)  # noqa: SLF001 - layer-internal
            saved(thing)

        return self._reference.write(
            thing,
            on_written=bind_and_signal,
            on_failed=lambda _ref: failed(),
            timeout=timeout,
        )

    def __repr__(self) -> str:
        return f"EmptyRecord(tag={self._reference.uid_hex}, formatted={self.is_formatted})"
