"""MORENA's highest abstraction layer: *things* (paper section 2).

A **thing** is a plain application object that is causally connected to a
specific RFID tag: it can be used like any object, and in addition be
initialized onto an empty tag, saved back to its tag, and broadcast to
nearby phones -- always asynchronously, with success/failure listener
pairs, and with serialization (GSON-style JSON) handled automatically.

* :class:`~repro.things.thing.Thing` -- base class; public, non-transient
  attributes are what gets stored on the tag.
* :class:`~repro.things.activity.ThingActivity` -- an activity
  parametrized (via the ``THING_CLASS`` attribute) with the thing type it
  interacts with; override ``when_discovered`` and
  ``when_discovered_empty``. (The paper spells both as overloads of
  ``whenDiscovered``; Python has no overloading, hence two names.)
* :class:`~repro.things.empty.EmptyRecord` -- the special thing denoting
  an empty tag; its ``initialize`` binds a fresh thing to the tag.
* :class:`~repro.things.beamer.ThingBeamer` -- the payload-caching
  Beamer behind ``Thing.broadcast``.
* :mod:`repro.things.listeners` -- ``ThingSavedListener`` and friends.
"""

from repro.things.listeners import (
    ThingBroadcastFailedListener,
    ThingBroadcastSuccessListener,
    ThingInitializeFailedListener,
    ThingInitializedListener,
    ThingSavedListener,
    ThingSaveFailedListener,
)
from repro.things.thing import Thing
from repro.things.empty import EmptyRecord
from repro.things.activity import ThingActivity
from repro.things.beamer import ThingBeamer

__all__ = [
    "Thing",
    "ThingActivity",
    "ThingBeamer",
    "EmptyRecord",
    "ThingSavedListener",
    "ThingSaveFailedListener",
    "ThingInitializedListener",
    "ThingInitializeFailedListener",
    "ThingBroadcastSuccessListener",
    "ThingBroadcastFailedListener",
]
