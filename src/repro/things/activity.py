"""``ThingActivity``: the activity type of the things layer.

Paper section 2.1: a ``ThingActivity`` is parametrized with the type of
things it interacts with; internally it captures all low-level Android
events and triggers the correct actions on the associated thing objects.

Python rendition: subclass and set the ``THING_CLASS`` attribute::

    class WifiJoinerActivity(ThingActivity):
        THING_CLASS = WifiConfig

        def when_discovered(self, thing):
            ...
        def when_discovered_empty(self, empty):
            ...

The MIME type stored on tags is derived from the thing class
(``application/vnd.morena.<classname>``), the converters are GSON-style
JSON, and broadcast reception is wired to the same ``when_discovered``
callback (section 2.5: received things arrive unbound).
"""

from __future__ import annotations

from typing import Any, Optional, Type

from repro.core.beam import Beamer, BeamReceivedListener
from repro.core.converters import JsonToObjectConverter, ObjectToJsonConverter
from repro.core.discovery import TagDiscoverer
from repro.core.nfc_activity import NFCActivity
from repro.core.reference import TagReference
from repro.errors import ThingError
from repro.gson import Gson
from repro.ndef.message import NdefMessage
from repro.things.empty import EmptyRecord
from repro.things.thing import Thing


def thing_mime_type(thing_class: Type[Thing]) -> str:
    """The MIME type under which ``thing_class`` instances are stored."""
    return f"application/vnd.morena.{thing_class.__name__.lower()}"


class _ThingReadConverter(JsonToObjectConverter):
    """JSON -> thing: version-migrated, re-attached to the activity, unbound."""

    def __init__(self, activity: "ThingActivity", gson: Optional[Gson] = None) -> None:
        super().__init__(activity.THING_CLASS, gson)
        self._activity = activity

    def convert(self, message: NdefMessage) -> Any:
        import json

        from repro.errors import ConverterError

        if not len(message):
            raise ConverterError("message has no records")
        try:
            data = json.loads(message[0].payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ConverterError(f"tag does not hold JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConverterError("thing payload is not a JSON object")
        stored_version = int(data.pop("_schema", 1))
        current_version = self._activity.schema_version
        if stored_version > current_version:
            raise ConverterError(
                f"tag written by schema version {stored_version}, this "
                f"application understands up to {current_version}"
            )
        if stored_version < current_version:
            data = self._activity.migrate_thing_data(data, stored_version)
        try:
            thing = self._gson.from_jsonable(data, self.target_class)
        except Exception as exc:
            raise ConverterError(
                f"cannot deserialize into {self.target_class.__name__}: {exc}"
            ) from exc
        # Gson revives without __init__; give the thing its internals back.
        thing._activity = self._activity  # noqa: SLF001 - layer-internal
        thing._reference = None  # noqa: SLF001 - bound later, if at all
        return thing


class _ThingWriteConverter(ObjectToJsonConverter):
    """Thing -> JSON, stamped with the activity's schema version."""

    def __init__(self, activity: "ThingActivity", gson: Optional[Gson] = None) -> None:
        super().__init__(thing_mime_type(activity.THING_CLASS), gson)
        self._activity = activity

    def to_text(self, obj: Any) -> str:
        """The canonical JSON text for ``obj`` -- also the payload-cache
        key :class:`repro.things.beamer.ThingBeamer` compares on."""
        import json

        from repro.errors import ConverterError

        try:
            data = self._gson.to_jsonable(obj)
        except Exception as exc:
            raise ConverterError(
                f"cannot serialize {type(obj).__name__}: {exc}"
            ) from exc
        if self._activity.schema_version != 1:
            data["_schema"] = self._activity.schema_version
        return json.dumps(data, sort_keys=True)

    def convert(self, obj: Any) -> NdefMessage:
        from repro.ndef.mime import mime_record

        text = self.to_text(obj)
        return NdefMessage([mime_record(self.mime_type, text.encode("utf-8"))])


class _ThingDiscoverer(TagDiscoverer):
    """The internal discoverer every ThingActivity runs on."""

    def __init__(self, activity: "ThingActivity", **kwargs) -> None:
        self._thing_activity = activity
        super().__init__(
            activity,
            thing_mime_type(activity.THING_CLASS),
            _ThingReadConverter(activity, activity.gson),
            _ThingWriteConverter(activity, activity.gson),
            accept_empty=True,
            **kwargs,
        )

    def check_condition(self, reference: TagReference) -> bool:
        thing = reference.cached
        return isinstance(thing, Thing) and self._thing_activity.check_condition(thing)

    def on_tag_detected(self, reference: TagReference) -> None:
        self._deliver(reference)

    def on_tag_redetected(self, reference: TagReference) -> None:
        self._deliver(reference)

    def on_empty_tag_detected(self, reference: TagReference) -> None:
        self._thing_activity.when_discovered_empty(
            EmptyRecord(reference, self._thing_activity)
        )

    def _deliver(self, reference: TagReference) -> None:
        thing = reference.cached
        if not isinstance(thing, Thing):
            return
        thing._bind(reference, self._thing_activity)  # noqa: SLF001
        self._thing_activity.when_discovered(thing)


class _ThingBeamListener(BeamReceivedListener):
    """Routes received broadcast things into ``when_discovered``."""

    def __init__(self, activity: "ThingActivity") -> None:
        self._thing_activity = activity
        super().__init__(
            activity,
            thing_mime_type(activity.THING_CLASS),
            _ThingReadConverter(activity, activity.gson),
        )

    def check_condition(self, obj: Any) -> bool:
        return isinstance(obj, Thing) and self._thing_activity.check_condition(obj)

    def on_beam_received(self, obj: Any) -> None:
        # Beamed things are not bound to any tag (paper section 2.5).
        self._thing_activity.when_discovered(obj)


class ThingActivity(NFCActivity):
    """Activity base class for applications written at the thing level."""

    THING_CLASS: Type[Thing] = Thing

    def __init__(self, device) -> None:
        if self.THING_CLASS is Thing or not issubclass(self.THING_CLASS, Thing):
            raise ThingError(
                f"{type(self).__name__} must set THING_CLASS to a Thing subclass"
            )
        super().__init__(device)
        self.gson = self.make_gson()
        self._thing_discoverer = _ThingDiscoverer(self)
        self._thing_beam_listener = _ThingBeamListener(self)
        self._thing_beamer: Optional[Beamer] = None

    # -- configuration hooks ------------------------------------------------------

    def make_gson(self) -> Gson:
        """Override to register custom type adapters for thing fields."""
        return Gson()

    # -- schema versioning -----------------------------------------------------------

    @property
    def schema_version(self) -> int:
        """The thing class's on-tag schema version (``SCHEMA_VERSION``)."""
        return int(getattr(self.THING_CLASS, "SCHEMA_VERSION", 1))

    def migrate_thing_data(self, data: dict, from_version: int) -> dict:
        """Upgrade a thing's raw field dict from an older schema version.

        Called before deserialization whenever a scanned tag was written
        by an application with a lower ``SCHEMA_VERSION``. Override to
        rename fields, fill defaults, recompute values. The default keeps
        the data unchanged (new fields simply stay at whatever the class
        leaves them as).
        """
        return data

    # -- the callbacks the application overrides -------------------------------------

    def when_discovered(self, thing: Thing) -> None:
        """A tag holding a thing of ``THING_CLASS`` was scanned, or such a
        thing was received over Beam. Runs on the main thread."""

    def when_discovered_empty(self, empty: EmptyRecord) -> None:
        """An empty (or factory-blank) tag was scanned. Runs on the main
        thread. Use :meth:`EmptyRecord.initialize` to bind a thing to it."""

    def check_condition(self, thing: Thing) -> bool:
        """Fine-grained filter applied before ``when_discovered``."""
        return True

    # -- infrastructure -----------------------------------------------------------------

    @property
    def thing_beamer(self) -> Beamer:
        """The lazily created Beamer used by ``Thing.broadcast``.

        A payload-caching :class:`~repro.things.beamer.ThingBeamer`:
        re-broadcasting an unchanged thing reuses the previous NDEF
        message and its memoized bytes.
        """
        if self._thing_beamer is None:
            from repro.things.beamer import ThingBeamer

            self._thing_beamer = ThingBeamer(
                self, _ThingWriteConverter(self, self.gson)
            )
        return self._thing_beamer

    @property
    def mime_type(self) -> str:
        return thing_mime_type(self.THING_CLASS)
