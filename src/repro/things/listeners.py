"""Listener interfaces of the thing layer.

As in the core layer, success and failure listeners are separate
first-class objects (paper section 2.2), and any plain callable is also
accepted. Success listeners receive the thing; failure listeners receive
no arguments, mirroring the paper's signatures.
"""

from __future__ import annotations

from repro.core.listeners import Listener


class ThingSavedListener(Listener):
    """``signal(thing)`` after a successful save or initialize."""


class ThingSaveFailedListener(Listener):
    """``signal()`` when a save or initialize timed out or failed."""


class ThingInitializedListener(ThingSavedListener):
    """Alias kept for symmetry with the paper's ``initialize`` examples."""


class ThingInitializeFailedListener(ThingSaveFailedListener):
    """Alias kept for symmetry with the paper's ``initialize`` examples."""


class ThingBroadcastSuccessListener(Listener):
    """``signal(thing)`` after the thing was delivered to a peer phone."""


class ThingBroadcastFailedListener(Listener):
    """``signal(thing)`` when the broadcast timed out."""


class ThingRefreshedListener(Listener):
    """``signal(thing)`` after an asynchronous re-read updated the thing."""


class ThingRefreshFailedListener(Listener):
    """``signal()`` when an asynchronous re-read timed out."""
