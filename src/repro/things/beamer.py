"""``ThingBeamer``: a payload-caching Beamer for the things layer.

``Thing.broadcast`` is typically called in application retry loops --
re-broadcast the same inventory item until some peer acknowledges, tick
out the current sensor reading every few seconds. Each ``beam()`` call
used to re-run the whole serialize pipeline (Gson walk -> JSON dump ->
NDEF record build -> byte encode) even when the thing had not changed
between calls.

The Gson side already amortizes per *class* via the serialization-plan
cache; this class amortizes per *value*: it remembers the canonical JSON
text of the last payload and, when an identical text comes back, reuses
the previous :class:`~repro.ndef.message.NdefMessage` -- whose encoded
bytes are memoized, so the repeat broadcast skips record construction
and NDEF encoding entirely. The cache compares serialized text, not
object identity, so a mutated-then-restored thing still hits and a
mutated thing always misses.

``benchmarks/test_bench_codec.py`` measures the effect (the ``beam``
row of ``BENCH_codec.json``).
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.core.beam import Beamer
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record


class ThingBeamer(Beamer):
    """A :class:`Beamer` that memoizes the last converted payload.

    Requires a write converter exposing ``to_text(obj)`` and
    ``mime_type`` (the things layer's ``_ThingWriteConverter`` does);
    any other converter silently degrades to the uncached base path.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._payload_lock = threading.Lock()
        self._cached_text: Optional[str] = None
        self._cached_payload: Optional[NdefMessage] = None
        self.payload_hits = 0
        self.payload_misses = 0

    def _convert_payload(self, obj: Any) -> NdefMessage:
        to_text = getattr(self._write_converter, "to_text", None)
        if to_text is None:  # converter cannot produce a cache key
            return super()._convert_payload(obj)
        text = to_text(obj)
        with self._payload_lock:
            if text == self._cached_text and self._cached_payload is not None:
                self.payload_hits += 1
                return self._cached_payload
        message = NdefMessage(
            [mime_record(self._write_converter.mime_type, text.encode("utf-8"))]
        )
        message.to_bytes()  # memoize the encoding while we are off-looper
        with self._payload_lock:
            self._cached_text = text
            self._cached_payload = message
            self.payload_misses += 1
        return message

    def invalidate_payload_cache(self) -> None:
        with self._payload_lock:
            self._cached_text = None
            self._cached_payload = None
