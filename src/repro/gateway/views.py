"""Materialized fleet views, updated incrementally per ingested batch.

Three views, modeled on the RFID factory-backend shapes (trackerx_live's
``tag_travel_history`` / ``live_dashboard``):

* :class:`TravelHistory` — where one tag has been: a bounded ring of
  station *transitions* (a tag scanned 500 times at the same gate holds
  one entry, not 500), plus lifetime scan counters.
* :class:`StationWindow` — per-station throughput over a sliding
  window, bucketed so memory is bounded by ``window/bucket`` regardless
  of traffic, and **mergeable**: two shards' windows for the same
  station sum bucket-wise. (Stations see many tags, so unlike the
  per-tag views a station's traffic is spread across every shard; the
  global dashboard number is a merge, never a shared counter.)
* :class:`LeaseBoard` — per-tag lease-protocol outcomes; the
  contention leaderboard ranks tags by denials (a denial is the
  protocol's direct evidence that two devices wanted the same tag).

All three are plain data structures with no locking of their own: a
shard mutates its views only inside its serial drain step, under the
shard's views lock; readers go through the shard snapshot methods.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple


class TravelHistory:
    """One tag's station transitions, ring-buffer bounded."""

    __slots__ = ("tag_uid", "entries", "scans", "transitions")

    def __init__(self, tag_uid: str, depth: int = 32) -> None:
        self.tag_uid = tag_uid
        # (station, first_seen_at_seconds) per *transition*.
        self.entries: Deque[Tuple[str, float]] = deque(maxlen=max(1, depth))
        self.scans = 0  # lifetime sightings, coalesced counts included
        self.transitions = 0  # lifetime station changes (ring may forget)

    @property
    def current_station(self) -> Optional[str]:
        return self.entries[-1][0] if self.entries else None

    def observe(self, station: str, at_seconds: float, count: int = 1) -> None:
        self.scans += count
        if not self.entries or self.entries[-1][0] != station:
            self.entries.append((station, at_seconds))
            self.transitions += 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "tag_uid": self.tag_uid,
            "scans": self.scans,
            "transitions": self.transitions,
            "current_station": self.current_station,
            "path": [list(entry) for entry in self.entries],
        }


class StationWindow:
    """Bucketed sliding-window event counter for one station."""

    __slots__ = ("window_seconds", "bucket_seconds", "buckets", "total")

    def __init__(self, window_seconds: float = 60.0, bucket_seconds: float = 5.0) -> None:
        if window_seconds <= 0 or bucket_seconds <= 0:
            raise ValueError("window and bucket sizes must be positive")
        self.window_seconds = window_seconds
        self.bucket_seconds = bucket_seconds
        self.buckets: Dict[int, int] = {}  # bucket index -> event count
        self.total = 0  # lifetime, never trimmed

    def add(self, at_seconds: float, count: int = 1) -> None:
        index = int(at_seconds // self.bucket_seconds)
        self.buckets[index] = self.buckets.get(index, 0) + count
        self.total += count

    def trim(self, now_seconds: float) -> None:
        """Drop buckets that slid out of the window."""
        horizon = int((now_seconds - self.window_seconds) // self.bucket_seconds)
        stale = [index for index in self.buckets if index < horizon]
        for index in stale:
            del self.buckets[index]

    def windowed_count(self, now_seconds: float) -> int:
        horizon = int((now_seconds - self.window_seconds) // self.bucket_seconds)
        return sum(
            count for index, count in self.buckets.items() if index >= horizon
        )

    def rate_per_second(self, now_seconds: float) -> float:
        return self.windowed_count(now_seconds) / self.window_seconds

    def merge(self, other: "StationWindow") -> "StationWindow":
        """Bucket-wise sum; window geometry must match."""
        if (
            self.window_seconds != other.window_seconds
            or self.bucket_seconds != other.bucket_seconds
        ):
            raise ValueError("cannot merge StationWindows with different geometry")
        merged = StationWindow(self.window_seconds, self.bucket_seconds)
        merged.buckets = dict(self.buckets)
        for index, count in other.buckets.items():
            merged.buckets[index] = merged.buckets.get(index, 0) + count
        merged.total = self.total + other.total
        return merged

    def __add__(self, other: "StationWindow") -> "StationWindow":
        return self.merge(other)


class LeaseBoard:
    """Per-tag lease outcomes; leaderboard ranks by contention."""

    __slots__ = ("counts",)

    _FIELDS = ("acquired", "denied", "renewed", "released")

    def __init__(self) -> None:
        # tag_uid -> [acquired, denied, renewed, released]
        self.counts: Dict[str, List[int]] = {}

    def observe(self, kind: str, tag_uid: str, count: int = 1) -> None:
        row = self.counts.get(tag_uid)
        if row is None:
            row = [0, 0, 0, 0]
            self.counts[tag_uid] = row
        # kind arrives as "lease_acquired" etc.; strip the prefix.
        field = kind[6:] if kind.startswith("lease_") else kind
        try:
            row[self._FIELDS.index(field)] += count
        except ValueError:
            raise ValueError(f"unknown lease kind {kind!r}") from None

    def top(self, n: int = 10) -> List[Dict[str, object]]:
        """Most-contended tags first (by denials, then acquisitions)."""
        ranked = sorted(
            self.counts.items(), key=lambda item: (-item[1][1], -item[1][0], item[0])
        )
        return [
            {
                "tag_uid": uid,
                "acquired": row[0],
                "denied": row[1],
                "renewed": row[2],
                "released": row[3],
            }
            for uid, row in ranked[: max(0, n)]
        ]
