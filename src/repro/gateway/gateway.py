"""``FleetGateway``: the in-process server side of the fleet.

Devices (or their :class:`~repro.gateway.reporter.GatewayReporter`)
push :class:`~repro.gateway.events.ScanEvent` records in; N ingestion
shards — each a serial drain task on the supplied
:class:`~repro.core.scheduler.Reactor`, threaded or asyncio backend
alike — pull them out in batches and maintain the materialized views.
The gateway object itself holds no per-event state: ``submit`` is a
stable hash plus a shard enqueue, and a global snapshot is a *merge* of
per-shard snapshots (mergeable :class:`StationWindow` buckets and
:class:`LatencySummary` samples), never a stop-the-world scan.

Determinism: with a :class:`~repro.clock.ManualClock` nothing here
sleeps — shard drains are triggered by wakes (which both reactor
backends service without time passing) and :meth:`drain` is a condition
barrier, so tests advance virtual time only when they want flush
*intervals* to elapse.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.clock import Clock, SystemClock
from repro.gateway.events import ScanEvent, shard_of
from repro.gateway.shard import IngestShard
from repro.gateway.views import StationWindow
from repro.metrics.fairness import LatencySummary


class GatewaySnapshot:
    """One merged, point-in-time reading of the fleet views."""

    __slots__ = ("at_seconds", "telemetry", "station_rates", "lease_leaderboard",
                 "ingest_latency")

    def __init__(
        self,
        at_seconds: float,
        telemetry: Dict[str, object],
        station_rates: Dict[str, Dict[str, object]],
        lease_leaderboard: List[Dict[str, object]],
        ingest_latency: LatencySummary,
    ) -> None:
        self.at_seconds = at_seconds
        self.telemetry = telemetry
        self.station_rates = station_rates
        self.lease_leaderboard = lease_leaderboard
        self.ingest_latency = ingest_latency

    def as_dict(self) -> Dict[str, object]:
        return {
            "at_seconds": self.at_seconds,
            "telemetry": dict(self.telemetry),
            "station_rates": {k: dict(v) for k, v in self.station_rates.items()},
            "lease_leaderboard": [dict(row) for row in self.lease_leaderboard],
            "ingest_latency": self.ingest_latency.as_dict(),
        }


class FleetGateway:
    """Sharded scan-event ingestion with merged live views."""

    def __init__(
        self,
        reactor,
        clock: Optional[Clock] = None,
        shards: int = 4,
        max_queue: int = 8192,
        max_batch: int = 256,
        latency_window: int = 4096,
        history_depth: int = 32,
        window_seconds: float = 60.0,
        bucket_seconds: float = 5.0,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self._reactor = reactor
        self._clock: Clock = clock if clock is not None else SystemClock()
        self._drain_cond = threading.Condition()
        self._shards: List[IngestShard] = [
            IngestShard(
                index,
                reactor,
                self._clock,
                max_queue=max_queue,
                max_batch=max_batch,
                latency_window=latency_window,
                history_depth=history_depth,
                window_seconds=window_seconds,
                bucket_seconds=bucket_seconds,
                on_idle=self._notify_idle,
            )
            for index in range(shards)
        ]
        self._shard_count = shards
        # Reporters register themselves so fleet telemetry can account
        # for device-side shedding too (drops before the gateway ever
        # saw the event), not just shard-queue overflow.
        self._reporters_lock = threading.Lock()
        self._reporters: List[object] = []
        self._closed = False

    # -- wiring ---------------------------------------------------------------------

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def shard_count(self) -> int:
        return self._shard_count

    @property
    def shards(self) -> List[IngestShard]:
        return list(self._shards)

    def register_reporter(self, reporter) -> None:
        with self._reporters_lock:
            self._reporters.append(reporter)

    def _notify_idle(self) -> None:
        with self._drain_cond:
            self._drain_cond.notify_all()

    # -- ingestion ------------------------------------------------------------------

    def submit(self, event: ScanEvent) -> None:
        """Route one event to its tag's shard (non-blocking)."""
        self._shards[shard_of(event.tag_uid, self._shard_count)].submit(event)

    def submit_batch(self, events: List[ScanEvent]) -> None:
        """Split a reporter batch per shard: one lock round per shard."""
        if not events:
            return
        if self._shard_count == 1:
            self._shards[0].submit_many(events)
            return
        per_shard: Dict[int, List[ScanEvent]] = {}
        for event in events:
            per_shard.setdefault(
                shard_of(event.tag_uid, self._shard_count), []
            ).append(event)
        for index, chunk in per_shard.items():
            self._shards[index].submit_many(chunk)

    def drain(self, timeout: float = 10.0) -> bool:
        """Block until every shard queue is empty (or ``timeout`` passes).

        A condition barrier, not a sleep loop: shards notify whenever a
        drain step leaves their queue empty. Returns ``True`` when the
        backlog reached zero.
        """
        deadline = time.monotonic() + timeout
        with self._drain_cond:
            while any(shard.queue_depth for shard in self._shards):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._drain_cond.wait(remaining)
        return True

    # -- merged views ----------------------------------------------------------------

    def travel_history(self, tag_uid: str) -> Optional[Dict[str, object]]:
        """One tag's travel view — a single-shard lookup, no merge."""
        return self._shards[
            shard_of(tag_uid, self._shard_count)
        ].travel_history(tag_uid)

    def station_rates(
        self, now_seconds: Optional[float] = None
    ) -> Dict[str, Dict[str, object]]:
        """Per-station totals and windowed rates, merged across shards."""
        now = self._clock.now() if now_seconds is None else now_seconds
        merged: Dict[str, StationWindow] = {}
        for shard in self._shards:
            for station, window in shard.station_windows().items():
                existing = merged.get(station)
                merged[station] = (
                    window if existing is None else existing.merge(window)
                )
        return {
            station: {
                "total": window.total,
                "windowed": window.windowed_count(now),
                "rate_per_second": window.rate_per_second(now),
            }
            for station, window in sorted(merged.items())
        }

    def lease_leaderboard(self, top: int = 10) -> List[Dict[str, object]]:
        """Most lease-contended tags across the fleet (merged, ranked)."""
        rows: List[Dict[str, object]] = []
        for shard in self._shards:
            for uid, row in shard.lease_rows().items():
                rows.append(
                    {
                        "tag_uid": uid,
                        "acquired": row[0],
                        "denied": row[1],
                        "renewed": row[2],
                        "released": row[3],
                    }
                )
        rows.sort(
            key=lambda row: (-row["denied"], -row["acquired"], row["tag_uid"])
        )
        return rows[: max(0, top)]

    def ingest_latency(self) -> LatencySummary:
        """Exact merged latency percentiles over every shard's ring."""
        return LatencySummary.merged(
            shard.latency_summary() for shard in self._shards
        )

    def telemetry(self) -> Dict[str, object]:
        """Counters only — cheap enough to poll every dashboard tick."""
        shard_stats = [shard.stats_snapshot() for shard in self._shards]
        with self._reporters_lock:
            reporter_dropped = sum(
                getattr(reporter, "dropped", 0) for reporter in self._reporters
            )
            stream_dropped = sum(
                getattr(reporter, "stream_dropped", 0)
                for reporter in self._reporters
            )
            reporter_count = len(self._reporters)
        return {
            "shards": self._shard_count,
            "events_submitted": sum(s["submitted"] for s in shard_stats),
            "events_ingested": sum(s["ingested"] for s in shard_stats),
            "events_dropped_queue": sum(s["dropped"] for s in shard_stats),
            "events_dropped_reporter": reporter_dropped,
            "events_dropped_streams": stream_dropped,
            "batches": sum(s["batches"] for s in shard_stats),
            "queue_depth": sum(s["queue_depth"] for s in shard_stats),
            "queue_high_water": max(s["queue_high_water"] for s in shard_stats),
            "tags_tracked": sum(s["tags_tracked"] for s in shard_stats),
            "reporters": reporter_count,
            "per_shard": shard_stats,
        }

    def snapshot(self, top: int = 10) -> GatewaySnapshot:
        now = self._clock.now()
        return GatewaySnapshot(
            at_seconds=now,
            telemetry=self.telemetry(),
            station_rates=self.station_rates(now),
            lease_leaderboard=self.lease_leaderboard(top),
            ingest_latency=self.ingest_latency(),
        )

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "FleetGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
