"""The fleet gateway: the in-process server side MORENA devices report to.

Devices push tag scan/save/lease events through a batching, coalescing,
bounded :class:`GatewayReporter`; N hash-sharded ingestion queues drain
them on the reactor (threaded or asyncio backend) and maintain
materialized fleet views — per-tag travel history, per-station
throughput windows, and a lease-contention leaderboard — whose global
snapshot is a lock-light merge of per-shard state. See
``docs/API_TOUR.md`` §17 and ``DESIGN.md`` decision 17.

Quickstart::

    from repro.clock import ManualClock
    from repro.core.scheduler import Reactor
    from repro.gateway import FleetGateway, GatewayReporter

    clock = ManualClock()
    reactor = Reactor(clock=clock, name="gateway")
    gateway = FleetGateway(reactor, clock=clock, shards=4)
    reporter = GatewayReporter(gateway, station="gate-0")
    reporter.record("scan", "04a1b2c3", detail="detected")
    reporter.flush()
    gateway.drain()
    print(gateway.snapshot().as_dict())
"""

from repro.gateway.events import EVENT_KINDS, LEASE_KINDS, ScanEvent, shard_of
from repro.gateway.gateway import FleetGateway, GatewaySnapshot
from repro.gateway.reporter import GatewayReporter
from repro.gateway.shard import IngestShard
from repro.gateway.sim import (
    FleetSimStats,
    make_fleet_reporters,
    simulate_fleet,
)
from repro.gateway.views import LeaseBoard, StationWindow, TravelHistory

__all__ = [
    "EVENT_KINDS",
    "LEASE_KINDS",
    "ScanEvent",
    "shard_of",
    "FleetGateway",
    "GatewaySnapshot",
    "GatewayReporter",
    "IngestShard",
    "FleetSimStats",
    "make_fleet_reporters",
    "simulate_fleet",
    "LeaseBoard",
    "StationWindow",
    "TravelHistory",
]
