"""Simulated fleets: replay a churn schedule as gateway traffic.

The crowd generators (:mod:`repro.harness.crowd`) produce *field*
schedules — which tags cross which device's field boundary when. At
fleet-gateway scale (10k devices) instantiating real ``AndroidDevice``
stacks is beside the point: what the gateway sees is the event stream,
so :func:`simulate_fleet` replays a schedule directly through one
:class:`~repro.gateway.reporter.GatewayReporter` per device ("station"),
synthesizing the save/lease mix a real deployment produces:

* every cohort member *entering* a field records a ``scan``;
* a seeded fraction of scans is followed by a ``save`` (the device
  wrote the tag while it dwelt in the field);
* a seeded fraction triggers the lease protocol — mostly acquisitions,
  but a tag already "held" by another simulated device records a
  ``lease_denied``, which is what populates the contention leaderboard
  with the same hot-tag skew the fairness work measured device-side.

Everything is deterministic: one ``random.Random(seed)``, the
schedule's own (seeded) event order, and timestamps from the injected
clock. With a :class:`~repro.clock.ManualClock` the simulator *sets*
the clock to each schedule timestamp, so flush-interval deadlines fire
exactly as a real paced run would — without a single sleep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.clock import ManualClock
from repro.gateway.gateway import FleetGateway
from repro.gateway.reporter import GatewayReporter
from repro.harness.crowd import ChurnSchedule


def make_fleet_reporters(
    gateway: FleetGateway,
    device_count: int,
    reactor=None,
    max_buffer: int = 512,
    max_batch: int = 64,
    flush_interval: Optional[float] = None,
) -> List[GatewayReporter]:
    """One reporter per simulated device, stations named ``station-%04d``."""
    return [
        GatewayReporter(
            gateway,
            f"station-{index:04d}",
            reactor=reactor,
            max_buffer=max_buffer,
            max_batch=max_batch,
            flush_interval=flush_interval,
        )
        for index in range(device_count)
    ]


@dataclass
class FleetSimStats:
    """What one :func:`simulate_fleet` replay generated."""

    schedule: str
    devices: int = 0
    scans: int = 0
    saves: int = 0
    lease_events: int = 0
    denials: int = 0
    events_recorded: int = 0
    virtual_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "schedule": self.schedule,
            "devices": self.devices,
            "scans": self.scans,
            "saves": self.saves,
            "lease_events": self.lease_events,
            "denials": self.denials,
            "events_recorded": self.events_recorded,
            "virtual_seconds": self.virtual_seconds,
        }


def simulate_fleet(
    gateway: FleetGateway,
    schedule: ChurnSchedule,
    reporters: Optional[List[GatewayReporter]] = None,
    save_ratio: float = 0.2,
    lease_ratio: float = 0.1,
    seed: int = 0,
    advance_clock: bool = True,
    on_tick: Optional[Callable[[float], None]] = None,
    tick_seconds: Optional[float] = None,
) -> FleetSimStats:
    """Replay ``schedule`` as reporter traffic against ``gateway``.

    ``on_tick(now)`` fires every ``tick_seconds`` of *schedule* time —
    the hook the CLI uses to print live dashboard frames mid-replay.
    Tags are identified as ``tag-%06d`` by schedule index; lease holds
    are tracked in-simulator so denials land on genuinely
    doubly-wanted tags.
    """
    if reporters is None:
        reporters = make_fleet_reporters(gateway, schedule.device_count)
    if not reporters:
        raise ValueError("need at least one reporter")
    rng = random.Random(seed)
    clock = gateway.clock
    manual = isinstance(clock, ManualClock) and advance_clock
    base = clock.now()
    stats = FleetSimStats(schedule=schedule.name, devices=len(reporters))
    # tag index -> station holding its simulated lease (None = free).
    lease_holders: Dict[int, Optional[str]] = {}
    next_tick = tick_seconds if tick_seconds else None
    for event in schedule:
        if manual and base + event.at_seconds > clock.now():
            clock.set(base + event.at_seconds)
        while (
            next_tick is not None
            and on_tick is not None
            and event.at_seconds >= next_tick
        ):
            on_tick(base + next_tick)
            next_tick += tick_seconds
        if not event.enter:
            continue
        reporter = reporters[event.device_index % len(reporters)]
        station = reporter.station
        for tag_index in event.tag_indices:
            uid = f"tag-{tag_index % schedule.tag_count:06d}"
            reporter.record("scan", uid, detail="detected")
            stats.scans += 1
            roll = rng.random()
            if roll < save_ratio:
                reporter.record("save", uid)
                stats.saves += 1
            if rng.random() < lease_ratio:
                holder = lease_holders.get(tag_index)
                if holder is not None and holder != station:
                    reporter.record("lease_denied", uid, detail=station)
                    stats.denials += 1
                else:
                    reporter.record("lease_acquired", uid, detail=station)
                    lease_holders[tag_index] = station
                stats.lease_events += 1
    for reporter in reporters:
        reporter.flush()
    stats.events_recorded = stats.scans + stats.saves + stats.lease_events
    stats.virtual_seconds = clock.now() - base
    return stats
