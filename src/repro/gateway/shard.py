"""One ingestion shard: a bounded queue drained in batches on the reactor.

A shard owns the slice of tags whose uid hashes to it (see
:func:`repro.gateway.events.shard_of`) and everything derived from
them: their travel histories, their lease-contention rows, and its own
per-station throughput windows (stations span shards; the gateway merges
window objects at snapshot time).

Hot-path discipline:

* ``submit`` runs on producer threads and does the minimum under the
  queue lock — append, bound, high-water — then wakes the drain task.
  When the queue is full the **oldest** event is shed (fresh telemetry
  beats stale telemetry) and the monotonic ``dropped`` counter pays for
  it; overflow is accounted, never silent.
* the drain step is a serial :class:`~repro.core.scheduler.ReactorTask`
  quantum: it swaps out at most ``max_batch`` events under the queue
  lock, applies them to the views under the views lock, and returns an
  immediate deadline while a backlog remains — so one shard never
  monopolizes a reactor worker for longer than a batch.
* ingest latency is sampled per event into a bounded ring
  (``deque(maxlen=...)``), summarized on demand as a
  :class:`~repro.metrics.fairness.LatencySummary` — which is mergeable,
  so the gateway's global percentile is an exact merge of shard rings.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.clock import Clock
from repro.gateway.events import LEASE_KINDS, ScanEvent
from repro.gateway.views import LeaseBoard, StationWindow, TravelHistory
from repro.metrics.fairness import LatencySummary


class IngestShard:
    """Queue + drain task + the views for one hash slice of the fleet."""

    def __init__(
        self,
        index: int,
        reactor,
        clock: Clock,
        max_queue: int = 8192,
        max_batch: int = 256,
        latency_window: int = 4096,
        history_depth: int = 32,
        window_seconds: float = 60.0,
        bucket_seconds: float = 5.0,
        on_idle: Optional[Callable[[], None]] = None,
    ) -> None:
        self.index = index
        self._clock = clock
        self._max_queue = max(1, max_queue)
        self._max_batch = max(1, max_batch)
        self._history_depth = history_depth
        self._window_seconds = window_seconds
        self._bucket_seconds = bucket_seconds
        # Fires (outside locks) whenever a drain step leaves the queue
        # empty -- the gateway's drain() barrier rides on it.
        self._on_idle = on_idle

        # Producer side: queue state, guarded by _lock.
        self._lock = threading.Lock()
        self._queue: List[ScanEvent] = []
        self.submitted = 0  # events accepted into the queue (counts summed)
        self.dropped = 0  # events shed on overflow (monotonic)
        self.queue_high_water = 0

        # Consumer side: views + ingest counters, guarded by _views_lock
        # (written only inside the serial drain step; read by snapshots).
        self._views_lock = threading.Lock()
        self.ingested = 0  # events applied to views (counts summed)
        self.batches = 0
        self._latencies: Deque[float] = deque(maxlen=max(1, latency_window))
        self._travel: Dict[str, TravelHistory] = {}
        self._stations: Dict[str, StationWindow] = {}
        self._lease_board = LeaseBoard()

        self._task = reactor.register(self._drain_step, name=f"gw-shard-{index}")

    # -- producer side -------------------------------------------------------------

    def submit(self, event: ScanEvent) -> None:
        """Enqueue one event (non-blocking; sheds oldest on overflow)."""
        event.enqueued_at = self._clock.now()
        with self._lock:
            queue = self._queue
            queue.append(event)
            depth = len(queue)
            if depth > self._max_queue:
                shed = queue.pop(0)
                self.dropped += shed.count
                depth -= 1
            if depth > self.queue_high_water:
                self.queue_high_water = depth
            self.submitted += event.count
        self._task.wake()

    def submit_many(self, events: List[ScanEvent]) -> None:
        """Batch enqueue: one lock round and one wake for the lot."""
        if not events:
            return
        now = self._clock.now()
        for event in events:
            event.enqueued_at = now
        with self._lock:
            queue = self._queue
            queue.extend(events)
            depth = len(queue)
            overflow = depth - self._max_queue
            if overflow > 0:
                for shed in queue[:overflow]:
                    self.dropped += shed.count
                del queue[:overflow]
                depth -= overflow
            if depth > self.queue_high_water:
                self.queue_high_water = depth
            self.submitted += sum(event.count for event in events)
        self._task.wake()

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- consumer side (serial drain task) -------------------------------------------

    def _drain_step(self) -> Optional[float]:
        with self._lock:
            queue = self._queue
            if not queue:
                batch: List[ScanEvent] = []
                backlog = False
            elif len(queue) <= self._max_batch:
                batch = queue
                self._queue = []
                backlog = False
            else:
                batch = queue[: self._max_batch]
                del queue[: self._max_batch]
                backlog = True
        if batch:
            self._apply_batch(batch)
        if backlog:
            return self._clock.now()  # immediate requeue: keep draining
        if self._on_idle is not None:
            self._on_idle()
        return None

    def _apply_batch(self, batch: List[ScanEvent]) -> None:
        applied_at = self._clock.now()
        with self._views_lock:
            travel = self._travel
            stations = self._stations
            board = self._lease_board
            latencies = self._latencies
            count_total = 0
            for event in batch:
                count_total += event.count
                if event.enqueued_at is not None:
                    latencies.append(applied_at - event.enqueued_at)
                kind = event.kind
                if kind == "scan" or kind == "save":
                    history = travel.get(event.tag_uid)
                    if history is None:
                        history = TravelHistory(event.tag_uid, self._history_depth)
                        travel[event.tag_uid] = history
                    history.observe(event.station, event.at_seconds, event.count)
                elif kind in LEASE_KINDS:
                    board.observe(kind, event.tag_uid, event.count)
                window = stations.get(event.station)
                if window is None:
                    window = StationWindow(self._window_seconds, self._bucket_seconds)
                    stations[event.station] = window
                window.add(event.at_seconds, event.count)
            self.ingested += count_total
            self.batches += 1
            for window in stations.values():
                window.trim(applied_at)

    # -- snapshots (any thread) --------------------------------------------------------

    def travel_history(self, tag_uid: str) -> Optional[Dict[str, object]]:
        with self._views_lock:
            history = self._travel.get(tag_uid)
            return history.as_dict() if history is not None else None

    def station_windows(self) -> Dict[str, StationWindow]:
        """Merged-safe copies of this shard's station windows."""
        with self._views_lock:
            return {
                station: window.merge(StationWindow(
                    self._window_seconds, self._bucket_seconds
                ))
                for station, window in self._stations.items()
            }

    def lease_rows(self) -> Dict[str, List[int]]:
        with self._views_lock:
            return {uid: list(row) for uid, row in self._lease_board.counts.items()}

    def latency_summary(self) -> LatencySummary:
        with self._views_lock:
            return LatencySummary(list(self._latencies))

    def stats_snapshot(self) -> Dict[str, object]:
        with self._lock:
            producer = {
                "queue_depth": len(self._queue),
                "queue_high_water": self.queue_high_water,
                "submitted": self.submitted,
                "dropped": self.dropped,
            }
        with self._views_lock:
            consumer = {
                "ingested": self.ingested,
                "batches": self.batches,
                "tags_tracked": len(self._travel),
            }
        producer.update(consumer)
        return producer

    def close(self) -> None:
        self._task.cancel()
