"""``GatewayReporter``: the device-side end of fleet reporting.

A reporter sits between a device's middleware callbacks and the
gateway, and its one hard rule is that **reporting never blocks the
radio path**: ``record`` is an O(1) append under a short lock, with

* a *bounded* buffer — overflow sheds the **oldest** pending event and
  pays a monotonic ``dropped`` counter (surfaced in gateway telemetry;
  shedding is accounted, never silent);
* *coalescing* — a burst of identical events (same kind/tag/station)
  folds into the tail record's ``count`` instead of queueing
  duplicates, which is what keeps a redetection storm cheap;
* *batched delivery* — the buffer flushes to the gateway either when it
  reaches ``max_batch`` or when ``flush_interval`` elapses on the
  device's reactor (a ``schedule_at`` deadline, so a ManualClock
  advance triggers it deterministically). Without a reactor the
  threshold flush happens inline — still just per-shard queue appends.

The ``attach_*`` methods hook the reporter into the three middleware
surfaces (following RAFDA's policy/logic split, the *device* code never
mentions reporting — attaching a reporter is a deployment decision):

* :meth:`attach_discoverer` — every detection callback becomes a
  ``scan`` event (via ``TagDiscoverer.add_detection_listener``);
* :meth:`attach_reference` — settled write operations become ``save``
  events (via ``TagReference.add_telemetry_listener``);
* :meth:`attach_lease_manager` — lease outcomes become ``lease_*``
  events (via ``LeaseManager.add_lease_listener``).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.gateway.events import ScanEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.discovery import TagDiscoverer
    from repro.core.reference import TagReference
    from repro.gateway.gateway import FleetGateway
    from repro.leasing.manager import LeaseManager


class GatewayReporter:
    """Batches one station's events toward a :class:`FleetGateway`."""

    def __init__(
        self,
        gateway: "FleetGateway",
        station: str,
        reactor=None,
        clock=None,
        max_buffer: int = 512,
        max_batch: int = 64,
        flush_interval: Optional[float] = 0.05,
        coalesce: bool = True,
    ) -> None:
        self._gateway = gateway
        self.station = station
        self._clock = clock if clock is not None else gateway.clock
        self._max_buffer = max(1, max_buffer)
        self._max_batch = max(1, max_batch)
        self._flush_interval = flush_interval
        self._coalesce = coalesce
        self._lock = threading.Lock()
        self._buffer: List[ScanEvent] = []
        self._dropped = 0
        self._coalesced = 0
        self._recorded = 0
        self._closed = False
        self._detachers: List[Callable[[], None]] = []
        self._discoverers: List["TagDiscoverer"] = []
        self._task = (
            reactor.register(self._flush_step, name=f"gw-report-{station}")
            if reactor is not None
            else None
        )
        gateway.register_reporter(self)

    # -- counters --------------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events shed on buffer overflow (monotonic, never resets)."""
        with self._lock:
            return self._dropped

    @property
    def coalesced(self) -> int:
        """Events folded into an existing buffered record."""
        with self._lock:
            return self._coalesced

    @property
    def recorded(self) -> int:
        """Everything record() accepted (shed + coalesced + delivered)."""
        with self._lock:
            return self._recorded

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._buffer)

    @property
    def stream_dropped(self) -> int:
        """Detections shed by attached discoverers' stream() buffers."""
        return sum(d.stream_dropped for d in self._discoverers)

    # -- the hot path ----------------------------------------------------------------

    def record(
        self,
        kind: str,
        tag_uid: str,
        count: int = 1,
        detail: Optional[str] = None,
    ) -> None:
        """Buffer one event; O(1), never blocks on the gateway."""
        at = self._clock.now()
        arm_timer = False
        flush_now = False
        with self._lock:
            if self._closed:
                return
            self._recorded += count
            buffer = self._buffer
            if self._coalesce and buffer:
                tail = buffer[-1]
                if (
                    tail.kind == kind
                    and tail.tag_uid == tag_uid
                    and tail.detail == detail
                    and tail.station == self.station
                ):
                    tail.count += count
                    tail.at_seconds = at
                    self._coalesced += count
                    return
            buffer.append(ScanEvent(kind, tag_uid, self.station, at, count, detail))
            depth = len(buffer)
            if depth > self._max_buffer:
                shed = buffer.pop(0)
                self._dropped += shed.count
                depth -= 1
            if depth >= self._max_batch:
                flush_now = True
            elif depth == 1 and self._task is not None and self._flush_interval:
                arm_timer = True
        if flush_now:
            if self._task is not None:
                self._task.wake()
            else:
                self.flush()
        elif arm_timer:
            self._task.schedule_at(at + self._flush_interval)

    def flush(self) -> int:
        """Push everything buffered to the gateway now; returns batch size."""
        with self._lock:
            if not self._buffer:
                return 0
            batch = self._buffer
            self._buffer = []
        self._gateway.submit_batch(batch)
        return len(batch)

    def _flush_step(self) -> None:
        self.flush()
        return None

    # -- middleware hooks -------------------------------------------------------------

    def attach_discoverer(self, discoverer: "TagDiscoverer") -> None:
        """Report every detection of ``discoverer`` as a ``scan`` event."""

        def on_detection(event: str, reference: "TagReference") -> None:
            self.record("scan", reference.uid_hex, detail=event)

        discoverer.add_detection_listener(on_detection)
        self._discoverers.append(discoverer)
        self._detachers.append(
            lambda: discoverer.remove_detection_listener(on_detection)
        )

    def attach_reference(self, reference: "TagReference") -> None:
        """Report ``reference``'s landed writes as ``save`` events."""
        from repro.core.operations import OperationKind, OperationOutcome

        def on_settled(ref: "TagReference", operation, outcome) -> None:
            if (
                outcome is OperationOutcome.SUCCEEDED
                and operation.kind is OperationKind.WRITE
            ):
                self.record("save", ref.uid_hex)

        reference.add_telemetry_listener(on_settled)
        self._detachers.append(
            lambda: reference.remove_telemetry_listener(on_settled)
        )

    def attach_lease_manager(self, manager: "LeaseManager") -> None:
        """Report ``manager``'s protocol outcomes as ``lease_*`` events."""

        def on_lease(event: str, mgr: "LeaseManager") -> None:
            self.record(
                "lease_" + event, mgr.reference.uid_hex, detail=mgr.device_id
            )

        manager.add_lease_listener(on_lease)
        self._detachers.append(lambda: manager.remove_lease_listener(on_lease))

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Detach hooks, flush the tail, stop the timer task."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            detachers = self._detachers
            self._detachers = []
        for detach in detachers:
            detach()
        self.flush()
        if self._task is not None:
            self._task.cancel()

    def __repr__(self) -> str:
        return f"GatewayReporter({self.station!r}, pending={self.pending})"
