"""The gateway wire unit: one compact, coalescible fleet event.

Devices report three families of happenings — tag sightings (scans),
successful saves (physical writes landing), and leasing outcomes — and
at fleet scale the event record is a hot allocation: 10k devices each
reporting dozens of events per second means hundreds of thousands of
these per bench run. Hence a slotted class, string identifiers (tag
uids travel as the reference's ``uid_hex``, stations as short names)
and a ``count`` field so coalescing can fold a burst of identical
sightings into one record instead of queueing duplicates.

Shard routing hashes the tag uid with :func:`shard_of` (CRC32, not
``hash()`` — Python string hashing is salted per process, and shard
assignment must be reproducible across runs for deterministic tests).
Partitioning by *tag* means every per-tag view (travel history, lease
contention) lives wholly inside one shard, so a global snapshot never
has to reconcile two shards' opinions about the same tag.
"""

from __future__ import annotations

import zlib
from typing import Optional, Tuple

#: Every kind a reporter may record. ``scan`` carries the detection
#: flavour in ``detail`` ("detected"/"redetected"/"empty"); the lease
#: kinds carry the device id of the lease protagonist.
EVENT_KINDS: Tuple[str, ...] = (
    "scan",
    "save",
    "lease_acquired",
    "lease_denied",
    "lease_renewed",
    "lease_released",
)

_KIND_SET = frozenset(EVENT_KINDS)

#: Lease kinds that feed the contention leaderboard.
LEASE_KINDS = frozenset(
    ("lease_acquired", "lease_denied", "lease_renewed", "lease_released")
)


class ScanEvent:
    """One reported fleet event (possibly a coalesced burst).

    ``at_seconds`` is the *device-side* clock reading when the event was
    recorded; ``enqueued_at`` is stamped by the gateway at submission
    and is what ingest latency is measured against (apply time minus
    enqueue time), so a reporter batching events for 50 ms does not
    inflate the gateway's own ingest latency numbers.
    """

    __slots__ = ("kind", "tag_uid", "station", "at_seconds", "count", "detail",
                 "enqueued_at")

    def __init__(
        self,
        kind: str,
        tag_uid: str,
        station: str,
        at_seconds: float,
        count: int = 1,
        detail: Optional[str] = None,
    ) -> None:
        if kind not in _KIND_SET:
            raise ValueError(f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}")
        if count <= 0:
            raise ValueError("event count must be positive")
        self.kind = kind
        self.tag_uid = tag_uid
        self.station = station
        self.at_seconds = at_seconds
        self.count = count
        self.detail = detail
        self.enqueued_at: Optional[float] = None

    def coalesce_key(self) -> Tuple[str, str, str, Optional[str]]:
        """Events with equal keys may fold into one (summing counts)."""
        return (self.kind, self.tag_uid, self.station, self.detail)

    def __repr__(self) -> str:
        burst = f" ×{self.count}" if self.count > 1 else ""
        return (
            f"ScanEvent({self.kind} {self.tag_uid} @ {self.station}"
            f"{burst} t={self.at_seconds:.3f})"
        )


def shard_of(tag_uid: str, shard_count: int) -> int:
    """Stable shard index for ``tag_uid`` — CRC32, salt-free."""
    if shard_count <= 1:
        return 0
    return zlib.crc32(tag_uid.encode("utf-8", "surrogatepass")) % shard_count
