"""Looper / Handler: the Android message-queue threading model.

Each simulated device runs one main looper on its own daemon thread; every
UI callback and every MORENA listener is posted here, which is what keeps
listener execution off the tag references' private threads (paper section
3.2: "listeners ... are always asynchronously scheduled for execution in
the activity's main thread").

The looper supports immediate and delayed posts, a ``sync`` barrier for
tests (post a no-op and wait until it drains), and clean shutdown. Time
for delayed posts flows through the injectable clock so manual-clock
simulations stay deterministic.

Delayed posts are event-driven, never polled: with a real clock the pump
waits exactly until the earliest due time; with a
:class:`~repro.clock.ManualClock` the looper subscribes to advance
notifications and sleeps until simulated time actually moves. Exotic
clocks that support neither fall back to a coarse real-time poll.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import traceback
from typing import Callable, List, Optional, Tuple

from repro.clock import Clock, SystemClock
from repro.errors import LooperError

Runnable = Callable[[], None]

# Fallback slice for clocks that neither notify on advance nor run in
# real time; unused with the shipped SystemClock/ManualClock.
_DELAY_POLL_SECONDS = 0.01


class Looper:
    """A message queue pumped by a single dedicated thread."""

    def __init__(self, name: str, clock: Optional[Clock] = None) -> None:
        self.name = name
        self._clock = clock if clock is not None else SystemClock()
        self._cond = threading.Condition()
        self._queue: List[Tuple[float, int, Runnable]] = []  # (due, seq, fn)
        self._seq = itertools.count()
        self._quit = False
        self._idle = True
        self._processed = 0
        self._errors: List[BaseException] = []
        self._clock_notifies = hasattr(self._clock, "add_listener")
        self._clock_is_realtime = isinstance(self._clock, SystemClock)
        if self._clock_notifies:
            self._clock.add_listener(self._on_clock_advance)
        self._thread = threading.Thread(
            target=self._loop, name=f"looper-{name}", daemon=True
        )
        self._thread.start()

    def _on_clock_advance(self) -> None:
        with self._cond:
            self._cond.notify_all()

    # -- posting -------------------------------------------------------------

    def post(self, runnable: Runnable) -> None:
        """Enqueue ``runnable`` for execution on the looper thread."""
        self.post_delayed(runnable, 0.0)

    def post_delayed(self, runnable: Runnable, delay_seconds: float) -> None:
        """Enqueue ``runnable`` to run no earlier than ``delay_seconds`` from now."""
        if delay_seconds < 0:
            raise LooperError("delay must be >= 0")
        with self._cond:
            if self._quit:
                raise LooperError(f"looper {self.name!r} has quit")
            due = self._clock.now() + delay_seconds
            heapq.heappush(self._queue, (due, next(self._seq), runnable))
            self._cond.notify_all()

    # -- introspection ---------------------------------------------------------

    @property
    def is_current_thread(self) -> bool:
        return threading.current_thread() is self._thread

    @property
    def thread(self) -> threading.Thread:
        """The pump thread -- the owner identity tools key affinity on."""
        return self._thread

    @property
    def processed_count(self) -> int:
        with self._cond:
            return self._processed

    @property
    def pending_count(self) -> int:
        with self._cond:
            return len(self._queue)

    def drain_errors(self) -> List[BaseException]:
        """Return and clear exceptions raised by posted runnables.

        Android would crash the app; the simulation records the error and
        keeps looping so that a test can assert on it.
        """
        with self._cond:
            errors = self._errors
            self._errors = []
            return errors

    # -- synchronization ---------------------------------------------------------

    def sync(self, timeout: float = 5.0) -> bool:
        """Block until everything posted before this call has run.

        Returns ``False`` on timeout. Calling from the looper thread itself
        would deadlock and raises instead.
        """
        if self.is_current_thread:
            raise LooperError("cannot sync a looper from its own thread")
        done = threading.Event()
        try:
            self.post(done.set)
        except LooperError:
            return True  # already quit: nothing more will run
        return done.wait(timeout)

    def wait_idle(self, timeout: float = 5.0) -> bool:
        """Block until the queue is empty and the looper is between messages."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._quit or (not self._queue and self._idle), timeout
            )

    # -- lifecycle ------------------------------------------------------------------

    def quit(self, timeout: float = 5.0) -> None:
        """Stop the looper; pending messages are dropped."""
        with self._cond:
            self._quit = True
            self._queue.clear()
            self._cond.notify_all()
        if self._clock_notifies:
            self._clock.remove_listener(self._on_clock_advance)
        if not self.is_current_thread:
            self._thread.join(timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    # -- the pump ----------------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            runnable = self._next_message()
            if runnable is None:
                return
            try:
                runnable()
            except BaseException as exc:  # noqa: BLE001 - recorded, not fatal
                with self._cond:
                    self._errors.append(exc)
                traceback.print_exc()
            finally:
                with self._cond:
                    self._processed += 1
                    self._idle = True
                    self._cond.notify_all()

    def _next_message(self) -> Optional[Runnable]:
        with self._cond:
            while True:
                if self._quit:
                    return None
                if self._queue:
                    due, _seq, runnable = self._queue[0]
                    now = self._clock.now()
                    if due <= now:
                        heapq.heappop(self._queue)
                        self._idle = False
                        return runnable
                    # Delayed message pending: wait until it can be due.
                    # A new post or a clock advance notifies the cond.
                    if self._clock_notifies:
                        self._cond.wait()
                    elif self._clock_is_realtime:
                        self._cond.wait(due - now)
                    else:
                        self._cond.wait(_DELAY_POLL_SECONDS)
                else:
                    self._cond.wait()


class Handler:
    """A thin posting facade bound to one looper, like ``android.os.Handler``."""

    def __init__(self, looper: Looper) -> None:
        self._looper = looper

    @property
    def looper(self) -> Looper:
        return self._looper

    def post(self, runnable: Runnable) -> None:
        self._looper.post(runnable)

    def post_delayed(self, runnable: Runnable, delay_seconds: float) -> None:
        self._looper.post_delayed(runnable, delay_seconds)
