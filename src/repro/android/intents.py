"""Intents: how the Android platform hands NFC events to applications.

Only the NFC-relevant subset is modeled: the three discovery actions with
their dispatch priority (NDEF > TECH > TAG), MIME-type matching in intent
filters, and an extras bag carrying the tag handle and any NDEF messages,
mirroring ``NfcAdapter.EXTRA_TAG`` / ``EXTRA_NDEF_MESSAGES``.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import IntentError

ACTION_NDEF_DISCOVERED = "android.nfc.action.NDEF_DISCOVERED"
ACTION_TECH_DISCOVERED = "android.nfc.action.TECH_DISCOVERED"
ACTION_TAG_DISCOVERED = "android.nfc.action.TAG_DISCOVERED"

EXTRA_TAG = "android.nfc.extra.TAG"
EXTRA_NDEF_MESSAGES = "android.nfc.extra.NDEF_MESSAGES"
EXTRA_BEAM_SENDER = "repro.nfc.extra.BEAM_SENDER"


@dataclass
class Intent:
    """A dispatched platform event."""

    action: str
    mime_type: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    def get_extra(self, key: str, default: Any = None) -> Any:
        return self.extras.get(key, default)

    def require_extra(self, key: str) -> Any:
        if key not in self.extras:
            raise IntentError(f"intent {self.action} lacks required extra {key!r}")
        return self.extras[key]

    @property
    def is_beam(self) -> bool:
        return EXTRA_BEAM_SENDER in self.extras


@dataclass(frozen=True)
class IntentFilter:
    """Matches intents by action and (optionally) MIME type.

    ``mime_pattern`` accepts shell-style wildcards (``text/*``), matching
    Android's ``IntentFilter.addDataType`` semantics closely enough for
    the NFC dispatch path.
    """

    action: str
    mime_pattern: Optional[str] = None

    def matches(self, intent: Intent) -> bool:
        if intent.action != self.action:
            return False
        if self.mime_pattern is None:
            return True
        if not intent.mime_type:
            return False
        return fnmatch.fnmatchcase(intent.mime_type.lower(), self.mime_pattern.lower())
