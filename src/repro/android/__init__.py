"""Simulated Android platform.

A minimal but faithful model of the parts of Android that MORENA touches:

* :mod:`repro.android.looper` -- ``Looper``/``Handler`` message queues; one
  main looper thread per device, exactly like Android's UI thread.
* :mod:`repro.android.intents` -- ``Intent`` and ``IntentFilter``; NFC
  events reach applications as intents, which is the *tight coupling with
  the activity-based architecture* the paper complains about.
* :mod:`repro.android.activity` -- the ``Activity`` lifecycle
  (``on_create`` .. ``on_destroy``, ``on_new_intent``), driven on the main
  looper.
* :mod:`repro.android.device` -- an ``AndroidDevice`` bundles a main
  looper, an NFC adapter and a foreground activity: one simulated phone.
* :mod:`repro.android.nfc` -- ``NfcAdapter`` (foreground dispatch + Beam
  push) and the blocking tech classes ``Ndef`` / ``NdefFormatable`` that
  raise ``TagLostError`` mid-operation, mirroring
  ``android.nfc.TagLostException``.
"""

from repro.android.looper import Handler, Looper
from repro.android.intents import (
    ACTION_NDEF_DISCOVERED,
    ACTION_TAG_DISCOVERED,
    ACTION_TECH_DISCOVERED,
    Intent,
    IntentFilter,
)
from repro.android.activity import Activity
from repro.android.device import AndroidDevice
from repro.android.nfc import Ndef, NdefFormatable, NfcAdapter, Tag

__all__ = [
    "Looper",
    "Handler",
    "Intent",
    "IntentFilter",
    "ACTION_NDEF_DISCOVERED",
    "ACTION_TAG_DISCOVERED",
    "ACTION_TECH_DISCOVERED",
    "Activity",
    "AndroidDevice",
    "NfcAdapter",
    "Tag",
    "Ndef",
    "NdefFormatable",
]
