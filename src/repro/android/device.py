"""One simulated phone: main looper + NFC adapter + activity stack.

``AndroidDevice`` is the top of the platform substrate. Tests and
examples create devices inside an :class:`~repro.radio.RfidEnvironment`,
start activities on them, and move tags/phones around::

    env = RfidEnvironment()
    phone = AndroidDevice("alice", env)
    activity = phone.start_activity(MyActivity)
    env.move_tag_into_field(tag, phone.port)
    phone.sync()          # wait for the main looper to drain

Lifecycle transitions execute on the main looper (as on Android) but
``start_activity`` / ``finish_activity`` block the caller until the
transition completed, which keeps test code linear.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Type, TypeVar

from repro.android.activity import Activity, ActivityState
from repro.android.looper import Looper
from repro.android.nfc.adapter import NfcAdapter
from repro.concurrent import EventLog, ResultBox
from repro.core.scheduler import Reactor
from repro.errors import LifecycleError
from repro.radio.environment import RfidEnvironment
from repro.radio.port import NfcAdapterPort
from repro.radio.txscheduler import PortTransactionScheduler

A = TypeVar("A", bound=Activity)


class AndroidDevice:
    """A named phone inside a radio environment."""

    def __init__(
        self,
        name: str,
        environment: RfidEnvironment,
        link: Optional[object] = None,
        tx_policy: object = None,
        reactor_mode: str = "threaded",
    ) -> None:
        self.name = name
        self._env = environment
        self._tx_policy = tx_policy  # cross-tag service policy spec
        self._reactor_mode = reactor_mode  # "threaded" | "asyncio"
        self._port: NfcAdapterPort = environment.create_port(name, link=link)
        self._looper = Looper(name=f"{name}-main", clock=environment.clock)
        self._adapter = NfcAdapter(self, self._port)
        self._activities: List[Activity] = []  # back stack; last = foreground
        self._services: List[object] = []
        self._stack_lock = threading.Lock()
        self._reactor: Optional[Reactor] = None
        self._reactor_lock = threading.Lock()
        self._tx_scheduler: Optional[PortTransactionScheduler] = None
        self._tx_lock = threading.Lock()
        self.toasts = EventLog()

    # -- accessors -----------------------------------------------------------

    @property
    def environment(self) -> RfidEnvironment:
        return self._env

    @property
    def port(self) -> NfcAdapterPort:
        return self._port

    @property
    def main_looper(self) -> Looper:
        return self._looper

    @property
    def nfc_adapter(self) -> NfcAdapter:
        return self._adapter

    @property
    def reactor(self) -> Reactor:
        """The device's shared reference scheduler (created lazily).

        All tag references of all activities on this device multiplex
        their event loops onto this one bounded pool — or, with
        ``reactor_mode="asyncio"``, onto one coroutine event loop; see
        :mod:`repro.core.scheduler`.
        """
        with self._reactor_lock:
            if self._reactor is None:
                self._reactor = Reactor(
                    clock=self._env.clock,
                    name=f"{self.name}-reactor",
                    mode=self._reactor_mode,
                )
            return self._reactor

    @property
    def tx_scheduler(self) -> PortTransactionScheduler:
        """The device's per-port radio transaction scheduler (lazy).

        Batch-managed tag references register here; on each tap window
        the scheduler serves their ready head operations through one
        connected session per tag visit instead of paying the full
        connect/anticollision cost per operation, sharing radio time
        across co-present tags under the device's ``tx_policy``. See
        :mod:`repro.radio.txscheduler`.
        """
        reactor = self.reactor  # outside _tx_lock: both locks are plain
        with self._tx_lock:
            if self._tx_scheduler is None:
                self._tx_scheduler = PortTransactionScheduler(
                    self._port, reactor, self._env.clock, policy=self._tx_policy
                )
            return self._tx_scheduler

    @property
    def foreground_activity(self) -> Optional[Activity]:
        with self._stack_lock:
            return self._activities[-1] if self._activities else None

    def __repr__(self) -> str:
        return f"AndroidDevice({self.name!r})"

    # -- toasts ---------------------------------------------------------------

    def toast(self, text: str) -> None:
        self.toasts.append(text)

    # -- activity management -----------------------------------------------------

    def start_activity(self, activity_class: Type[A], *args, **kwargs) -> A:
        """Create, start and resume an activity; pauses the previous one.

        Blocks until the new activity is resumed on the main looper.
        """
        box: ResultBox = ResultBox()

        def launch() -> None:
            try:
                previous = self.foreground_activity
                if previous is not None and previous.state == ActivityState.RESUMED:
                    previous._transition(ActivityState.PAUSED)
                activity = activity_class(self, *args, **kwargs)
                activity._transition(ActivityState.CREATED)
                activity._transition(ActivityState.STARTED)
                activity._transition(ActivityState.RESUMED)
                if previous is not None and previous.state == ActivityState.PAUSED:
                    previous._transition(ActivityState.STOPPED)
                with self._stack_lock:
                    self._activities.append(activity)
                box.put(activity)
            except BaseException as exc:  # noqa: BLE001 - handed to caller
                box.put(exc)

        self._run_on_main(launch)
        result = box.get(timeout=10.0)
        if isinstance(result, BaseException):
            raise result
        return result

    def finish_activity(self, activity: Optional[Activity] = None) -> None:
        """Destroy the given (default: foreground) activity.

        The previous activity on the back stack, if any, is resumed.
        """
        box: ResultBox = ResultBox()

        def finish() -> None:
            try:
                with self._stack_lock:
                    target = activity or (
                        self._activities[-1] if self._activities else None
                    )
                    if target is None or target not in self._activities:
                        raise LifecycleError("activity is not on this device's stack")
                    was_foreground = target is self._activities[-1]
                    self._activities.remove(target)
                    revealed = (
                        self._activities[-1]
                        if was_foreground and self._activities
                        else None
                    )
                if target.state == ActivityState.RESUMED:
                    target._transition(ActivityState.PAUSED)
                if target.state == ActivityState.PAUSED:
                    target._transition(ActivityState.STOPPED)
                target._transition(ActivityState.DESTROYED)
                if revealed is not None:
                    if revealed.state == ActivityState.STOPPED:
                        revealed._transition(ActivityState.STARTED)
                    if revealed.state in (
                        ActivityState.STARTED,
                        ActivityState.PAUSED,
                    ):
                        revealed._transition(ActivityState.RESUMED)
                box.put(True)
            except BaseException as exc:  # noqa: BLE001 - handed to caller
                box.put(exc)

        self._run_on_main(finish)
        result = box.get(timeout=10.0)
        if isinstance(result, BaseException):
            raise result

    # -- services ---------------------------------------------------------------------

    def start_service(self, service_class, *args, argument=None, **kwargs):
        """Create a background service and deliver one start command.

        Blocks until ``on_create`` and ``on_start_command`` ran on the
        main looper; returns the service instance.
        """
        box: ResultBox = ResultBox()

        def launch() -> None:
            try:
                service = service_class(self, *args, **kwargs)
                service._create()
                service._start_command(argument)
                with self._stack_lock:
                    self._services.append(service)
                box.put(service)
            except BaseException as exc:  # noqa: BLE001 - handed to caller
                box.put(exc)

        self._run_on_main(launch)
        result = box.get(timeout=10.0)
        if isinstance(result, BaseException):
            raise result
        return result

    def stop_service(self, service) -> None:
        """Destroy a running service on the main looper."""
        box: ResultBox = ResultBox()

        def stop() -> None:
            try:
                with self._stack_lock:
                    if service in self._services:
                        self._services.remove(service)
                service._destroy()
                box.put(True)
            except BaseException as exc:  # noqa: BLE001 - handed to caller
                box.put(exc)

        self._run_on_main(stop)
        result = box.get(timeout=10.0)
        if isinstance(result, BaseException):
            raise result

    @property
    def running_services(self):
        with self._stack_lock:
            return list(self._services)

    # -- synchronization ------------------------------------------------------------

    def sync(self, timeout: float = 5.0) -> bool:
        """Wait until the main looper has run everything posted so far."""
        return self._looper.sync(timeout)

    def wait_idle(self, timeout: float = 5.0) -> bool:
        return self._looper.wait_idle(timeout)

    def shutdown(self) -> None:
        """Destroy all activities and services, then stop the main looper."""
        for service in self.running_services:
            self.stop_service(service)
        while self.foreground_activity is not None:
            self.finish_activity()
        with self._tx_lock:
            tx_scheduler = self._tx_scheduler
        if tx_scheduler is not None:
            tx_scheduler.close()
        with self._reactor_lock:
            reactor = self._reactor
        if reactor is not None:
            reactor.stop()
        self._looper.quit()

    # -- internals ----------------------------------------------------------------------

    def _run_on_main(self, runnable: Callable[[], None]) -> None:
        if self._looper.is_current_thread:
            runnable()
        else:
            self._looper.post(runnable)
