"""Background services.

One of the drawbacks the paper pins on the Android NFC API is its tight
coupling to activities: "This makes it harder to perform RFID operations
outside of the context of such an activity." MORENA's tag references are
first-class values -- once obtained (tag *discovery* genuinely needs a
foreground activity, on real Android too), they can be handed to a
background service, which schedules asynchronous operations without ever
touching an intent or a lifecycle callback.

This module provides the minimal ``Service`` the demonstration needs:
created and destroyed on the device's main looper, with
``on_create`` / ``on_start_command`` / ``on_destroy`` hooks.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, TYPE_CHECKING

from repro.errors import LifecycleError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.device import AndroidDevice


class Service:
    """A background component bound to one device's main looper."""

    def __init__(self, device: "AndroidDevice") -> None:
        self._device = device
        self._destroyed = False
        self._lock = threading.Lock()

    @property
    def device(self) -> "AndroidDevice":
        return self._device

    @property
    def is_destroyed(self) -> bool:
        with self._lock:
            return self._destroyed

    def run_on_ui_thread(self, runnable) -> None:
        self._device.main_looper.post(runnable)

    # -- lifecycle hooks (override in subclasses) --------------------------------

    def on_create(self) -> None:
        """Called once, on the main looper, when the service starts."""

    def on_start_command(self, argument: Any) -> None:
        """Called on the main looper for every ``start_service`` request."""

    def on_destroy(self) -> None:
        """Called on the main looper when the service stops."""

    # -- driving (used by AndroidDevice) ---------------------------------------------

    def _create(self) -> None:
        if self.is_destroyed:
            raise LifecycleError("cannot create a destroyed service")
        self.on_create()

    def _start_command(self, argument: Any) -> None:
        if self.is_destroyed:
            raise LifecycleError("service already destroyed")
        self.on_start_command(argument)

    def _destroy(self) -> None:
        with self._lock:
            if self._destroyed:
                return
            self._destroyed = True
        self.on_destroy()
