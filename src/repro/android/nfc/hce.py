"""Host card emulation (HCE).

The paper motivates NFC phones with mobile payment (Google Wallet):
a phone *presents itself as a Type 4 card* that a terminal -- here,
another simulated phone -- reads over ISO-DEP. The emulation rides the
existing machinery: the card side is a :class:`~repro.tags.type4.Type4Tag`
owned by the emulating device; whenever a peer phone comes into Beam
range, the adapter places the emulated card into *that peer's* field, so
the peer's reader stack (adapter dispatch, tech classes, MORENA
references) sees an ordinary Type 4 tag.

``HostCardEmulationService`` packages the pattern as an Android-style
background service: start it to present a card, stop it to withdraw.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.android.service import Service
from repro.ndef.message import NdefMessage
from repro.tags.type4 import TYPE4_SPECS, Type4Tag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.device import AndroidDevice


class HostCardEmulationService(Service):
    """Presents one emulated Type 4 card while running.

    Pass the card content as an :class:`NdefMessage` via the service
    ``argument``, or override :meth:`build_card` for custom cards. The
    card object stays owned by this device: content updated through
    :meth:`update_card` is visible to the next reader immediately, which
    is exactly what makes HCE more flexible than a sticker.
    """

    def __init__(self, device: "AndroidDevice", spec: str = "TYPE4_2K") -> None:
        super().__init__(device)
        self._card = self.build_card(spec)

    def build_card(self, spec: str) -> Type4Tag:
        return Type4Tag(spec=TYPE4_SPECS[spec])

    @property
    def card(self) -> Type4Tag:
        return self._card

    def on_start_command(self, argument) -> None:
        if isinstance(argument, NdefMessage):
            self._card.write_ndef(argument)
        self.device.nfc_adapter.set_card_emulation(self._card)

    def update_card(self, message: NdefMessage) -> None:
        """Change what the card presents (e.g. a fresh payment token)."""
        self._card.write_ndef(message)

    def on_destroy(self) -> None:
        self.device.nfc_adapter.set_card_emulation(None)
        super().on_destroy()
