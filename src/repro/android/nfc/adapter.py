"""``NfcAdapter``: foreground dispatch and Beam push.

The adapter glues the radio port to the activity world:

* **Tag dispatch.** When a tag enters the field, the adapter inventories
  it and builds the highest-priority intent whose filter the foreground
  activity declared: ``NDEF_DISCOVERED`` (with the MIME type of the first
  record) beats ``TECH_DISCOVERED`` (unformatted or empty tags) beats
  ``TAG_DISCOVERED``. The intent is posted to the device's main looper --
  every physical tap yields a fresh intent, exactly like Android.

  Simplification vs. hardware: the *inventory* read (the platform's own
  NDEF detection during anti-collision) bypasses the lossy link model;
  only application-initiated I/O through the tech classes contends with
  tears. This keeps discovery deterministic while preserving the paper's
  failure model for reads and writes, and is documented in DESIGN.md.

* **Beam.** ``set_ndef_push_message`` installs a static message or a
  callback that is pushed automatically when a peer phone comes into
  range (Android behaviour); ``push_now`` performs an explicit,
  synchronous push (what MORENA's ``Beamer`` builds on). Received beams
  are dispatched as ``NDEF_DISCOVERED`` intents carrying the sender name.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, TYPE_CHECKING, Union

from repro.android.intents import (
    ACTION_NDEF_DISCOVERED,
    ACTION_TAG_DISCOVERED,
    ACTION_TECH_DISCOVERED,
    EXTRA_BEAM_SENDER,
    EXTRA_NDEF_MESSAGES,
    EXTRA_TAG,
    Intent,
)
from repro.android.nfc.tech import Tag
from repro.ndef.message import NdefMessage
from repro.ndef.mime import message_mime_type
from repro.radio.events import FieldEvent, PeerEntered, PeerLeft, TagEntered
from repro.radio.port import NfcAdapterPort

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.device import AndroidDevice

PushSource = Union[NdefMessage, Callable[[], NdefMessage]]


class NfcAdapter:
    """One device's NFC adapter. Created by :class:`AndroidDevice`."""

    def __init__(self, device: "AndroidDevice", port: NfcAdapterPort) -> None:
        self._device = device
        self._port = port
        self._lock = threading.Lock()
        self._push_source: Optional[PushSource] = None
        self._emulated_card = None
        self._enabled = True
        port.add_field_listener(self._on_field_event)
        port.set_beam_handler(self._on_beam_received)

    @property
    def port(self) -> NfcAdapterPort:
        return self._port

    @property
    def is_enabled(self) -> bool:
        with self._lock:
            return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        """Model the user toggling NFC in system settings."""
        with self._lock:
            self._enabled = enabled

    # -- tag dispatch ------------------------------------------------------------

    def _on_field_event(self, event: FieldEvent) -> None:
        if isinstance(event, TagEntered):
            if self.is_enabled:
                self._device.main_looper.post(
                    lambda: self._dispatch_tag(event.tag)
                )
        elif isinstance(event, PeerEntered):
            if self.is_enabled:
                self._device.main_looper.post(self._auto_push)
                self._present_card_to(event.peer_name)
        elif isinstance(event, PeerLeft):
            self._withdraw_card_from(event.peer_name)

    def _dispatch_tag(self, simulated) -> None:
        # Runs on the main looper. The tag may have left the field again by
        # now; dispatch anyway (the intent is a snapshot of the tap), the
        # application's first I/O will fail -- matching real race behaviour.
        activity = self._device.foreground_activity
        if activity is None:
            return
        filters = activity.nfc_filters()
        if not filters:
            return
        tag_handle = Tag(simulated, self._port)
        for intent in self._candidate_intents(tag_handle):
            if any(f.matches(intent) for f in filters):
                activity._deliver_intent(intent)  # noqa: SLF001 - platform role
                return

    def _candidate_intents(self, tag_handle: Tag) -> List[Intent]:
        """Candidate intents in Android's dispatch-priority order."""
        simulated = tag_handle.simulated
        candidates: List[Intent] = []
        message: Optional[NdefMessage] = None
        if simulated.is_ndef_formatted:
            try:
                message = simulated.read_ndef()
            except Exception:  # noqa: BLE001 - corrupt TLV: fall through
                message = None
        if message is not None and not message.is_empty:
            candidates.append(
                Intent(
                    action=ACTION_NDEF_DISCOVERED,
                    mime_type=message_mime_type(message),
                    extras={EXTRA_TAG: tag_handle, EXTRA_NDEF_MESSAGES: [message]},
                )
            )
        candidates.append(
            Intent(action=ACTION_TECH_DISCOVERED, extras={EXTRA_TAG: tag_handle})
        )
        candidates.append(
            Intent(action=ACTION_TAG_DISCOVERED, extras={EXTRA_TAG: tag_handle})
        )
        return candidates

    # -- host card emulation --------------------------------------------------------

    def set_card_emulation(self, card) -> None:
        """Present ``card`` (a Type 4 tag object) to peer phones; ``None``
        withdraws it. While set, every phone in Beam range sees the card
        in its own field and reads it like any physical tag."""
        env = self._port.environment
        with self._lock:
            previous = self._emulated_card
            self._emulated_card = card
        if previous is not None:
            for name in env.port_names():
                env.remove_tag_from_field(previous, env.port(name))
        if card is not None:
            for peer in env.peers_of(self._port):
                env.move_tag_into_field(card, peer)

    @property
    def emulated_card(self):
        with self._lock:
            return self._emulated_card

    def _present_card_to(self, peer_name: str) -> None:
        with self._lock:
            card = self._emulated_card
        if card is None:
            return
        env = self._port.environment
        env.move_tag_into_field(card, env.port(peer_name))

    def _withdraw_card_from(self, peer_name: str) -> None:
        with self._lock:
            card = self._emulated_card
        if card is None:
            return
        env = self._port.environment
        env.remove_tag_from_field(card, env.port(peer_name))

    # -- Beam: sending ---------------------------------------------------------------

    def set_ndef_push_message(self, source: Optional[PushSource]) -> None:
        """Install the message (or zero-argument callback producing one)
        pushed automatically when a peer phone comes into range."""
        with self._lock:
            self._push_source = source

    def _auto_push(self) -> None:
        with self._lock:
            source = self._push_source
        if source is None:
            return
        message = source() if callable(source) else source
        if message is None:
            return
        try:
            self._port.beam(message)
        except Exception:  # noqa: BLE001 - auto-push failures are silent on Android
            pass

    def push_now(self, message: NdefMessage) -> List[str]:
        """Explicit blocking push to every peer in range.

        Returns the accepting peer names; raises
        :class:`~repro.errors.BeamError` /
        :class:`~repro.errors.TagLostError` on failure.
        """
        return self._port.beam(message)

    # -- negotiated handover --------------------------------------------------------

    def set_handover_responder(self, responder) -> None:
        """Install the callback answering negotiated-handover requests.

        ``responder(request, sender)`` receives a
        :class:`~repro.ndef.handover.ParsedHandoverRequest` and returns a
        handover-select :class:`NdefMessage` (or ``None`` when this device
        has nothing to offer). It runs on the requesting device's thread,
        so keep it short and thread-safe. ``None`` uninstalls.
        """
        if responder is None:
            self._port.set_snep_get_provider(None)
            return

        from repro.ndef.handover import parse_handover_request

        def provider(sender: str, request_bytes: bytes):
            try:
                request = parse_handover_request(
                    NdefMessage.from_bytes(request_bytes)
                )
            except Exception:  # noqa: BLE001 - hostile request: NOT FOUND
                return None
            answer = responder(request, sender)
            return answer.to_bytes() if answer is not None else None

        self._port.set_snep_get_provider(provider)

    def request_handover(self, mime_types: List[str]):
        """Ask every peer in range which carriers it offers.

        Sends a handover request (SNEP GET) to each peer and returns a
        list of ``(peer_name, ParsedHandover)`` for the peers that
        answered. Raises :class:`~repro.errors.BeamError` when no peer is
        in range; peers without a responder simply do not appear in the
        result.
        """
        from repro.errors import BeamError
        from repro.ndef.handover import build_handover_request, parse_handover_select
        from repro.radio.snep import SnepClient, SnepProtocolError

        peers = self._port.environment.peers_of(self._port)
        if not peers:
            raise BeamError(f"no peer in Beam range of {self._port.name}")
        request = build_handover_request(mime_types).to_bytes()
        answers = []
        for peer in peers:
            if peer.snep_server is None:
                continue
            client = SnepClient(
                lambda raw, p=peer: self._port.snep_exchange(p, raw)
            )
            try:
                response = client.get(request)
                answers.append(
                    (peer.name, parse_handover_select(NdefMessage.from_bytes(response)))
                )
            except SnepProtocolError:
                continue  # peer has no responder or nothing to offer
        return answers

    # -- Beam: receiving --------------------------------------------------------------

    def _on_beam_received(self, sender: str, message: NdefMessage) -> None:
        if not self.is_enabled:
            return
        self._device.main_looper.post(lambda: self._dispatch_beam(sender, message))

    def _dispatch_beam(self, sender: str, message: NdefMessage) -> None:
        activity = self._device.foreground_activity
        if activity is None:
            return
        intent = Intent(
            action=ACTION_NDEF_DISCOVERED,
            mime_type=message_mime_type(message),
            extras={EXTRA_NDEF_MESSAGES: [message], EXTRA_BEAM_SENDER: sender},
        )
        if any(f.matches(intent) for f in activity.nfc_filters()):
            activity._deliver_intent(intent)  # noqa: SLF001 - platform role
