"""Tag handle and blocking tech classes (``android.nfc.Tag``, ``tech.Ndef``).

These reproduce the exact API shape the paper criticizes:

* operations **block** the calling thread for the duration of the radio
  transfer (hence Android's advice to use a worker thread);
* operations raise :class:`~repro.errors.TagLostError` whenever the link
  tears -- with NFC, "failure is the rule instead of the exception";
* data is raw :class:`~repro.ndef.NdefMessage`, so every application does
  its own conversion.

The handcrafted baseline application is written directly against this
API; MORENA wraps it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import RadioError
from repro.ndef.message import NdefMessage
from repro.radio.port import NfcAdapterPort
from repro.tags.tag import SimulatedTag

TECH_NDEF = "android.nfc.tech.Ndef"
TECH_NDEF_FORMATABLE = "android.nfc.tech.NdefFormatable"
TECH_ISO_DEP = "android.nfc.tech.IsoDep"


class Tag:
    """The opaque tag handle delivered inside NFC intents (EXTRA_TAG)."""

    def __init__(self, simulated: SimulatedTag, port: NfcAdapterPort) -> None:
        self._simulated = simulated
        self._port = port

    @property
    def id(self) -> bytes:
        """The tag UID, like ``Tag.getId()``."""
        return self._simulated.uid

    @property
    def id_hex(self) -> str:
        return self._simulated.uid_hex

    def get_tech_list(self) -> List[str]:
        if hasattr(self._simulated, "process_apdu"):
            return [TECH_ISO_DEP, TECH_NDEF]
        if self._simulated.is_ndef_formatted:
            return [TECH_NDEF]
        return [TECH_NDEF_FORMATABLE]

    # Simulation-only escape hatches (used by the middleware internals and
    # tests; applications should stick to the tech classes).
    @property
    def simulated(self) -> SimulatedTag:
        return self._simulated

    @property
    def port(self) -> NfcAdapterPort:
        return self._port

    def __repr__(self) -> str:
        return f"Tag(uid={self.id_hex}, via={self._port.name})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return self._simulated is other._simulated and self._port is other._port

    def __hash__(self) -> int:
        return hash((id(self._simulated), id(self._port)))


class _Tech:
    """Common connect/close bookkeeping for tech classes."""

    def __init__(self, tag: Tag) -> None:
        self._tag = tag
        self._connected = False

    @property
    def tag(self) -> Tag:
        return self._tag

    @property
    def is_connected(self) -> bool:
        return self._connected

    def connect(self) -> None:
        """Open the tech channel; required before any I/O."""
        if self._connected:
            raise RadioError("tech object is already connected")
        self._connected = True

    def close(self) -> None:
        """Close the channel; idempotent."""
        self._connected = False

    def __enter__(self):
        self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _require_connected(self) -> None:
        if not self._connected:
            raise RadioError("call connect() before tag I/O")


class Ndef(_Tech):
    """Blocking NDEF I/O on a formatted tag, like ``android.nfc.tech.Ndef``."""

    @staticmethod
    def get(tag: Tag) -> Optional["Ndef"]:
        """Return an ``Ndef`` for a formatted tag, else ``None`` (like Android)."""
        if TECH_NDEF in tag.get_tech_list():
            return Ndef(tag)
        return None

    def get_max_size(self) -> int:
        return self._tag.simulated.ndef_capacity

    def is_writable(self) -> bool:
        return self._tag.simulated.is_writable

    def get_ndef_message(self) -> NdefMessage:
        """Blocking read. Raises ``TagLostError`` / ``TagFormatError``."""
        self._require_connected()
        return self._tag.port.read_ndef(self._tag.simulated)

    def write_ndef_message(self, message: NdefMessage) -> None:
        """Blocking write. Raises ``TagLostError`` and tag-layer errors."""
        self._require_connected()
        self._tag.port.write_ndef(self._tag.simulated, message)

    def make_read_only(self) -> None:
        """Blocking permanent lock."""
        self._require_connected()
        self._tag.port.make_read_only(self._tag.simulated)


class IsoDep(_Tech):
    """Raw ISO-DEP exchanges with a Type 4 tag, like ``tech.IsoDep``.

    Most applications stay at the :class:`Ndef` level (which works on
    Type 4 tags too); ``IsoDep`` is for custom card applications.
    """

    @staticmethod
    def get(tag: Tag) -> Optional["IsoDep"]:
        if TECH_ISO_DEP in tag.get_tech_list():
            return IsoDep(tag)
        return None

    def transceive(self, data: bytes) -> bytes:
        """Blocking APDU exchange. Raises ``TagLostError`` on tears."""
        self._require_connected()
        return self._tag.port.transceive(self._tag.simulated, data)


class NdefFormatable(_Tech):
    """Formatting channel for blank tags, like ``tech.NdefFormatable``."""

    @staticmethod
    def get(tag: Tag) -> Optional["NdefFormatable"]:
        if TECH_NDEF_FORMATABLE in tag.get_tech_list():
            return NdefFormatable(tag)
        return None

    def format(self, first_message: Optional[NdefMessage] = None) -> None:
        """Blocking NDEF format, optionally writing a first message."""
        self._require_connected()
        self._tag.port.format_tag(self._tag.simulated)
        if first_message is not None:
            self._tag.port.write_ndef(self._tag.simulated, first_message)
