"""Simulated ``android.nfc``: the adapter, tag handle and tech classes."""

from repro.android.nfc.tech import IsoDep, Ndef, NdefFormatable, Tag
from repro.android.nfc.adapter import NfcAdapter

__all__ = ["Tag", "Ndef", "NdefFormatable", "IsoDep", "NfcAdapter"]
