"""The Activity lifecycle.

Activities are the unit Android dispatches NFC intents to -- the tight
coupling MORENA loosens. The simulated lifecycle follows the real state
machine (created -> started -> resumed -> paused -> stopped -> destroyed);
all transitions and ``on_new_intent`` deliveries run on the owning
device's main looper thread, so subclass hooks can touch "UI" state
without locking, exactly as on Android.
"""

from __future__ import annotations

import enum
import threading
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.android.intents import Intent, IntentFilter
from repro.errors import LifecycleError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.device import AndroidDevice


class ActivityState(enum.Enum):
    INITIALIZED = "initialized"
    CREATED = "created"
    STARTED = "started"
    RESUMED = "resumed"
    PAUSED = "paused"
    STOPPED = "stopped"
    DESTROYED = "destroyed"


_ALLOWED_TRANSITIONS = {
    ActivityState.INITIALIZED: {ActivityState.CREATED},
    ActivityState.CREATED: {ActivityState.STARTED, ActivityState.DESTROYED},
    ActivityState.STARTED: {ActivityState.RESUMED, ActivityState.STOPPED},
    ActivityState.RESUMED: {ActivityState.PAUSED},
    ActivityState.PAUSED: {ActivityState.RESUMED, ActivityState.STOPPED},
    ActivityState.STOPPED: {ActivityState.STARTED, ActivityState.DESTROYED},
    ActivityState.DESTROYED: set(),
}


class Activity:
    """Base class of every simulated Android activity.

    Subclasses override the ``on_*`` hooks. Construction happens off the
    main thread; the device drives all lifecycle callbacks on it.
    """

    def __init__(self, device: "AndroidDevice") -> None:
        self._device = device
        self._state = ActivityState.INITIALIZED
        self._state_lock = threading.Lock()
        self._intent_filters: List[IntentFilter] = []
        self._foreground_dispatch_enabled = False

    # -- environment access -----------------------------------------------------

    @property
    def device(self) -> "AndroidDevice":
        return self._device

    @property
    def state(self) -> ActivityState:
        with self._state_lock:
            return self._state

    @property
    def is_resumed(self) -> bool:
        return self.state == ActivityState.RESUMED

    @property
    def is_destroyed(self) -> bool:
        return self.state == ActivityState.DESTROYED

    def run_on_ui_thread(self, runnable: Callable[[], None]) -> None:
        """Post ``runnable`` to the device's main looper."""
        self._device.main_looper.post(runnable)

    def toast(self, text: str) -> None:
        """Show a toast (recorded on the device's toast log)."""
        self._device.toast(text)

    # -- NFC foreground dispatch ---------------------------------------------------

    def enable_foreground_dispatch(self, filters: List[IntentFilter]) -> None:
        """Ask the platform to route matching NFC intents to this activity.

        Mirrors ``NfcAdapter.enableForegroundDispatch``. Only effective
        while the activity is resumed and in the foreground.
        """
        self._intent_filters = list(filters)
        self._foreground_dispatch_enabled = True

    def disable_foreground_dispatch(self) -> None:
        self._foreground_dispatch_enabled = False

    def nfc_filters(self) -> List[IntentFilter]:
        return list(self._intent_filters) if self._foreground_dispatch_enabled else []

    # -- lifecycle hooks (override in subclasses) --------------------------------------

    def on_create(self) -> None:
        """First lifecycle callback; build state here."""

    def on_start(self) -> None:
        """The activity is becoming visible."""

    def on_resume(self) -> None:
        """The activity is in the foreground and interactive."""

    def on_pause(self) -> None:
        """The activity is leaving the foreground."""

    def on_stop(self) -> None:
        """The activity is no longer visible."""

    def on_destroy(self) -> None:
        """Final callback; release everything."""

    def on_new_intent(self, intent: Intent) -> None:
        """A matching NFC intent arrived while this activity is foreground."""

    # -- lifecycle driving (called by AndroidDevice on the main looper) ------------------

    def _transition(self, target: ActivityState) -> None:
        with self._state_lock:
            if target not in _ALLOWED_TRANSITIONS[self._state]:
                raise LifecycleError(
                    f"illegal activity transition {self._state.value} -> {target.value}"
                )
            self._state = target
        hook = {
            ActivityState.CREATED: self.on_create,
            ActivityState.STARTED: self.on_start,
            ActivityState.RESUMED: self.on_resume,
            ActivityState.PAUSED: self.on_pause,
            ActivityState.STOPPED: self.on_stop,
            ActivityState.DESTROYED: self.on_destroy,
        }[target]
        hook()

    def _deliver_intent(self, intent: Intent) -> None:
        if self.state != ActivityState.RESUMED:
            return  # only the resumed foreground activity receives NFC intents
        self.on_new_intent(intent)
