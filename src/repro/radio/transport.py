"""Pluggable field transports: where a port's tags actually come from.

An :class:`~repro.radio.environment.RfidEnvironment` used to own its
field topology directly -- one hard-coded ``Dict[port, Set[tag]]``. That
made the simulated local field the *only* possible source of tags, even
though everything above the environment (``TagReference``, the per-port
transaction scheduler, leasing) only ever asks two questions: *which
tags does this port see right now* and *tell me when that changes*.

This module is the seam that answers those questions. A
:class:`Transport` owns the tag-visibility state of every port in one
environment; the environment delegates all field reads and mutations to
it and keeps doing what it always did with the answers (dispatch
``TagEntered``/``TagLeft`` to the observing ports). Three
implementations ship:

* :class:`LocalFieldTransport` -- today's simulated field, the
  behavior-preserving default. A tag is visible to exactly the port
  whose field it was moved into.
* :class:`RelayTransport` -- NFCGate-style relaying: a *reader* port is
  linked to a *remote* port, and from then on services tags physically
  present in the remote port's field as if they were in its own. A
  ``TagReference`` on device A transparently reads, writes and leases a
  tag lying on device B's bench; each relayed radio round trip pays a
  configurable network-hop latency on top of the normal transfer model.
* :class:`TraceTransport` -- a recorded trace is the *only* field
  source. Direct topology mutations are rejected; calling
  :meth:`TraceTransport.play` applies the recorded transitions (clock-
  deterministically, via :class:`~repro.radio.trace.TraceReplayer`), so
  a captured field history replays as a sealed, byte-for-byte
  reproducible scenario.

Locking contract: every method except :meth:`Transport.attach` and the
playback entry points is called by the environment *under its lock*;
transports keep no locks of their own and must not call back into the
environment from those methods.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, TYPE_CHECKING

from repro.errors import RadioError
from repro.tags.tag import SimulatedTag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.environment import RfidEnvironment
    from repro.radio.trace import TraceEvent


class Transport:
    """Field-visibility backend of one :class:`RfidEnvironment`.

    Subclasses override the topology methods; the base class provides
    attachment bookkeeping and the defaults shared by every transport
    (no relaying, no per-operation overhead).
    """

    def __init__(self) -> None:
        self._env: Optional["RfidEnvironment"] = None

    # -- lifecycle ----------------------------------------------------------------

    def attach(self, env: "RfidEnvironment") -> None:
        """Bind this transport to its environment (exactly once)."""
        if self._env is not None and self._env is not env:
            raise RadioError("a transport cannot serve two environments")
        self._env = env

    @property
    def environment(self) -> "RfidEnvironment":
        if self._env is None:
            raise RadioError("transport is not attached to an environment")
        return self._env

    def add_port(self, name: str) -> None:
        """Register a newly created port (called under the env lock)."""
        raise NotImplementedError

    # -- topology mutations (under the env lock) -----------------------------------

    def insert(self, tag: SimulatedTag, port_name: str) -> List[str]:
        """Put ``tag`` into ``port_name``'s physical field.

        Returns the names of the ports that *newly* see the tag (empty
        when the insert was a no-op); the environment dispatches
        ``TagEntered`` to each.
        """
        raise NotImplementedError

    def remove(self, tag: SimulatedTag, port_name: str) -> List[str]:
        """Take ``tag`` out of ``port_name``'s physical field.

        Returns the names of the ports that stopped seeing the tag.
        """
        raise NotImplementedError

    def insert_many(
        self, tags: Iterable[SimulatedTag], port_name: str
    ) -> Dict[str, List[SimulatedTag]]:
        """Bulk insert; maps observer port name -> tags it newly sees."""
        raise NotImplementedError

    def remove_many(
        self, tags: Iterable[SimulatedTag], port_name: str
    ) -> Dict[str, List[SimulatedTag]]:
        """Bulk remove; maps observer port name -> tags it stopped seeing."""
        raise NotImplementedError

    # -- topology queries (under the env lock) ---------------------------------------

    def sees(self, port_name: str, tag: SimulatedTag) -> bool:
        """Whether ``port_name`` currently services ``tag``."""
        raise NotImplementedError

    def visible_tags(self, port_name: str) -> List[SimulatedTag]:
        """Every tag ``port_name`` currently services."""
        raise NotImplementedError

    def ports_seeing(self, tag: SimulatedTag) -> List[str]:
        """Sorted names of every port that services ``tag``."""
        raise NotImplementedError

    # -- per-operation cost hook -----------------------------------------------------

    def operation_overhead_seconds(
        self, port_name: str, tag: SimulatedTag
    ) -> float:
        """Extra latency this transport adds to one radio round trip."""
        return 0.0

    # -- relaying (RelayTransport only) ------------------------------------------------

    def link(self, reader_name: str, remote_name: str) -> List[SimulatedTag]:
        raise RadioError(
            f"{type(self).__name__} does not support field relaying"
        )

    def unlink(self, reader_name: str, remote_name: str) -> List[SimulatedTag]:
        raise RadioError(
            f"{type(self).__name__} does not support field relaying"
        )


class LocalFieldTransport(Transport):
    """The default: each port sees exactly its own simulated field."""

    def __init__(self) -> None:
        super().__init__()
        self._fields: Dict[str, Set[SimulatedTag]] = {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(ports={sorted(self._fields)})"

    def add_port(self, name: str) -> None:
        self._fields.setdefault(name, set())

    def _field(self, port_name: str) -> Set[SimulatedTag]:
        try:
            return self._fields[port_name]
        except KeyError:
            raise RadioError(f"no port named {port_name!r}") from None

    # -- mutations ---------------------------------------------------------------

    def insert(self, tag: SimulatedTag, port_name: str) -> List[str]:
        field = self._field(port_name)
        if tag in field:
            return []
        observers = self._observers_of(port_name)
        # An observer that already sees the tag through another path
        # (its own field, another relayed remote) gets no second event.
        already = [name for name in observers if self.sees(name, tag)]
        field.add(tag)
        return [name for name in observers if name not in already]

    def remove(self, tag: SimulatedTag, port_name: str) -> List[str]:
        field = self._field(port_name)
        if tag not in field:
            return []
        field.discard(tag)
        return [
            name
            for name in self._observers_of(port_name)
            if not self.sees(name, tag)
        ]

    def insert_many(
        self, tags: Iterable[SimulatedTag], port_name: str
    ) -> Dict[str, List[SimulatedTag]]:
        field = self._field(port_name)
        fresh = [tag for tag in tags if tag not in field]
        if not fresh:
            return {}
        observers = self._observers_of(port_name)
        already = {
            name: {tag for tag in fresh if self.sees(name, tag)}
            for name in observers
        }
        field.update(fresh)
        out: Dict[str, List[SimulatedTag]] = {}
        for name in observers:
            new = [tag for tag in fresh if tag not in already[name]]
            if new:
                out[name] = new
        return out

    def remove_many(
        self, tags: Iterable[SimulatedTag], port_name: str
    ) -> Dict[str, List[SimulatedTag]]:
        field = self._field(port_name)
        present = [tag for tag in tags if tag in field]
        field.difference_update(present)
        if not present:
            return {}
        out: Dict[str, List[SimulatedTag]] = {}
        for name in self._observers_of(port_name):
            gone = [tag for tag in present if not self.sees(name, tag)]
            if gone:
                out[name] = gone
        return out

    # -- queries -----------------------------------------------------------------

    def sees(self, port_name: str, tag: SimulatedTag) -> bool:
        return tag in self._field(port_name)

    def visible_tags(self, port_name: str) -> List[SimulatedTag]:
        return list(self._field(port_name))

    def ports_seeing(self, tag: SimulatedTag) -> List[str]:
        return sorted(
            name for name in self._fields if self.sees(name, tag)
        )

    # -- internals ------------------------------------------------------------------

    def _observers_of(self, port_name: str) -> List[str]:
        """Ports whose visibility is affected by ``port_name``'s field."""
        return [port_name]


class RelayTransport(LocalFieldTransport):
    """NFCGate-style field relaying between ports of one environment.

    Physical fields behave exactly as in :class:`LocalFieldTransport`;
    on top of them, a *reader* port can be linked to one or more
    *remote* ports, after which the reader also services every tag
    physically present in those remote fields. Relayed radio round trips
    cost ``latency_seconds`` extra each (the network hop), applied by
    the port's latency model through
    :meth:`operation_overhead_seconds` -- batching via the per-port
    transaction scheduler amortizes connects exactly as it does locally.

    Link management goes through
    :meth:`RfidEnvironment.pair_fields` /
    :meth:`RfidEnvironment.unpair_fields` so that tags already present
    on the remote side surface as ``TagEntered`` events on the reader
    (and symmetric ``TagLeft`` on unlink).
    """

    def __init__(self, latency_seconds: float = 0.0) -> None:
        super().__init__()
        if latency_seconds < 0:
            raise RadioError("relay latency must be >= 0")
        self.latency_seconds = latency_seconds
        # remote port -> readers servicing its field, and the inverse.
        self._readers_of: Dict[str, Set[str]] = {}
        self._remotes_of: Dict[str, Set[str]] = {}

    def __repr__(self) -> str:
        pairs = sorted(
            (reader, remote)
            for remote, readers in self._readers_of.items()
            for reader in readers
        )
        return f"RelayTransport(pairs={pairs}, latency={self.latency_seconds})"

    # -- link management (under the env lock, via the environment) ----------------

    def link(self, reader_name: str, remote_name: str) -> List[SimulatedTag]:
        """Relay ``remote_name``'s field to ``reader_name``.

        Returns the tags that newly became visible to the reader.
        """
        if reader_name == remote_name:
            raise RadioError("a port cannot relay its own field")
        self._field(reader_name)  # existence checks
        self._field(remote_name)
        readers = self._readers_of.setdefault(remote_name, set())
        if reader_name in readers:
            return []
        before = set(self.visible_tags(reader_name))
        readers.add(reader_name)
        self._remotes_of.setdefault(reader_name, set()).add(remote_name)
        return [
            tag for tag in self.visible_tags(reader_name) if tag not in before
        ]

    def unlink(self, reader_name: str, remote_name: str) -> List[SimulatedTag]:
        """Stop relaying; returns the tags the reader no longer sees."""
        readers = self._readers_of.get(remote_name, set())
        if reader_name not in readers:
            return []
        before = set(self.visible_tags(reader_name))
        readers.discard(reader_name)
        self._remotes_of.get(reader_name, set()).discard(remote_name)
        after = set(self.visible_tags(reader_name))
        return [tag for tag in before if tag not in after]

    def relayed_pairs(self) -> List[tuple]:
        """Sorted ``(reader, remote)`` pairs currently linked."""
        return sorted(
            (reader, remote)
            for remote, readers in self._readers_of.items()
            for reader in readers
        )

    # -- topology ---------------------------------------------------------------

    def sees(self, port_name: str, tag: SimulatedTag) -> bool:
        if super().sees(port_name, tag):
            return True
        return any(
            tag in self._fields[remote]
            for remote in self._remotes_of.get(port_name, ())
            if remote in self._fields
        )

    def visible_tags(self, port_name: str) -> List[SimulatedTag]:
        seen = set(self._field(port_name))
        for remote in self._remotes_of.get(port_name, ()):
            seen.update(self._fields.get(remote, ()))
        return list(seen)

    def _observers_of(self, port_name: str) -> List[str]:
        names = [port_name]
        names.extend(sorted(self._readers_of.get(port_name, ())))
        return names

    # -- relay cost ---------------------------------------------------------------

    def operation_overhead_seconds(
        self, port_name: str, tag: SimulatedTag
    ) -> float:
        """The network hop: paid only when the tag is serviced remotely."""
        if tag in self._fields.get(port_name, ()):
            return 0.0
        if self.sees(port_name, tag):
            return self.latency_seconds
        return 0.0


class TraceTransport(LocalFieldTransport):
    """A recorded trace as the one and only field source.

    Direct topology mutations (``move_tag_into_field`` and friends)
    raise: the point of replaying a capture is that nothing *but* the
    capture drives the field. :meth:`play` applies the recorded events
    through a clock-deterministic
    :class:`~repro.radio.trace.TraceReplayer`, so under a
    :class:`~repro.clock.ManualClock` every run delivers the same events
    at the same virtual timestamps.
    """

    def __init__(
        self,
        events: Iterable["TraceEvent"],
        tags_by_uid: Dict[str, SimulatedTag],
    ) -> None:
        super().__init__()
        self._events: List["TraceEvent"] = list(events)
        self._tags_by_uid = dict(tags_by_uid)
        self._cursor = 0
        self._playing = False
        self._replayer = None  # one replayer = one timeline position

    @classmethod
    def from_json(
        cls, text: str, tags_by_uid: Dict[str, SimulatedTag]
    ) -> "TraceTransport":
        from repro.radio.trace import trace_from_json

        return cls(trace_from_json(text), tags_by_uid)

    def __repr__(self) -> str:
        return (
            f"TraceTransport(events={len(self._events)}, "
            f"cursor={self._cursor})"
        )

    @property
    def remaining_events(self) -> int:
        return len(self._events) - self._cursor

    # -- the gate ---------------------------------------------------------------

    def _require_playback(self) -> None:
        if not self._playing:
            raise RadioError(
                "this environment's field is driven by a recorded trace; "
                "use TraceTransport.play()/step() instead of mutating it"
            )

    def insert(self, tag: SimulatedTag, port_name: str) -> List[str]:
        self._require_playback()
        return super().insert(tag, port_name)

    def remove(self, tag: SimulatedTag, port_name: str) -> List[str]:
        self._require_playback()
        return super().remove(tag, port_name)

    def insert_many(
        self, tags: Iterable[SimulatedTag], port_name: str
    ) -> Dict[str, List[SimulatedTag]]:
        self._require_playback()
        return super().insert_many(tags, port_name)

    def remove_many(
        self, tags: Iterable[SimulatedTag], port_name: str
    ) -> Dict[str, List[SimulatedTag]]:
        self._require_playback()
        return super().remove_many(tags, port_name)

    # -- playback ------------------------------------------------------------------

    def play(self, count: Optional[int] = None) -> int:
        """Apply the next ``count`` recorded events (all when ``None``).

        Time between events is driven through the environment's clock
        exactly as :meth:`TraceReplayer.replay` does -- a
        ``ManualClock`` advances by the recorded deltas, a real clock
        replays instantly. Returns how many events were applied.
        """
        from repro.radio.trace import TraceReplayer

        env = self.environment
        remaining = self._events[self._cursor :]
        if count is not None:
            remaining = remaining[:count]
        if not remaining:
            return 0
        # The replayer persists across play()/step() calls: it tracks the
        # recorded timeline position, so stepping never re-pays earlier
        # events' absolute timestamps as fresh clock advances.
        if self._replayer is None:
            self._replayer = TraceReplayer(env, self._tags_by_uid)
        self._playing = True
        try:
            applied = self._replayer.replay(remaining)
        finally:
            self._playing = False
        self._cursor += applied
        return applied

    def step(self) -> int:
        """Apply exactly the next recorded event (0 when exhausted)."""
        return self.play(1)
