"""Field events emitted by the radio environment to adapter ports."""

from __future__ import annotations

from dataclasses import dataclass

from repro.tags.tag import SimulatedTag


@dataclass(frozen=True)
class FieldEvent:
    """Base class for radio-field events."""


@dataclass(frozen=True)
class TagFieldEvent(FieldEvent):
    """Base class for events about one specific tag.

    The ``tag`` attribute lets ports route these to the listeners
    registered for exactly that tag (``NfcAdapterPort.add_tag_listener``)
    instead of fanning every event out to every listener -- with
    thousands of tag references per port, per-event cost stays O(1)
    in the number of references.
    """

    tag: SimulatedTag


@dataclass(frozen=True)
class TagEntered(TagFieldEvent):
    """A tag came into the reading range of a port."""


@dataclass(frozen=True)
class TagLeft(TagFieldEvent):
    """A tag left the reading range of a port."""


@dataclass(frozen=True)
class PeerEntered(FieldEvent):
    """Another phone came into Beam range of a port."""

    peer_name: str


@dataclass(frozen=True)
class PeerLeft(FieldEvent):
    """A peer phone left Beam range of a port."""

    peer_name: str
