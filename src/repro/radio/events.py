"""Field events emitted by the radio environment to adapter ports."""

from __future__ import annotations

from dataclasses import dataclass

from repro.tags.tag import SimulatedTag


@dataclass(frozen=True)
class FieldEvent:
    """Base class for radio-field events."""


@dataclass(frozen=True)
class TagEntered(FieldEvent):
    """A tag came into the reading range of a port."""

    tag: SimulatedTag


@dataclass(frozen=True)
class TagLeft(FieldEvent):
    """A tag left the reading range of a port."""

    tag: SimulatedTag


@dataclass(frozen=True)
class PeerEntered(FieldEvent):
    """Another phone came into Beam range of a port."""

    peer_name: str


@dataclass(frozen=True)
class PeerLeft(FieldEvent):
    """A peer phone left Beam range of a port."""

    peer_name: str
