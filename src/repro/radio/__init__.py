"""NFC radio-field simulation.

Models the physical layer the paper's middleware has to survive: a field of
a few centimeters that tags and peer phones wander in and out of, links
that tear mid-operation, and transfer latency proportional to payload size.

The three moving parts:

* :class:`~repro.radio.environment.RfidEnvironment` -- the shared world.
  Tests and scenario scripts move tags into and out of the field of
  adapters and bring phones together for Beam.
* :class:`~repro.radio.port.NfcAdapterPort` -- one device's radio. The
  simulated Android ``NfcAdapter`` sits on top of a port.
* link models (:mod:`repro.radio.link`) -- deterministic, seeded-random or
  scripted per-attempt failure behaviour.
"""

from repro.radio.events import FieldEvent, PeerEntered, PeerLeft, TagEntered, TagLeft
from repro.radio.link import (
    FlakyThenGoodLink,
    LinkModel,
    LossyLink,
    PerfectLink,
    ScriptedLink,
)
from repro.radio.timing import NO_DELAY, TransferTiming
from repro.radio.transport import (
    LocalFieldTransport,
    RelayTransport,
    TraceTransport,
    Transport,
)
from repro.radio.environment import RfidEnvironment
from repro.radio.geometry import Position, SpatialEnvironment
from repro.radio.port import NfcAdapterPort
from repro.radio.port import TagSession
from repro.radio.snep import SnepClient, SnepFrame, SnepServer
from repro.radio.trace import RadioTracer, TraceReplayer, trace_from_json

# Imported last: txscheduler reaches back into repro.core.scheduler,
# which transitively imports repro.radio submodules (fine while this
# package is mid-initialization, as long as nothing before this line is
# still missing).
from repro.radio.txscheduler import PortTransactionScheduler

__all__ = [
    "RfidEnvironment",
    "SpatialEnvironment",
    "Position",
    "NfcAdapterPort",
    "TagSession",
    "PortTransactionScheduler",
    "LinkModel",
    "PerfectLink",
    "LossyLink",
    "ScriptedLink",
    "FlakyThenGoodLink",
    "TransferTiming",
    "NO_DELAY",
    "Transport",
    "LocalFieldTransport",
    "RelayTransport",
    "TraceTransport",
    "FieldEvent",
    "TagEntered",
    "TagLeft",
    "PeerEntered",
    "PeerLeft",
    "SnepFrame",
    "SnepClient",
    "SnepServer",
    "RadioTracer",
    "TraceReplayer",
    "trace_from_json",
]
