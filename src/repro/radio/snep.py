"""SNEP: the Simple NDEF Exchange Protocol (what Android Beam speaks).

Up to now the simulation teleported beamed messages; real phones wrap
them in SNEP (NFC Forum, v1.0) over LLCP. This module implements the
SNEP layer faithfully enough that the wire behaviour -- version
negotiation, PUT/GET requests, response codes, and fragmentation with
CONTINUE handshakes -- is observable and testable:

* frame = ``version(1) code(1) length(4, big endian) information``;
* a request larger than the link's MIU is fragmented: the first fragment
  carries the header and the start of the information field, the server
  answers CONTINUE, and the remaining fragments carry raw continuation
  bytes;
* the default server (Android's) accepts PUT and rejects GET with
  NOT IMPLEMENTED unless a GET provider is installed.

The radio port drives a :class:`SnepClient` against the peer's
:class:`SnepServer` for every Beam push; see
:meth:`repro.radio.port.NfcAdapterPort.beam`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import BeamError

SNEP_VERSION = 0x10  # major 1, minor 0

# Request codes.
REQ_CONTINUE = 0x00
REQ_GET = 0x01
REQ_PUT = 0x02
REQ_REJECT = 0x7F

# Response codes.
RES_CONTINUE = 0x80
RES_SUCCESS = 0x81
RES_NOT_FOUND = 0xC0
RES_EXCESS_DATA = 0xC1
RES_BAD_REQUEST = 0xC2
RES_NOT_IMPLEMENTED = 0xE0
RES_UNSUPPORTED_VERSION = 0xE1
RES_REJECT = 0xFF

_HEADER_SIZE = 6


class SnepProtocolError(BeamError):
    """Malformed SNEP bytes or a protocol violation."""


@dataclass(frozen=True)
class SnepFrame:
    """One SNEP message (request or response)."""

    code: int
    information: bytes = b""
    version: int = SNEP_VERSION
    # On the wire the length field may announce more bytes than this
    # fragment carries; ``announced_length`` preserves it for reassembly.
    announced_length: Optional[int] = None

    @property
    def total_length(self) -> int:
        return (
            self.announced_length
            if self.announced_length is not None
            else len(self.information)
        )

    def to_bytes(self) -> bytes:
        return (
            bytes([self.version, self.code])
            + self.total_length.to_bytes(4, "big")
            + self.information
        )

    @staticmethod
    def from_bytes(raw: bytes) -> "SnepFrame":
        if len(raw) < _HEADER_SIZE:
            raise SnepProtocolError("SNEP frame shorter than its header")
        version, code = raw[0], raw[1]
        announced = int.from_bytes(raw[2:6], "big")
        information = bytes(raw[6:])
        if len(information) > announced:
            raise SnepProtocolError(
                f"frame carries {len(information)} bytes but announces {announced}"
            )
        return SnepFrame(
            code=code,
            information=information,
            version=version,
            announced_length=announced,
        )


class SnepServer:
    """The receiving side: accepts PUT (and optionally GET) requests.

    ``on_put(sender, ndef_bytes)`` is invoked with the complete,
    reassembled information field. Partial transfers are tracked per
    sender so interleaved pushes from different peers cannot corrupt
    each other.
    """

    def __init__(
        self,
        on_put: Callable[[str, bytes], None],
        get_provider: Optional[Callable[[str, bytes], Optional[bytes]]] = None,
    ) -> None:
        self._on_put = on_put
        self._get_provider = get_provider
        self._lock = threading.Lock()
        self._partial: Dict[str, "_Reassembly"] = {}
        self.puts_accepted = 0
        self.frames_processed = 0

    def process(self, sender: str, raw: bytes) -> bytes:
        """Handle one incoming fragment; returns the response frame bytes."""
        with self._lock:
            self.frames_processed += 1
            partial = self._partial.get(sender)
        if partial is not None:
            return self._continue_transfer(sender, partial, raw)
        try:
            frame = SnepFrame.from_bytes(raw)
        except SnepProtocolError:
            return SnepFrame(code=RES_BAD_REQUEST).to_bytes()
        if frame.version >> 4 != SNEP_VERSION >> 4:
            return SnepFrame(code=RES_UNSUPPORTED_VERSION).to_bytes()
        if frame.code == REQ_PUT:
            return self._start_put(sender, frame)
        if frame.code == REQ_GET:
            return self._handle_get(sender, frame)
        return SnepFrame(code=RES_NOT_IMPLEMENTED).to_bytes()

    def _start_put(self, sender: str, frame: SnepFrame) -> bytes:
        if len(frame.information) < frame.total_length:
            with self._lock:
                self._partial[sender] = _Reassembly(
                    expected=frame.total_length,
                    buffer=bytearray(frame.information),
                )
            return SnepFrame(code=RES_CONTINUE).to_bytes()
        return self._complete_put(sender, bytes(frame.information))

    def _continue_transfer(self, sender: str, partial: "_Reassembly", raw: bytes) -> bytes:
        partial.buffer += raw
        if len(partial.buffer) > partial.expected:
            with self._lock:
                self._partial.pop(sender, None)
            return SnepFrame(code=RES_EXCESS_DATA).to_bytes()
        if len(partial.buffer) < partial.expected:
            return SnepFrame(code=RES_CONTINUE).to_bytes()
        with self._lock:
            self._partial.pop(sender, None)
        return self._complete_put(sender, bytes(partial.buffer))

    def _complete_put(self, sender: str, information: bytes) -> bytes:
        self._on_put(sender, information)
        with self._lock:
            self.puts_accepted += 1
        return SnepFrame(code=RES_SUCCESS).to_bytes()

    def _handle_get(self, sender: str, frame: SnepFrame) -> bytes:
        if self._get_provider is None:
            return SnepFrame(code=RES_NOT_IMPLEMENTED).to_bytes()
        # The GET information field: 4-byte acceptable length + request NDEF.
        if len(frame.information) < 4:
            return SnepFrame(code=RES_BAD_REQUEST).to_bytes()
        acceptable = int.from_bytes(frame.information[:4], "big")
        answer = self._get_provider(sender, frame.information[4:])
        if answer is None:
            return SnepFrame(code=RES_NOT_FOUND).to_bytes()
        if len(answer) > acceptable:
            return SnepFrame(code=RES_EXCESS_DATA).to_bytes()
        return SnepFrame(code=RES_SUCCESS, information=answer).to_bytes()


class _Reassembly:
    def __init__(self, expected: int, buffer: bytearray) -> None:
        self.expected = expected
        self.buffer = buffer


class SnepClient:
    """The sending side: PUT (and GET) over an exchange function.

    ``exchange(request_bytes) -> response_bytes`` is the transport -- in
    the simulation, one radio round trip through the port (which may
    raise ``TagLostError`` when the link tears).
    """

    def __init__(
        self,
        exchange: Callable[[bytes], bytes],
        miu: int = 128,
    ) -> None:
        if miu <= _HEADER_SIZE:
            raise SnepProtocolError(f"MIU must exceed the {_HEADER_SIZE}-byte header")
        self._exchange = exchange
        self._miu = miu
        self.fragments_sent = 0

    def put(self, ndef_bytes: bytes) -> None:
        """PUT the message; raises :class:`SnepProtocolError` on rejection."""
        first_payload = ndef_bytes[: self._miu - _HEADER_SIZE]
        first = SnepFrame(
            code=REQ_PUT,
            information=first_payload,
            announced_length=len(ndef_bytes),
        )
        response = self._send(first.to_bytes())
        offset = len(first_payload)
        while response.code == RES_CONTINUE:
            if offset >= len(ndef_bytes):
                raise SnepProtocolError("server asked to continue a complete PUT")
            fragment = ndef_bytes[offset : offset + self._miu]
            offset += len(fragment)
            response = self._send(fragment)
        if response.code != RES_SUCCESS:
            raise SnepProtocolError(
                f"PUT rejected with SNEP response 0x{response.code:02x}"
            )

    def get(self, request_ndef: bytes, acceptable_length: int = 0xFFFF) -> bytes:
        """GET: returns the server's NDEF bytes, or raises."""
        frame = SnepFrame(
            code=REQ_GET,
            information=acceptable_length.to_bytes(4, "big") + request_ndef,
        )
        response = self._send(frame.to_bytes())
        if response.code == RES_NOT_FOUND:
            raise SnepProtocolError("GET: not found")
        if response.code != RES_SUCCESS:
            raise SnepProtocolError(
                f"GET rejected with SNEP response 0x{response.code:02x}"
            )
        return response.information

    def _send(self, raw: bytes) -> SnepFrame:
        self.fragments_sent += 1
        return SnepFrame.from_bytes(self._exchange(raw))
