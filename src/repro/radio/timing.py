"""Transfer latency model.

NFC Type 2 transfers are slow relative to application code -- that is the
whole reason the paper forbids blocking the main thread on them. The
timing model converts a byte count into a latency that the port sleeps on
the *calling* thread (faithful to the blocking Android API; MORENA moves
that block onto the reference's private event loop thread).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransferTiming:
    """Latency = ``base_seconds`` + ``seconds_per_byte`` * bytes."""

    base_seconds: float = 0.005
    seconds_per_byte: float = 1e-4

    def operation_seconds(self, byte_count: int) -> float:
        return self.base_seconds + self.seconds_per_byte * max(byte_count, 0)


NO_DELAY = TransferTiming(base_seconds=0.0, seconds_per_byte=0.0)

# Roughly what an NTAG at 106 kbit/s feels like end to end.
NOMINAL = TransferTiming(base_seconds=0.02, seconds_per_byte=1e-4)
