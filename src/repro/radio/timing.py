"""Transfer latency model.

NFC Type 2 transfers are slow relative to application code -- that is the
whole reason the paper forbids blocking the main thread on them. The
timing model converts a byte count into a latency that the port sleeps on
the *calling* thread (faithful to the blocking Android API; MORENA moves
that block onto the reference's private event loop thread).

The per-operation cost splits into two physical components:

* **connect** -- field activation, anticollision and tag selection. Paid
  once per transaction on real hardware; the dominant share of the base
  overhead (NFCGate measures it at the large majority of a short
  exchange's wall time).
* **per-op** -- the command/response exchange itself, plus the data
  transfer proportional to the bytes moved.

A standalone operation (``operation_seconds``) pays both. A *batched*
session (see :meth:`NfcAdapterPort.open_session`) pays the connect share
once (``connect_seconds``) and then only the per-op share for each
operation in the window (``batched_operation_seconds``) -- which is
exactly why the per-port transaction scheduler exists. The split is a
refinement, not a change: ``connect_seconds + batched_operation_seconds(n)
== operation_seconds(n)``, so a batch of one costs what a standalone
operation always did.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransferTiming:
    """Latency = ``base_seconds`` + ``seconds_per_byte`` * bytes.

    ``connect_share`` is the fraction of ``base_seconds`` spent on
    field activation + anticollision (paid once per batched session);
    the remainder is the per-operation command overhead.
    """

    base_seconds: float = 0.005
    seconds_per_byte: float = 1e-4
    connect_share: float = 0.8

    def operation_seconds(self, byte_count: int) -> float:
        return self.base_seconds + self.seconds_per_byte * max(byte_count, 0)

    @property
    def connect_seconds(self) -> float:
        """One-time cost of connecting to a tag (anticollision + select)."""
        return self.base_seconds * self.connect_share

    @property
    def per_op_seconds(self) -> float:
        """Fixed per-operation overhead inside an open session."""
        return self.base_seconds - self.connect_seconds

    def batched_operation_seconds(self, byte_count: int) -> float:
        """Cost of one operation inside an already-connected session."""
        return self.per_op_seconds + self.seconds_per_byte * max(byte_count, 0)


NO_DELAY = TransferTiming(base_seconds=0.0, seconds_per_byte=0.0)

# Roughly what an NTAG at 106 kbit/s feels like end to end.
NOMINAL = TransferTiming(base_seconds=0.02, seconds_per_byte=1e-4)
