"""Spatial radio simulation: positions, range bands, distance loss.

The flat :class:`~repro.radio.environment.RfidEnvironment` asks scenario
code to move tags in and out of fields explicitly. The
:class:`SpatialEnvironment` derives those transitions from 2-D geometry
instead, the way a physical bench test would:

* a tag within ``reliable_range`` of a phone is in the field and
  transfers reliably;
* between ``reliable_range`` and ``max_range`` it is in the field but in
  the *edge zone*: transfer attempts fail with a probability growing
  linearly toward the range boundary (the "tiny NFC chips ... failure is
  the rule" regime of the paper's introduction);
* beyond ``max_range`` it is out of the field.

Phones in mutual ``max_range`` are in Beam proximity. Movement is
explicit (``move_tag`` / ``move_phone``); each movement refreshes field
memberships and fires the usual field events, so everything built on the
flat environment (adapters, references, discoverers) works unchanged.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.clock import Clock
from repro.errors import RadioError
from repro.radio.environment import RfidEnvironment
from repro.radio.port import NfcAdapterPort
from repro.radio.timing import NO_DELAY, TransferTiming
from repro.tags.tag import SimulatedTag

# NFC-ish defaults, in meters.
DEFAULT_RELIABLE_RANGE = 0.02
DEFAULT_MAX_RANGE = 0.04


@dataclass(frozen=True)
class Position:
    """A point in the 2-D bench plane (meters)."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class SpatialEnvironment(RfidEnvironment):
    """A radio world driven by geometry instead of explicit field edits."""

    def __init__(
        self,
        reliable_range: float = DEFAULT_RELIABLE_RANGE,
        max_range: float = DEFAULT_MAX_RANGE,
        seed: int = 0,
        clock: Optional[Clock] = None,
        timing: TransferTiming = NO_DELAY,
        default_link: Optional[object] = None,
        transport: Optional[object] = None,
    ) -> None:
        if not 0 < reliable_range <= max_range:
            raise RadioError("need 0 < reliable_range <= max_range")
        super().__init__(
            clock=clock,
            timing=timing,
            default_link=default_link,
            transport=transport,
        )
        self.reliable_range = reliable_range
        self.max_range = max_range
        self._rng = random.Random(seed)
        self._tag_positions: Dict[SimulatedTag, Position] = {}
        self._port_positions: Dict[str, Position] = {}

    # -- placement ----------------------------------------------------------------

    def place_phone(self, port: NfcAdapterPort, x: float, y: float) -> None:
        self._port_positions[port.name] = Position(x, y)
        self._refresh()

    def place_tag(self, tag: SimulatedTag, x: float, y: float) -> None:
        self._tag_positions[tag] = Position(x, y)
        self._refresh()

    def move_phone(self, port: NfcAdapterPort, x: float, y: float) -> None:
        if port.name not in self._port_positions:
            raise RadioError(f"phone {port.name!r} was never placed")
        self.place_phone(port, x, y)

    def move_tag(self, tag: SimulatedTag, x: float, y: float) -> None:
        if tag not in self._tag_positions:
            raise RadioError("tag was never placed")
        self.place_tag(tag, x, y)

    def tag_position(self, tag: SimulatedTag) -> Position:
        return self._tag_positions[tag]

    def phone_position(self, port: NfcAdapterPort) -> Position:
        return self._port_positions[port.name]

    def distance(self, port: NfcAdapterPort, tag: SimulatedTag) -> Optional[float]:
        """Distance between a placed phone and a placed tag, else ``None``."""
        tag_pos = self._tag_positions.get(tag)
        port_pos = self._port_positions.get(port.name)
        if tag_pos is None or port_pos is None:
            return None
        return port_pos.distance_to(tag_pos)

    # -- the geometry -> topology refresh ----------------------------------------------

    def _refresh(self) -> None:
        ports = [self.port(name) for name in self.port_names()]
        for port in ports:
            port_pos = self._port_positions.get(port.name)
            for tag, tag_pos in list(self._tag_positions.items()):
                if port_pos is None:
                    continue
                if port_pos.distance_to(tag_pos) <= self.max_range:
                    self.move_tag_into_field(tag, port)
                else:
                    self.remove_tag_from_field(tag, port)
        for index, first in enumerate(ports):
            first_pos = self._port_positions.get(first.name)
            for second in ports[index + 1 :]:
                second_pos = self._port_positions.get(second.name)
                if first_pos is None or second_pos is None:
                    continue
                if first_pos.distance_to(second_pos) <= self.max_range:
                    self.bring_together(first, second)
                else:
                    self.separate(first, second)

    # -- distance-dependent reliability ---------------------------------------------------

    def attempt_allowed(self, port: NfcAdapterPort, tag: SimulatedTag) -> bool:
        """Edge-zone attrition: reliable inside ``reliable_range``, linearly
        degrading toward ``max_range``."""
        distance = self.distance(port, tag)
        if distance is None:
            return True  # unplaced objects behave like the flat environment
        if distance <= self.reliable_range:
            return True
        if distance > self.max_range:
            return False
        band = self.max_range - self.reliable_range
        success_probability = (self.max_range - distance) / band
        return self._rng.random() < success_probability
