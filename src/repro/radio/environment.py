"""The shared radio world.

An :class:`RfidEnvironment` owns a set of named adapter ports (one per
simulated phone) and tracks which tags are currently inside which port's
field, plus which ports are in Beam range of each other. Scenario scripts
and tests mutate the world through ``move_tag_into_field`` /
``remove_tag_from_field`` / ``tap`` / ``bring_together``; ports observe the
changes through field events.

All mutations are serialized under one lock; event callbacks are invoked
outside the lock (ports post them onto their device's main looper, so the
callback bodies are trivial).

Tag visibility itself is delegated to a pluggable
:class:`~repro.radio.transport.Transport` (local simulated field by
default; NFCGate-style relay and recorded-trace sources are the other
two shipped backends) -- the environment keeps the locking, ownership
checks and event dispatch, the transport answers *which ports see which
tags*.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.clock import Clock, SystemClock
from repro.errors import RadioError
from repro.radio.events import PeerEntered, PeerLeft, TagEntered, TagLeft
from repro.radio.link import LinkModel, link_from_spec
from repro.radio.port import NfcAdapterPort
from repro.radio.timing import NO_DELAY, TransferTiming
from repro.radio.transport import LocalFieldTransport, Transport
from repro.tags.tag import SimulatedTag


class RfidEnvironment:
    """The world every simulated phone and tag lives in."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        timing: TransferTiming = NO_DELAY,
        default_link: Optional[object] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        self._clock = clock if clock is not None else SystemClock()
        self._timing = timing
        self._default_link_spec = default_link
        self._lock = threading.RLock()
        self._ports: Dict[str, NfcAdapterPort] = {}
        # Field topology lives in the transport (which ports see which tags).
        self._transport = transport if transport is not None else LocalFieldTransport()
        self._transport.attach(self)
        # unordered pairs of port names in Beam range
        self._proximities: Set[Tuple[str, str]] = set()

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def transport(self) -> Transport:
        return self._transport

    @property
    def timing(self) -> TransferTiming:
        return self._timing

    # -- ports -----------------------------------------------------------------

    def create_port(
        self,
        name: str,
        link: Optional[object] = None,
    ) -> NfcAdapterPort:
        """Create and register the radio port of a new phone."""
        with self._lock:
            if name in self._ports:
                raise RadioError(f"a port named {name!r} already exists")
            model: LinkModel = link_from_spec(
                link if link is not None else self._default_link_spec
            )
            port = NfcAdapterPort(
                name=name,
                environment=self,
                link=model,
                clock=self._clock,
                timing=self._timing,
            )
            self._ports[name] = port
            self._transport.add_port(name)
            return port

    def port(self, name: str) -> NfcAdapterPort:
        with self._lock:
            try:
                return self._ports[name]
            except KeyError:
                raise RadioError(f"no port named {name!r}") from None

    def port_names(self) -> List[str]:
        with self._lock:
            return sorted(self._ports)

    # -- tag/field topology ------------------------------------------------------

    def move_tag_into_field(self, tag: SimulatedTag, port: NfcAdapterPort) -> None:
        """Bring ``tag`` into reading range of ``port`` (idempotent)."""
        with self._lock:
            self._check_owned(port)
            observers = self._transport.insert(tag, port.name)
            ports = [self._ports[name] for name in observers]
        # The port routes the event to its generic listeners plus the
        # listeners registered for exactly this tag (wakeup fan-out).
        for observer in ports:
            observer.dispatch_field_event(TagEntered(tag))

    def remove_tag_from_field(self, tag: SimulatedTag, port: NfcAdapterPort) -> None:
        """Take ``tag`` out of range of ``port`` (idempotent)."""
        with self._lock:
            self._check_owned(port)
            observers = self._transport.remove(tag, port.name)
            ports = [self._ports[name] for name in observers]
        for observer in ports:
            observer.dispatch_field_event(TagLeft(tag))

    def move_tags_into_field(
        self, tags: Iterable[SimulatedTag], port: NfcAdapterPort
    ) -> int:
        """Bring many tags into ``port``'s field at once (idempotent).

        Crowd-scale variant of :meth:`move_tag_into_field`: one lock
        acquisition for the whole cohort, one bulk event dispatch for the
        tags that actually entered. Returns how many tags were fresh
        (not already in the field).
        """
        with self._lock:
            self._check_owned(port)
            by_observer = self._transport.insert_many(tags, port.name)
            routed = [
                (self._ports[name], fresh)
                for name, fresh in by_observer.items()
            ]
        for observer, fresh in routed:
            observer.dispatch_field_events([TagEntered(tag) for tag in fresh])
        return len(by_observer.get(port.name, ()))

    def remove_tags_from_field(
        self, tags: Iterable[SimulatedTag], port: NfcAdapterPort
    ) -> int:
        """Take many tags out of ``port``'s field at once (idempotent).

        Returns how many tags were actually present and left.
        """
        with self._lock:
            self._check_owned(port)
            by_observer = self._transport.remove_many(tags, port.name)
            routed = [
                (self._ports[name], gone)
                for name, gone in by_observer.items()
            ]
        for observer, gone in routed:
            observer.dispatch_field_events([TagLeft(tag) for tag in gone])
        return len(by_observer.get(port.name, ()))

    def tag_in_field(self, tag: SimulatedTag, port: NfcAdapterPort) -> bool:
        with self._lock:
            self._check_owned(port)
            return self._transport.sees(port.name, tag)

    def tags_in_field(self, port: NfcAdapterPort) -> List[SimulatedTag]:
        with self._lock:
            self._check_owned(port)
            return self._transport.visible_tags(port.name)

    def field_size(self, port: NfcAdapterPort) -> int:
        """How many tags are currently inside ``port``'s field."""
        with self._lock:
            self._check_owned(port)
            return len(self._transport.visible_tags(port.name))

    def ports_seeing(self, tag: SimulatedTag) -> List[str]:
        with self._lock:
            return self._transport.ports_seeing(tag)

    # -- relayed fields (RelayTransport) ---------------------------------------------

    def pair_fields(self, reader: NfcAdapterPort, remote: NfcAdapterPort) -> int:
        """Relay ``remote``'s physical field to ``reader`` (NFCGate-style).

        Requires a :class:`~repro.radio.transport.RelayTransport`
        backend (``RadioError`` otherwise). Tags already lying in the
        remote field surface as ``TagEntered`` on the reader; returns
        how many did.
        """
        with self._lock:
            self._check_owned(reader)
            self._check_owned(remote)
            fresh = self._transport.link(reader.name, remote.name)
        if fresh:
            reader.dispatch_field_events([TagEntered(tag) for tag in fresh])
        return len(fresh)

    def unpair_fields(self, reader: NfcAdapterPort, remote: NfcAdapterPort) -> int:
        """Stop relaying ``remote``'s field to ``reader``.

        Tags the reader only saw through the relay leave its field
        (``TagLeft``); returns how many left.
        """
        with self._lock:
            self._check_owned(reader)
            self._check_owned(remote)
            gone = self._transport.unlink(reader.name, remote.name)
        if gone:
            reader.dispatch_field_events([TagLeft(tag) for tag in gone])
        return len(gone)

    def transfer_overhead_seconds(
        self, port: NfcAdapterPort, tag: SimulatedTag
    ) -> float:
        """Transport surcharge for one radio round trip (relay hop cost)."""
        with self._lock:
            return self._transport.operation_overhead_seconds(port.name, tag)

    @contextlib.contextmanager
    def tap(self, tag: SimulatedTag, port: NfcAdapterPort) -> Iterator[None]:
        """Scope a tap: tag is in the field inside the ``with`` block only."""
        self.move_tag_into_field(tag, port)
        try:
            yield
        finally:
            self.remove_tag_from_field(tag, port)

    def tap_for(
        self, tag: SimulatedTag, port: NfcAdapterPort, seconds: float
    ) -> threading.Timer:
        """Real-time tap: tag enters now and leaves after ``seconds``.

        Only meaningful with a real clock; returns the removal timer so the
        caller can cancel or join it.
        """
        self.move_tag_into_field(tag, port)
        timer = threading.Timer(
            seconds, self.remove_tag_from_field, args=(tag, port)
        )
        timer.daemon = True
        timer.start()
        return timer

    # -- peer (Beam) topology -----------------------------------------------------

    def bring_together(self, a: NfcAdapterPort, b: NfcAdapterPort) -> None:
        """Put two phones in Beam range of each other (idempotent)."""
        if a is b:
            raise RadioError("a phone cannot be in Beam range of itself")
        with self._lock:
            self._check_owned(a)
            self._check_owned(b)
            pair = self._pair(a.name, b.name)
            if pair in self._proximities:
                return
            self._proximities.add(pair)
        a.dispatch_field_event(PeerEntered(b.name))
        b.dispatch_field_event(PeerEntered(a.name))

    def separate(self, a: NfcAdapterPort, b: NfcAdapterPort) -> None:
        """Move two phones out of Beam range (idempotent)."""
        with self._lock:
            pair = self._pair(a.name, b.name)
            if pair not in self._proximities:
                return
            self._proximities.discard(pair)
        a.dispatch_field_event(PeerLeft(b.name))
        b.dispatch_field_event(PeerLeft(a.name))

    def peers_of(self, port: NfcAdapterPort) -> List[NfcAdapterPort]:
        with self._lock:
            names = set()
            for one, other in self._proximities:
                if one == port.name:
                    names.add(other)
                elif other == port.name:
                    names.add(one)
            return [self._ports[name] for name in sorted(names)]

    def in_beam_range(self, a: NfcAdapterPort, b: NfcAdapterPort) -> bool:
        with self._lock:
            return self._pair(a.name, b.name) in self._proximities

    # -- reliability hook --------------------------------------------------------------

    def attempt_allowed(self, port: NfcAdapterPort, tag: SimulatedTag) -> bool:
        """Per-attempt veto hook for subclasses.

        The flat environment always allows attempts (the port's link model
        is the only failure source); :class:`repro.radio.geometry.
        SpatialEnvironment` overrides this with distance-dependent
        edge-zone attrition.
        """
        return True

    # -- internals -----------------------------------------------------------------

    def _check_owned(self, port: NfcAdapterPort) -> None:
        if self._ports.get(port.name) is not port:
            raise RadioError(f"port {port.name!r} is not part of this environment")

    @staticmethod
    def _pair(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)
