"""Per-attempt link behaviour models.

Every radio operation (read, write, format, beam) asks the port's link
model whether this attempt succeeds. Failure means the link tore -- the
operation raises :class:`~repro.errors.TagLostError`, exactly what the
blocking Android API surfaces and what MORENA's far references absorb
with silent retries.

All randomness is seeded so benchmarks and property tests are repeatable.
"""

from __future__ import annotations

import random
import threading
from typing import Iterable, List, Optional, Protocol, runtime_checkable


@runtime_checkable
class LinkModel(Protocol):
    """Decides the fate of each transfer attempt."""

    def attempt_succeeds(self, byte_count: int) -> bool:
        """Return ``True`` if an attempt moving ``byte_count`` bytes completes."""
        ...  # pragma: no cover - protocol


class PerfectLink:
    """Every attempt succeeds. The unit-test default."""

    def attempt_succeeds(self, byte_count: int) -> bool:
        return True

    def __repr__(self) -> str:
        return "PerfectLink()"


class LossyLink:
    """Independent per-attempt failure with probability ``loss``.

    Optionally size-dependent: with ``per_byte_loss`` set, the survival
    probability decays with transfer size, modelling the longer window a
    big transfer leaves for the user's hand to drift. Thread-safe.
    """

    def __init__(
        self,
        loss: float,
        seed: int = 0,
        per_byte_loss: float = 0.0,
    ) -> None:
        if not 0.0 <= loss <= 1.0:
            raise ValueError("loss must be a probability")
        if per_byte_loss < 0.0:
            raise ValueError("per_byte_loss must be >= 0")
        self._loss = loss
        self._per_byte_loss = per_byte_loss
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.attempts = 0
        self.failures = 0

    def attempt_succeeds(self, byte_count: int) -> bool:
        with self._lock:
            self.attempts += 1
            survive = (1.0 - self._loss) * (
                (1.0 - self._per_byte_loss) ** max(byte_count, 0)
            )
            success = self._rng.random() < survive
            if not success:
                self.failures += 1
            return success

    def __repr__(self) -> str:
        return f"LossyLink(loss={self._loss}, per_byte_loss={self._per_byte_loss})"


class ScriptedLink:
    """Plays back an explicit success/failure script, then a default.

    Deterministic by construction -- the workhorse of the failure-injection
    tests ("first two write attempts tear, the third succeeds").
    """

    def __init__(self, outcomes: Iterable[bool], default: bool = True) -> None:
        self._outcomes: List[bool] = list(outcomes)
        self._default = default
        self._index = 0
        self._lock = threading.Lock()

    def attempt_succeeds(self, byte_count: int) -> bool:
        with self._lock:
            if self._index < len(self._outcomes):
                outcome = self._outcomes[self._index]
                self._index += 1
                return outcome
            return self._default

    @property
    def consumed(self) -> int:
        with self._lock:
            return self._index

    def __repr__(self) -> str:
        return f"ScriptedLink(remaining={len(self._outcomes) - self.consumed})"


class FlakyThenGoodLink(ScriptedLink):
    """Fails the first ``failures`` attempts, then succeeds forever."""

    def __init__(self, failures: int) -> None:
        super().__init__([False] * failures, default=True)


def link_from_spec(spec: Optional[object]) -> LinkModel:
    """Coerce a convenience spec into a link model.

    ``None`` -> :class:`PerfectLink`; a float -> :class:`LossyLink` with
    that loss probability; an existing model passes through.
    """
    if spec is None:
        return PerfectLink()
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return LossyLink(float(spec))
    if isinstance(spec, LinkModel):
        return spec
    raise TypeError(f"cannot build a link model from {spec!r}")
