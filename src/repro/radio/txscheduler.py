"""The per-port radio transaction scheduler: batch round-trips per tap.

The reactor (PR 1) multiplexes thousands of reference event loops onto a
bounded pool, and coalescing (PR 2/4) removes redundant writes *within*
one reference. What neither touches is the physical cost structure: every
operation still pays the full per-round-trip overhead — field activation,
anticollision, select — because references issue ``port.read_ndef`` /
``write_ndef`` one at a time with no knowledge of each other. On real
hardware that connect cost dominates short exchanges, so N references
with one pending write each turn a single tap into N full transactions.

This module is the batching *policy layer* between the reactor and the
port (the distribution-policy/application-logic split RAFDA argues for:
application code and the reference API never see it):

* every device owns one :class:`PortTransactionScheduler` (lazily, see
  ``AndroidDevice.tx_scheduler``); batch-managed references register
  themselves keyed by their simulated tag;
* references and field events mark tags runnable on a
  :class:`~repro.core.scheduler.PortReadyQueue`; the scheduler runs as a
  **single serial reactor task per port**, so the reactor hands a whole
  per-port batch to one worker — which also matches the physics (one
  radio, one transaction at a time);
* on each tap window the scheduler **drains the ready head operations of
  every reference bound to the tag through one**
  :class:`~repro.radio.port.TagSession`: one connect/anticollision cost
  per (tag, window), per-operation data latency still charged, and the
  link model still free to tear any individual transfer mid-batch.

Ordering is the load-bearing part. The drain executes ready heads in
**global enqueue order** (``Operation.op_id`` is a process-wide counter
assigned at enqueue), which preserves each reference's FIFO by
construction. Fences — reads, raw writes (lease-guarded writes,
renewals), locks, formats — are stricter: a fence executes only when it
is the globally-oldest pending operation among the tag's references, and
while a fence is pending no younger operation of another reference may
overtake it. A lease-guarded write therefore can never be reordered
across another reference's operation on the same tag (see
``tests/leasing/test_guarded_batching.py``).

Failure semantics are *partial-batch settlement*: operations that
completed before a tear have settled (their listeners are already posted,
in FIFO order, on the activity's main looper); the torn operation stays
queued and retries after its reference's backoff; the rest simply remain
queued and are picked up by the next window — the session died with the
tear, so the next attempt pays a fresh connect.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.errors import NotInFieldError, TagLostError
from repro.radio.events import FieldEvent, TagEntered, TagLeft
from repro.radio.port import TagSession
from repro.tags.tag import SimulatedTag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clock import Clock
    from repro.core.reference import TagReference
    from repro.core.scheduler import PortReadyQueue, Reactor
    from repro.radio.port import NfcAdapterPort

# One drain quantum processes at most this many operations before
# yielding its reactor worker (mirrors the reference's own step burst).
_DRAIN_BURST_OPS = 128

# Backoff after a connect/anticollision tear (the tag is flapping at the
# field edge); transfer tears use the owning reference's retry interval.
_CONNECT_RETRY_SECONDS = 0.02


class PortTransactionScheduler:
    """Batches the radio round-trips of co-located references per port.

    Created once per device (``AndroidDevice.tx_scheduler``). References
    running in batched mode register here; the scheduler owns all their
    radio execution while their tag is in the field. Deadlines, retries
    while absent, cancellation and listener settlement stay with each
    reference — this layer only decides *when the radio speaks and for
    whom*.
    """

    def __init__(
        self, port: "NfcAdapterPort", reactor: "Reactor", clock: "Clock"
    ) -> None:
        # Deferred import: repro.core reaches back into repro.radio at
        # package-init time, so importing the scheduler module here at
        # module scope would close an import cycle.
        from repro.core.scheduler import PortReadyQueue

        self._port = port
        self._clock = clock
        self._lock = threading.Lock()
        self._references: Dict[SimulatedTag, List["TagReference"]] = {}
        self._ready: "PortReadyQueue" = PortReadyQueue()
        self._closed = False
        # Statistics, exposed for tests and benchmarks.
        self.windows = 0  # batched sessions opened (tap windows served)
        self.batched_ops = 0  # operations settled inside batched sessions
        self.max_batch = 0  # largest single-session operation count
        self._task = reactor.register(self._step, name=f"txsched-{port.name}")
        port.add_field_listener(self._on_field_event)

    def __repr__(self) -> str:
        with self._lock:
            tags = len(self._references)
        return (
            f"PortTransactionScheduler({self._port.name!r}, tags={tags}, "
            f"windows={self.windows})"
        )

    # -- registration -----------------------------------------------------------

    def register(self, reference: "TagReference") -> None:
        """Enroll a batch-managed reference (keyed by its simulated tag)."""
        tag = reference.tag.simulated
        with self._lock:
            if self._closed:
                return
            self._references.setdefault(tag, []).append(reference)

    def unregister(self, reference: "TagReference") -> None:
        tag = reference.tag.simulated
        with self._lock:
            references = self._references.get(tag)
            if references is None:
                return
            if reference in references:
                references.remove(reference)
            if not references:
                del self._references[tag]

    def references_for(self, tag: SimulatedTag) -> List["TagReference"]:
        with self._lock:
            return list(self._references.get(tag, ()))

    # -- wakeups ----------------------------------------------------------------

    def notify_runnable(self, reference: "TagReference") -> None:
        """A registered reference has ready head work and its tag is in
        the field; called from any thread (never under the reference's
        queue lock)."""
        tag = reference.tag.simulated
        with self._lock:
            if self._closed or tag not in self._references:
                return
        self._ready.mark(tag)
        self._task.wake()

    def _on_field_event(self, event: FieldEvent) -> None:
        tag = getattr(event, "tag", None)
        if tag is None:
            return
        if isinstance(event, TagEntered):
            with self._lock:
                interested = not self._closed and tag in self._references
            if interested:
                self._ready.mark(tag)
                self._task.wake()
        elif isinstance(event, TagLeft):
            # Absent tags drain nothing; drop the mark (TagEntered
            # re-marks) so the ready set tracks the field.
            self._ready.discard(tag)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Detach from the port; part of device shutdown."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._port.remove_field_listener(self._on_field_event)
        self._task.cancel()

    # -- the drain ----------------------------------------------------------------

    def _step(self) -> Optional[float]:
        """One scheduler quantum: drain every ready in-field tag.

        Returns the next absolute time radio work becomes ready (retry
        backoffs), or ``None`` to idle until the next mark+wake.
        """
        wake: Optional[float] = None
        for tag, generation in self._ready.snapshot():
            if not self._port.environment.tag_in_field(tag, self._port):
                self._ready.discard(tag)
                continue
            tag_wake, has_pending = self._drain_tag(tag)
            if not has_pending:
                # Only unmark if no producer re-marked mid-drain.
                self._ready.clear(tag, generation)
            if tag_wake is not None:
                wake = tag_wake if wake is None else min(wake, tag_wake)
        return wake

    def _drain_tag(self, tag: SimulatedTag) -> Tuple[Optional[float], bool]:
        """Run one batched session over ``tag``'s ready head operations.

        Returns ``(wake_at, has_pending)``: when to come back for backed-
        off work (``None`` if nothing is waiting on time), and whether
        any operation remains pending for this tag.
        """
        references = self.references_for(tag)
        if not references:
            return None, False
        session: Optional[TagSession] = None
        wake: Optional[float] = None
        has_pending = False
        try:
            for _ in range(_DRAIN_BURST_OPS):
                views = [
                    (reference, reference.batch_poll())
                    for reference in references
                ]
                views = [(r, v) for r, v in views if v.head_id is not None]
                if not views:
                    return None, has_pending
                has_pending = True

                # The fence barrier: the oldest pending fence among all
                # of the tag's references. Nothing enqueued after it may
                # run before it, and the fence itself only runs once it
                # is the globally-oldest pending operation.
                fence_id = min(
                    (v.fence_id for _, v in views if v.fence_id is not None),
                    default=None,
                )
                oldest_id = min(v.head_id for _, v in views)
                eligible = []
                for reference, view in views:
                    if view.ready is None:
                        continue
                    if view.ready.is_batch_fence:
                        if view.head_id == oldest_id:
                            eligible.append((view.head_id, reference, view))
                    elif fence_id is None or view.head_id < fence_id:
                        eligible.append((view.head_id, reference, view))
                if not eligible:
                    # Every runnable head is backed off or fenced behind
                    # one; wait for the earliest backoff to expire.
                    for _, view in views:
                        if view.wake_at is not None:
                            wake = (
                                view.wake_at
                                if wake is None
                                else min(wake, view.wake_at)
                            )
                    return wake, has_pending

                eligible.sort(key=lambda entry: entry[0])
                _, reference, view = eligible[0]
                if session is None or not session.alive:
                    try:
                        session = self._port.open_session(tag)
                    except NotInFieldError:
                        # The tag left; its TagEntered will re-mark us.
                        return None, has_pending
                    except TagLostError:
                        # Tear during anticollision (field-edge flapping):
                        # retry the window shortly.
                        return (
                            self._clock.now() + _CONNECT_RETRY_SECONDS,
                            has_pending,
                        )
                    self.windows += 1
                result = reference.batch_execute(view.ready, session)
                if result == "settled":
                    self.batched_ops += 1
                    if session.operations > self.max_batch:
                        self.max_batch = session.operations
                # "retry": the transfer tore — the session died with it
                # and the loop reconnects for whatever is still ready.
                # "skip": the queue changed under us (cancel/stop/
                # timeout); the next poll sees the new head.
        finally:
            if session is not None:
                session.close()
        # Burst cap hit with work still flowing: yield the worker and
        # resume immediately so one hot tag cannot hog the pool.
        return self._clock.now(), True
