"""The per-port radio transaction scheduler: batch round-trips per tap.

The reactor (PR 1) multiplexes thousands of reference event loops onto a
bounded pool, and coalescing (PR 2/4) removes redundant writes *within*
one reference. What neither touches is the physical cost structure: every
operation still pays the full per-round-trip overhead — field activation,
anticollision, select — because references issue ``port.read_ndef`` /
``write_ndef`` one at a time with no knowledge of each other. On real
hardware that connect cost dominates short exchanges, so N references
with one pending write each turn a single tap into N full transactions.

This module is the batching *policy layer* between the reactor and the
port (the distribution-policy/application-logic split RAFDA argues for:
application code and the reference API never see it):

* every device owns one :class:`PortTransactionScheduler` (lazily, see
  ``AndroidDevice.tx_scheduler``); batch-managed references register
  themselves keyed by their simulated tag;
* references and field events mark tags runnable on a
  :class:`~repro.core.scheduler.PortReadyQueue`; the scheduler runs as a
  **single serial reactor task per port**, so the reactor hands a whole
  per-port batch to one worker — which also matches the physics (one
  radio, one transaction at a time);
* on each tap window the scheduler serves the ready in-field tags
  through :class:`~repro.radio.port.TagSession` windows: one
  connect/anticollision cost per (tag, visit), per-operation data
  latency still charged, and the link model still free to tear any
  individual transfer mid-batch.

**Cross-tag service order is a pluggable policy** (see
:class:`CrossTagPolicy`). With several tags co-present in one field, the
original whole-tag drain served them strictly one tag at a time, so one
hot tag (a deep backlog) head-of-line blocked its neighbours for the
whole drain. The fair policies instead hand each ready tag a **bounded
quantum** per service round and rotate:

* ``"drain"`` — the legacy sequential whole-tag drain (each visit runs
  to queue exhaustion); kept for A/B benches and ablation;
* ``"round_robin"`` — fixed equal quanta, rotated start;
* ``"deficit"`` (the default) — deficit round-robin: each visit credits
  the tag's deficit counter by a base quantum weighted (sublinearly,
  bounded) by its logical queue depth, and every settled operation
  debits the counter by ``1 + bytes/256`` — so big transfers consume
  proportionally more of a tag's turn, backlogged tags earn slightly
  larger quanta, and unused credit carries over (capped) while a tag
  waits.

Fairness never taxes a lonely tag: when a quantum expires and **no other
tag is marked ready**, the quantum is renewed in place and the open
session survives — a single co-located batch still pays exactly one
connect round, so PR 5's batched-throughput numbers are preserved.
Preemption (ending a visit with work remaining because a co-present tag
is waiting) closes the session; the tag's next visit pays a fresh
connect — the physical truth of re-selecting a different tag, and the
throughput/fairness trade-off DESIGN.md decision 13 records.

Ordering within a tag is unchanged and load-bearing. A visit executes
the tag's ready heads in **global enqueue order** (``Operation.op_id``
is a process-wide counter assigned at enqueue), which preserves each
reference's FIFO by construction. Fences — reads, raw writes
(lease-guarded writes, renewals), locks, formats — are stricter: a fence
executes only when it is the globally-oldest pending operation among the
tag's references, and while a fence is pending no younger operation of
another reference may overtake it. Fences are strictly **per tag**: a
fence queued against tag A never stalls runnable quanta on co-present
tag B (see ``tests/radio/test_fair_scheduling.py``).

Failure semantics are *partial-batch settlement*: operations that
completed before a tear have settled (their listeners are already posted,
in FIFO order, on the activity's main looper); the torn operation stays
queued and retries after its reference's backoff; the rest simply remain
queued and are picked up by the next window — the session died with the
tear, so the next attempt pays a fresh connect. A tear mid-quantum is a
per-tag event: only that tag's partial batch settles, co-present tags'
queues are untouched.

Reactor-backend neutrality: the scheduler is one serial
:class:`~repro.core.scheduler.ReactorTask` per port and speaks only the
task contract (``wake`` / ``schedule_at``), so it runs unchanged on
either backend — a worker thread under ``Reactor(mode="threaded")``, a
callback chain on the loop under ``Reactor(mode="asyncio")`` (DESIGN.md
decision 14). Serial-per-task is the only concurrency property the
drain loop relies on, and both backends guarantee it.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple, Union

from repro.errors import MorenaError, NotInFieldError, TagLostError
from repro.core.operations import Operation, OperationKind
from repro.radio.events import FieldEvent, TagEntered, TagLeft
from repro.radio.port import TagSession
from repro.tags.tag import SimulatedTag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clock import Clock
    from repro.core.reference import TagReference
    from repro.core.scheduler import PortReadyQueue, Reactor
    from repro.radio.port import NfcAdapterPort

# One drain visit processes at most this many operations before
# yielding its reactor worker, whatever the policy granted (mirrors the
# reference's own step burst).
_DRAIN_BURST_OPS = 128

# Backoff after a connect/anticollision tear (the tag is flapping at the
# field edge); transfer tears use the owning reference's retry interval.
_CONNECT_RETRY_SECONDS = 0.02

# Service-cost normalization: one operation costs one unit plus its
# payload share, so a tag moving kilobyte records consumes its quantum
# faster than one writing 20-byte labels.
_COST_BYTE_UNIT = 256.0


def _op_cost(byte_count: int) -> float:
    """Policy cost units of one settled operation of ``byte_count`` bytes."""
    return 1.0 + max(byte_count, 0) / _COST_BYTE_UNIT


def _estimate_bytes(tag: SimulatedTag, operation: Operation) -> int:
    """Bytes a settled operation moved over the air (telemetry/deficit).

    Writes are sized by their encoded payload (factory-built payloads
    are unknown until transmission and count as overhead-only); reads by
    the tag's user area; formats/locks by their command overhead.
    """
    if operation.kind is OperationKind.WRITE:
        payload = operation.payload
        return payload.byte_length if payload is not None else 0
    if operation.kind is OperationKind.READ:
        return tag.tag_type.user_bytes
    return 16 if operation.kind is OperationKind.FORMAT else 8


# -- cross-tag service policies -----------------------------------------------------


class CrossTagPolicy:
    """How one port's radio time is shared across co-present tags.

    Policy state is only ever touched from the scheduler's single serial
    reactor task, so implementations need no locking. A policy sees
    three moments: :meth:`begin_visit` when the drain turns to a tag
    (returning the visit's service budget in cost units — ``math.inf``
    means "run to exhaustion"), :meth:`consumed` after every settled
    operation, and :meth:`reset` when a tag's queues drain empty or the
    tag unregisters (classic DRR forgets the deficit of an idle flow).
    """

    name = "?"
    #: Whether ready-queue snapshots rotate their starting tag between
    #: service rounds (fair policies) or keep strict ready order (drain).
    rotates = True

    def begin_visit(self, tag: SimulatedTag, depth: int) -> float:
        raise NotImplementedError

    def consumed(self, tag: SimulatedTag, cost: float) -> None:
        """``cost`` service units were spent on ``tag`` (post-settle)."""

    def reset(self, tag: SimulatedTag) -> None:
        """``tag`` went idle (queues empty) or left the scheduler."""


class SequentialDrainPolicy(CrossTagPolicy):
    """The legacy whole-tag drain: each visit runs to queue exhaustion.

    Maximum batching (one connect per tag per window) but a deep
    backlog on one tag head-of-line blocks every co-present neighbour
    for the entire drain. Kept selectable for ablation and for fields
    where co-presence never happens.
    """

    name = "drain"
    rotates = False

    def begin_visit(self, tag: SimulatedTag, depth: int) -> float:
        return math.inf


class RoundRobinPolicy(CrossTagPolicy):
    """Fixed equal quanta per ready tag, rotated start each round."""

    name = "round_robin"

    def __init__(self, quantum_ops: float = 6.0) -> None:
        if quantum_ops <= 0:
            raise MorenaError("quantum_ops must be positive")
        self.quantum_ops = float(quantum_ops)

    def begin_visit(self, tag: SimulatedTag, depth: int) -> float:
        return self.quantum_ops


class DeficitPolicy(CrossTagPolicy):
    """Deficit round-robin, credited by queue depth, debited by bytes.

    Each visit credits the tag's deficit counter with
    ``credit_ops * (1 + min(depth, depth_cap) * depth_weight)`` — a
    mildly backlog-weighted quantum, bounded so a hot tag can never
    monopolize a round — capped at ``carry_rounds`` worth of credit so
    a long-waiting tag catches up without hoarding unbounded credit.
    Settled operations debit ``1 + bytes/256`` (see :func:`_op_cost`),
    so byte-heavy tags consume their turn proportionally faster. An
    idle tag's deficit is forgotten (DRR's no-credit-while-idle rule).
    """

    name = "deficit"

    def __init__(
        self,
        credit_ops: float = 6.0,
        depth_weight: float = 1.0 / 256.0,
        depth_cap: int = 64,
        carry_rounds: float = 2.0,
    ) -> None:
        if credit_ops <= 0:
            raise MorenaError("credit_ops must be positive")
        self.credit_ops = float(credit_ops)
        self.depth_weight = float(depth_weight)
        self.depth_cap = int(depth_cap)
        self.carry_rounds = float(carry_rounds)
        self._deficit: Dict[SimulatedTag, float] = {}

    def weight(self, depth: int) -> float:
        return 1.0 + min(max(depth, 0), self.depth_cap) * self.depth_weight

    def begin_visit(self, tag: SimulatedTag, depth: int) -> float:
        credit = self.credit_ops * self.weight(depth)
        cap = self.credit_ops * (1.0 + self.depth_cap * self.depth_weight)
        cap *= self.carry_rounds
        deficit = min(self._deficit.get(tag, 0.0) + credit, cap)
        self._deficit[tag] = deficit
        return deficit

    def consumed(self, tag: SimulatedTag, cost: float) -> None:
        if tag in self._deficit:
            self._deficit[tag] -= cost

    def reset(self, tag: SimulatedTag) -> None:
        self._deficit.pop(tag, None)


POLICIES = {
    SequentialDrainPolicy.name: SequentialDrainPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    DeficitPolicy.name: DeficitPolicy,
}

PolicySpec = Union[None, str, CrossTagPolicy]


def make_policy(spec: PolicySpec) -> CrossTagPolicy:
    """Resolve a policy spec: ``None`` (default), a name, or an instance."""
    if isinstance(spec, CrossTagPolicy):
        return spec
    if spec is None:
        return DeficitPolicy()
    try:
        return POLICIES[spec]()
    except KeyError:
        raise MorenaError(
            f"unknown cross-tag scheduling policy {spec!r} "
            f"(known: {sorted(POLICIES)})"
        ) from None


# -- per-tag service telemetry -------------------------------------------------------


class TagServiceStats:
    """Service telemetry for one registered tag (guarded by the
    scheduler's lock; see :meth:`PortTransactionScheduler.stats_snapshot`)."""

    __slots__ = (
        "quanta",
        "ops",
        "bytes_moved",
        "depth_high_water",
        "starvation_ticks",
        "first_ready_at",
        "first_service_at",
    )

    def __init__(self) -> None:
        self.quanta = 0  # service visits that settled at least one op
        self.ops = 0  # operations settled for this tag
        self.bytes_moved = 0  # estimated bytes over the air
        self.depth_high_water = 0  # max logical queue depth observed
        self.starvation_ticks = 0  # visits that served nothing despite backlog
        self.first_ready_at: Optional[float] = None
        self.first_service_at: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        ttfs: Optional[float] = None
        if self.first_ready_at is not None and self.first_service_at is not None:
            ttfs = self.first_service_at - self.first_ready_at
        return {
            "quanta": self.quanta,
            "ops": self.ops,
            "bytes_moved": self.bytes_moved,
            "depth_high_water": self.depth_high_water,
            "starvation_ticks": self.starvation_ticks,
            "time_to_first_service": ttfs,
        }


class PortTransactionScheduler:
    """Batches the radio round-trips of co-located references per port.

    Created once per device (``AndroidDevice.tx_scheduler``). References
    running in batched mode register here; the scheduler owns all their
    radio execution while their tag is in the field. Deadlines, retries
    while absent, cancellation and listener settlement stay with each
    reference — this layer only decides *when the radio speaks and for
    whom*, under the cross-tag service policy (see module docstring).
    """

    def __init__(
        self,
        port: "NfcAdapterPort",
        reactor: "Reactor",
        clock: "Clock",
        policy: PolicySpec = None,
    ) -> None:
        # Deferred import: repro.core reaches back into repro.radio at
        # package-init time, so importing the scheduler module here at
        # module scope would close an import cycle.
        from repro.core.scheduler import PortReadyQueue

        self._port = port
        self._clock = clock
        self._lock = threading.Lock()
        self._references: Dict[SimulatedTag, List["TagReference"]] = {}
        self._ready: "PortReadyQueue" = PortReadyQueue()
        self._closed = False
        self._policy = make_policy(policy)
        # Statistics, exposed for tests and benchmarks. The scalar
        # counters are only mutated on the single drain task; the
        # per-tag map is additionally read/retired from other threads,
        # so it is guarded by ``_lock`` (the leasing-stats pattern) and
        # snapshotted via :meth:`stats_snapshot`.
        self.windows = 0  # batched sessions opened (tap windows served)
        self.batched_ops = 0  # operations settled inside batched sessions
        self.max_batch = 0  # largest single-session operation count
        self.preemptions = 0  # visits ended early for a waiting neighbour
        self._tag_stats: Dict[SimulatedTag, TagServiceStats] = {}
        self._retired = TagServiceStats()  # folded stats of departed tags
        self._retired_tags = 0
        self._task = reactor.register(self._step, name=f"txsched-{port.name}")
        port.add_field_listener(self._on_field_event)

    def __repr__(self) -> str:
        with self._lock:
            tags = len(self._references)
        return (
            f"PortTransactionScheduler({self._port.name!r}, "
            f"policy={self._policy.name!r}, tags={tags}, "
            f"windows={self.windows})"
        )

    # -- policy -----------------------------------------------------------------

    @property
    def policy(self) -> CrossTagPolicy:
        return self._policy

    def set_policy(self, policy: PolicySpec) -> None:
        """Swap the cross-tag service policy at runtime (per port).

        The swap takes effect at the next service round; a visit already
        in progress finishes under the budget it was granted.
        """
        resolved = make_policy(policy)
        with self._lock:
            self._policy = resolved
        self._task.wake()

    # -- registration -----------------------------------------------------------

    def register(self, reference: "TagReference") -> None:
        """Enroll a batch-managed reference (keyed by its simulated tag)."""
        tag = reference.tag.simulated
        with self._lock:
            if self._closed:
                return
            self._references.setdefault(tag, []).append(reference)
            self._tag_stats.setdefault(tag, TagServiceStats())

    def unregister(self, reference: "TagReference") -> None:
        tag = reference.tag.simulated
        with self._lock:
            references = self._references.get(tag)
            if references is None:
                return
            if reference in references:
                references.remove(reference)
            if references:
                return
            del self._references[tag]
            # The departed tag's telemetry folds into the retired
            # aggregate so crowd-scale churn cannot grow the map
            # without bound.
            stats = self._tag_stats.pop(tag, None)
            if stats is not None:
                self._retire_locked(stats)
        # Last co-located reference gone: discard the tag's ready mark
        # so a stale runnable key cannot wake workers for empty batches,
        # and drop any accumulated deficit.
        self._ready.discard(tag)
        self._policy.reset(tag)

    def references_for(self, tag: SimulatedTag) -> List["TagReference"]:
        with self._lock:
            return list(self._references.get(tag, ()))

    # -- telemetry ---------------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, object]:
        """A consistent snapshot of the scheduler's service telemetry.

        ``tags`` maps each registered tag's uid to its
        :class:`TagServiceStats` numbers; ``retired`` aggregates the
        telemetry of tags whose last reference unregistered (crowd
        churn), so totals remain auditable after departure.
        """
        with self._lock:
            tags = {
                tag.uid_hex: stats.as_dict()
                for tag, stats in self._tag_stats.items()
            }
            retired = self._retired.as_dict()
            retired.pop("time_to_first_service", None)
            retired["tags"] = self._retired_tags
            return {
                "policy": self._policy.name,
                "windows": self.windows,
                "batched_ops": self.batched_ops,
                "max_batch": self.max_batch,
                "preemptions": self.preemptions,
                "tags": tags,
                "retired": retired,
            }

    def _retire_locked(self, stats: TagServiceStats) -> None:
        self._retired.quanta += stats.quanta
        self._retired.ops += stats.ops
        self._retired.bytes_moved += stats.bytes_moved
        self._retired.starvation_ticks += stats.starvation_ticks
        self._retired.depth_high_water = max(
            self._retired.depth_high_water, stats.depth_high_water
        )
        self._retired_tags += 1

    def _note_ready(self, tag: SimulatedTag) -> None:
        with self._lock:
            stats = self._tag_stats.get(tag)
            if stats is not None and stats.first_ready_at is None:
                stats.first_ready_at = self._clock.now()

    # -- wakeups ----------------------------------------------------------------

    def notify_runnable(self, reference: "TagReference") -> None:
        """A registered reference has ready head work and its tag is in
        the field; called from any thread (never under the reference's
        queue lock)."""
        tag = reference.tag.simulated
        with self._lock:
            if self._closed or tag not in self._references:
                return
        self._note_ready(tag)
        self._ready.mark(tag)
        self._task.wake()

    def _on_field_event(self, event: FieldEvent) -> None:
        tag = getattr(event, "tag", None)
        if tag is None:
            return
        if isinstance(event, TagEntered):
            with self._lock:
                interested = not self._closed and tag in self._references
            if interested:
                self._note_ready(tag)
                self._ready.mark(tag)
                self._task.wake()
        elif isinstance(event, TagLeft):
            # Absent tags drain nothing; drop the mark (TagEntered
            # re-marks) so the ready set tracks the field.
            self._ready.discard(tag)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Detach from the port; part of device shutdown."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._port.remove_field_listener(self._on_field_event)
        self._task.cancel()

    # -- the drain ----------------------------------------------------------------

    def _step(self) -> Optional[float]:
        """One scheduler round: serve every ready in-field tag a visit.

        The policy decides each visit's budget; fair policies rotate the
        starting tag between rounds. Returns the next absolute time
        radio work becomes ready (retry backoffs, preempted quanta), or
        ``None`` to idle until the next mark+wake.
        """
        policy = self._policy
        wake: Optional[float] = None
        for tag, generation in self._ready.snapshot(rotate=policy.rotates):
            if not self._port.environment.tag_in_field(tag, self._port):
                self._ready.discard(tag)
                continue
            tag_wake, has_pending = self._drain_tag(tag, policy)
            if not has_pending:
                # Only unmark if no producer re-marked mid-drain.
                self._ready.clear(tag, generation)
            if tag_wake is not None:
                wake = tag_wake if wake is None else min(wake, tag_wake)
        return wake

    def _drain_tag(
        self, tag: SimulatedTag, policy: CrossTagPolicy
    ) -> Tuple[Optional[float], bool]:
        """One service visit: run a batched session over ``tag``'s ready
        head operations within the policy's budget.

        Returns ``(wake_at, has_pending)``: when to come back (backed-
        off work, or *now* for a preempted/burst-capped visit), and
        whether any operation remains pending for this tag.
        """
        references = self.references_for(tag)
        if not references:
            policy.reset(tag)
            return None, False
        session: Optional[TagSession] = None
        wake: Optional[float] = None
        has_pending = False
        budget: Optional[float] = None
        served_ops = 0
        served_bytes = 0
        depth_seen = 0
        try:
            for _ in range(_DRAIN_BURST_OPS):
                views = [
                    (reference, reference.batch_poll())
                    for reference in references
                ]
                views = [(r, v) for r, v in views if v.head_id is not None]
                if not views:
                    # Queues drained: an idle tag accrues no deficit.
                    policy.reset(tag)
                    return None, has_pending
                has_pending = True
                depth = sum(view.depth for _, view in views)
                depth_seen = max(depth_seen, depth)

                if budget is None:
                    budget = policy.begin_visit(tag, depth)
                elif budget <= 0.0:
                    if self._ready.has_other(tag):
                        # Quantum spent and a co-present tag is waiting:
                        # preempt. The session closes (re-selecting
                        # another tag kills it physically) and we resume
                        # right after the neighbours' quanta.
                        self.preemptions += 1
                        return self._clock.now(), True
                    # Alone in the field: renew the quantum in place and
                    # keep the session — fairness costs nothing when
                    # there is nobody to be fair to.
                    budget = policy.begin_visit(tag, depth)

                # The fence barrier: the oldest pending fence among all
                # of the tag's references. Nothing enqueued after it may
                # run before it, and the fence itself only runs once it
                # is the globally-oldest pending operation.
                fence_id = min(
                    (v.fence_id for _, v in views if v.fence_id is not None),
                    default=None,
                )
                oldest_id = min(v.head_id for _, v in views)
                eligible = []
                for reference, view in views:
                    if view.ready is None:
                        continue
                    if view.ready.is_batch_fence:
                        if view.head_id == oldest_id:
                            eligible.append((view.head_id, reference, view))
                    elif fence_id is None or view.head_id < fence_id:
                        eligible.append((view.head_id, reference, view))
                if not eligible:
                    # Every runnable head is backed off or fenced behind
                    # one; wait for the earliest backoff to expire.
                    for _, view in views:
                        if view.wake_at is not None:
                            wake = (
                                view.wake_at
                                if wake is None
                                else min(wake, view.wake_at)
                            )
                    return wake, has_pending

                eligible.sort(key=lambda entry: entry[0])
                _, reference, view = eligible[0]
                if session is None or not session.alive:
                    try:
                        session = self._port.open_session(tag)
                    except NotInFieldError:
                        # The tag left; its TagEntered will re-mark us.
                        return None, has_pending
                    except TagLostError:
                        # Tear during anticollision (field-edge flapping):
                        # retry the window shortly.
                        return (
                            self._clock.now() + _CONNECT_RETRY_SECONDS,
                            has_pending,
                        )
                    self.windows += 1
                op_bytes = _estimate_bytes(tag, view.ready)
                result = reference.batch_execute(view.ready, session)
                if result == "settled":
                    self.batched_ops += 1
                    served_ops += 1
                    served_bytes += op_bytes
                    cost = _op_cost(op_bytes)
                    budget -= cost
                    policy.consumed(tag, cost)
                    if session.operations > self.max_batch:
                        self.max_batch = session.operations
                # "retry": the transfer tore — the session died with it
                # and the loop reconnects for whatever is still ready.
                # "skip": the queue changed under us (cancel/stop/
                # timeout); the next poll sees the new head.
        finally:
            if session is not None:
                session.close()
            self._account(tag, served_ops, served_bytes, depth_seen, has_pending)
        # Burst cap hit with work still flowing: yield the worker and
        # resume immediately so one hot tag cannot hog the pool.
        return self._clock.now(), True

    def _account(
        self,
        tag: SimulatedTag,
        ops: int,
        bytes_moved: int,
        depth_seen: int,
        had_pending: bool,
    ) -> None:
        """Fold one visit's outcome into the tag's service telemetry."""
        with self._lock:
            stats = self._tag_stats.get(tag)
            if stats is None:
                return
            if depth_seen > stats.depth_high_water:
                stats.depth_high_water = depth_seen
            if ops > 0:
                stats.quanta += 1
                stats.ops += ops
                stats.bytes_moved += bytes_moved
                if stats.first_service_at is None:
                    stats.first_service_at = self._clock.now()
            elif had_pending:
                # The tag had backlog but this visit moved nothing
                # (fenced, backed off, or torn before first settle).
                stats.starvation_ticks += 1
