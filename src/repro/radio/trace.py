"""Radio traces: record a session's field history, replay it later.

Debugging an intermittent-connectivity bug needs the exact sequence of
field transitions that triggered it. A :class:`RadioTracer` attached to
an environment records every tag-entered / tag-left / peer transition
with a timestamp; the trace serializes to JSON and a
:class:`TraceReplayer` re-applies it to a fresh environment with the same
(or a different) population -- turning a flaky field observation into a
deterministic regression test.

Timestamps are **clock-correct**: the tracer reads the environment's
injected :class:`~repro.clock.Clock`, so a scenario scripted under a
:class:`~repro.clock.ManualClock` records the virtual spacing the script
created, not the near-zero wall-clock gaps of the recording process.
Replay is symmetric -- against a manual clock the replayer *advances*
the clock by the recorded deltas (no real sleeping, fully
deterministic); against a real clock ``time_scale`` stretches or
collapses the recorded gaps into real sleeps as before.

Tags are identified in the trace by UID; replay takes a UID -> tag
mapping (tags restored from a :class:`~repro.tags.store.TagStore`
naturally keep their UIDs).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import RadioError
from repro.radio.environment import RfidEnvironment
from repro.radio.events import PeerEntered, PeerLeft, TagEntered, TagLeft
from repro.tags.tag import SimulatedTag

TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One recorded field transition."""

    at_seconds: float
    kind: str  # tag-entered | tag-left | peer-entered | peer-left
    port: str
    subject: str  # tag UID hex, or peer port name


class RadioTracer:
    """Records the field history of every port in one environment."""

    def __init__(self, env: RfidEnvironment) -> None:
        self._env = env
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []
        # Event times come from the environment's injected clock -- under
        # a ManualClock the trace captures the *scripted* spacing, which
        # wall-clock stamps would collapse to microseconds.
        self._clock = env.clock
        self._started_at = self._clock.now()
        self._listeners: Dict[str, object] = {}
        for name in env.port_names():
            self.watch_port(name)

    def watch_port(self, name: str) -> None:
        """Attach to a port (ports created after the tracer need this)."""
        with self._lock:
            if name in self._listeners:
                return

            def listener(event, port_name=name):
                self._record(port_name, event)

            self._listeners[name] = listener
        self._env.port(name).add_field_listener(listener)

    def _record(self, port_name: str, event) -> None:
        now = self._clock.now() - self._started_at
        if isinstance(event, TagEntered):
            kind, subject = "tag-entered", event.tag.uid_hex
        elif isinstance(event, TagLeft):
            kind, subject = "tag-left", event.tag.uid_hex
        elif isinstance(event, PeerEntered):
            kind, subject = "peer-entered", event.peer_name
        elif isinstance(event, PeerLeft):
            kind, subject = "peer-left", event.peer_name
        else:
            return
        with self._lock:
            self._events.append(
                TraceEvent(at_seconds=now, kind=kind, port=port_name, subject=subject)
            )

    def stop(self) -> None:
        """Detach from every watched port."""
        with self._lock:
            listeners = dict(self._listeners)
            self._listeners.clear()
        for name, listener in listeners.items():
            try:
                self._env.port(name).remove_field_listener(listener)
            except RadioError:
                pass

    # -- access -----------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": TRACE_VERSION,
                "events": [
                    {
                        "at": event.at_seconds,
                        "kind": event.kind,
                        "port": event.port,
                        "subject": event.subject,
                    }
                    for event in self.events()
                ],
            },
            sort_keys=True,
        )


def trace_from_json(text: str) -> List[TraceEvent]:
    """Parse a recorded trace back into events."""
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise RadioError(f"not a radio trace: {exc}") from exc
    if data.get("version") != TRACE_VERSION:
        raise RadioError(f"unsupported trace version {data.get('version')!r}")
    events = []
    for raw in data.get("events", []):
        events.append(
            TraceEvent(
                at_seconds=float(raw["at"]),
                kind=str(raw["kind"]),
                port=str(raw["port"]),
                subject=str(raw["subject"]),
            )
        )
    return events


class TraceReplayer:
    """Re-applies a recorded trace to an environment.

    Time handling depends on the environment's clock:

    * a :class:`~repro.clock.ManualClock` is **driven**: before each
      event the clock advances by the recorded inter-event delta
      (``time_scale`` is ignored -- virtual time is free, and
      reproducing the recorded timeline is the whole point). Two
      replays of one trace deliver identical event sequences at
      identical virtual timestamps, with zero real sleeping.
    * any other clock sleeps ``delta * time_scale`` real seconds
      through the clock (0 replays instantly, 1.0 in original time).

    Every applied event is appended to :attr:`delivered` as
    ``(clock_timestamp, event)`` -- the deterministic record a
    regression test asserts against.
    """

    def __init__(
        self,
        env: RfidEnvironment,
        tags_by_uid: Dict[str, SimulatedTag],
        time_scale: float = 0.0,
    ) -> None:
        """``time_scale`` 0 replays instantly; 1.0 in original real time."""
        if time_scale < 0:
            raise RadioError("time_scale must be >= 0")
        self._env = env
        self._clock = env.clock
        self._tags = dict(tags_by_uid)
        self._time_scale = time_scale
        # Recorded seconds already accounted for. Instance state, not a
        # replay() local: one replayer owns one recorded timeline, and
        # replaying it in slices (TraceTransport.step) must not re-pay
        # the absolute timestamps of earlier slices as fresh deltas.
        self._elapsed = 0.0
        self.delivered: List[Tuple[float, TraceEvent]] = []

    def replay(self, events: List[TraceEvent]) -> int:
        """Apply the events in order; returns how many were applied.

        Unknown tag UIDs raise; unknown ports raise -- a replay against
        the wrong population is a bug, not a partial success.
        """
        applied = 0
        # ManualClock (or anything advanceable) is driven directly; no
        # real sleeping ever happens on a virtual timeline.
        advance = getattr(self._clock, "advance", None)
        for event in events:
            delta = event.at_seconds - self._elapsed
            if delta > 0:
                if advance is not None:
                    advance(delta)
                elif self._time_scale:
                    self._clock.sleep(delta * self._time_scale)
                self._elapsed = event.at_seconds
            self._apply(event)
            self.delivered.append((self._clock.now(), event))
            applied += 1
        return applied

    def _apply(self, event: TraceEvent) -> None:
        port = self._env.port(event.port)
        if event.kind in ("tag-entered", "tag-left"):
            tag = self._tags.get(event.subject)
            if tag is None:
                raise RadioError(f"trace names unknown tag {event.subject}")
            if event.kind == "tag-entered":
                self._env.move_tag_into_field(tag, port)
            else:
                self._env.remove_tag_from_field(tag, port)
        elif event.kind in ("peer-entered", "peer-left"):
            peer = self._env.port(event.subject)
            if event.kind == "peer-entered":
                self._env.bring_together(port, peer)
            else:
                self._env.separate(port, peer)
        else:
            raise RadioError(f"unknown trace event kind {event.kind!r}")
