"""Radio traces: record a session's field history, replay it later.

Debugging an intermittent-connectivity bug needs the exact sequence of
field transitions that triggered it. A :class:`RadioTracer` attached to
an environment records every tag-entered / tag-left / peer transition
with a timestamp; the trace serializes to JSON and a
:class:`TraceReplayer` re-applies it to a fresh environment with the same
(or a different) population -- turning a flaky field observation into a
deterministic regression test.

Tags are identified in the trace by UID; replay takes a UID -> tag
mapping (tags restored from a :class:`~repro.tags.store.TagStore`
naturally keep their UIDs).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import RadioError
from repro.radio.environment import RfidEnvironment
from repro.radio.events import PeerEntered, PeerLeft, TagEntered, TagLeft
from repro.tags.tag import SimulatedTag

TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One recorded field transition."""

    at_seconds: float
    kind: str  # tag-entered | tag-left | peer-entered | peer-left
    port: str
    subject: str  # tag UID hex, or peer port name


class RadioTracer:
    """Records the field history of every port in one environment."""

    def __init__(self, env: RfidEnvironment) -> None:
        self._env = env
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []
        self._started_at = time.monotonic()
        self._listeners: Dict[str, object] = {}
        for name in env.port_names():
            self.watch_port(name)

    def watch_port(self, name: str) -> None:
        """Attach to a port (ports created after the tracer need this)."""
        with self._lock:
            if name in self._listeners:
                return

            def listener(event, port_name=name):
                self._record(port_name, event)

            self._listeners[name] = listener
        self._env.port(name).add_field_listener(listener)

    def _record(self, port_name: str, event) -> None:
        now = time.monotonic() - self._started_at
        if isinstance(event, TagEntered):
            kind, subject = "tag-entered", event.tag.uid_hex
        elif isinstance(event, TagLeft):
            kind, subject = "tag-left", event.tag.uid_hex
        elif isinstance(event, PeerEntered):
            kind, subject = "peer-entered", event.peer_name
        elif isinstance(event, PeerLeft):
            kind, subject = "peer-left", event.peer_name
        else:
            return
        with self._lock:
            self._events.append(
                TraceEvent(at_seconds=now, kind=kind, port=port_name, subject=subject)
            )

    def stop(self) -> None:
        """Detach from every watched port."""
        with self._lock:
            listeners = dict(self._listeners)
            self._listeners.clear()
        for name, listener in listeners.items():
            try:
                self._env.port(name).remove_field_listener(listener)
            except RadioError:
                pass

    # -- access -----------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": TRACE_VERSION,
                "events": [
                    {
                        "at": event.at_seconds,
                        "kind": event.kind,
                        "port": event.port,
                        "subject": event.subject,
                    }
                    for event in self.events()
                ],
            },
            sort_keys=True,
        )


def trace_from_json(text: str) -> List[TraceEvent]:
    """Parse a recorded trace back into events."""
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise RadioError(f"not a radio trace: {exc}") from exc
    if data.get("version") != TRACE_VERSION:
        raise RadioError(f"unsupported trace version {data.get('version')!r}")
    events = []
    for raw in data.get("events", []):
        events.append(
            TraceEvent(
                at_seconds=float(raw["at"]),
                kind=str(raw["kind"]),
                port=str(raw["port"]),
                subject=str(raw["subject"]),
            )
        )
    return events


class TraceReplayer:
    """Re-applies a recorded trace to an environment."""

    def __init__(
        self,
        env: RfidEnvironment,
        tags_by_uid: Dict[str, SimulatedTag],
        time_scale: float = 0.0,
    ) -> None:
        """``time_scale`` 0 replays instantly; 1.0 in original real time."""
        if time_scale < 0:
            raise RadioError("time_scale must be >= 0")
        self._env = env
        self._tags = dict(tags_by_uid)
        self._time_scale = time_scale

    def replay(self, events: List[TraceEvent]) -> int:
        """Apply the events in order; returns how many were applied.

        Unknown tag UIDs raise; unknown ports raise -- a replay against
        the wrong population is a bug, not a partial success.
        """
        applied = 0
        virtual_now: Optional[float] = None
        for event in events:
            if self._time_scale and virtual_now is not None:
                delay = (event.at_seconds - virtual_now) * self._time_scale
                if delay > 0:
                    time.sleep(delay)
            virtual_now = event.at_seconds
            self._apply(event)
            applied += 1
        return applied

    def _apply(self, event: TraceEvent) -> None:
        port = self._env.port(event.port)
        if event.kind in ("tag-entered", "tag-left"):
            tag = self._tags.get(event.subject)
            if tag is None:
                raise RadioError(f"trace names unknown tag {event.subject}")
            if event.kind == "tag-entered":
                self._env.move_tag_into_field(tag, port)
            else:
                self._env.remove_tag_from_field(tag, port)
        elif event.kind in ("peer-entered", "peer-left"):
            peer = self._env.port(event.subject)
            if event.kind == "peer-entered":
                self._env.bring_together(port, peer)
            else:
                self._env.separate(port, peer)
        else:
            raise RadioError(f"unknown trace event kind {event.kind!r}")
