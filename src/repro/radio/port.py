"""One device's radio: the port through which all tag and Beam I/O flows.

A port belongs to exactly one :class:`~repro.radio.environment.RfidEnvironment`
and carries that device's link model and field-event listeners. Its
operations are **blocking and failure-prone by design** -- they model the
raw physical layer the Android tech classes wrap:

* the tag must currently be in the field (otherwise
  :class:`~repro.errors.NotInFieldError`),
* the operation takes time proportional to the bytes moved,
* the link model decides whether the attempt tears
  (:class:`~repro.errors.TagLostError`), and a torn *write* may leave a
  half-written, unreadable TLV on the tag when ``corrupt_on_tear`` is on.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.clock import Clock
from repro.errors import (
    BeamError,
    MorenaError,
    NdefError,
    NotInFieldError,
    TagFormatError,
    TagLostError,
)
from repro.ndef.message import NdefMessage
from repro.radio.events import FieldEvent
from repro.radio.link import LinkModel
from repro.radio.snep import SnepClient, SnepProtocolError, SnepServer
from repro.radio.timing import TransferTiming
from repro.tags.tag import SimulatedTag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.environment import RfidEnvironment

BeamHandler = Callable[[str, NdefMessage], None]


class NfcAdapterPort:
    """Device-side NFC radio. Created via ``RfidEnvironment.create_port``."""

    def __init__(
        self,
        name: str,
        environment: "RfidEnvironment",
        link: LinkModel,
        clock: Clock,
        timing: TransferTiming,
        corrupt_on_tear: bool = False,
    ) -> None:
        self.name = name
        self._env = environment
        self._link = link
        self._clock = clock
        self._timing = timing
        self.corrupt_on_tear = corrupt_on_tear
        self._listeners: List[Callable[[FieldEvent], None]] = []
        # Listeners interested in exactly one tag, keyed by tag identity;
        # tag references register here so a field event touches only the
        # listeners of the tag it concerns (O(1) fan-out, not O(refs)).
        self._tag_listeners: Dict[SimulatedTag, List[Callable[[FieldEvent], None]]] = {}
        self._beam_handler: Optional[BeamHandler] = None
        self._snep_server: Optional[SnepServer] = None
        self._snep_get_provider: Optional[Callable[[str, bytes], Optional[bytes]]] = None
        self._lock = threading.RLock()
        # One radio, one transaction at a time: a real NFC controller
        # cannot overlap tag exchanges, so concurrent callers serialize
        # here for the duration of each transfer (held across the
        # latency sleep -- that *is* the radio being busy).
        self._radio_lock = threading.Lock()
        # Counters for benchmarks.
        self.read_attempts = 0
        self.write_attempts = 0
        self.beam_attempts = 0
        self.format_attempts = 0
        self.lock_attempts = 0
        # Physical connect/anticollision rounds: one per standalone tag
        # operation, one per batched session (the quantity the per-port
        # transaction scheduler amortizes).
        self.connects = 0
        # Field events delivered to listeners (single + bulk dispatch);
        # crowd benches watch this to size churn fan-out.
        self.field_events_dispatched = 0

    def __repr__(self) -> str:
        return f"NfcAdapterPort({self.name!r}, link={self._link!r})"

    @property
    def environment(self) -> "RfidEnvironment":
        return self._env

    @property
    def link(self) -> LinkModel:
        return self._link

    def set_link(self, link: LinkModel) -> None:
        """Swap the link model (used by benches to degrade a running link)."""
        with self._lock:
            self._link = link

    # -- field event listeners ----------------------------------------------------

    def add_field_listener(self, listener: Callable[[FieldEvent], None]) -> None:
        with self._lock:
            self._listeners.append(listener)

    def remove_field_listener(self, listener: Callable[[FieldEvent], None]) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def snapshot_listeners(self) -> List[Callable[[FieldEvent], None]]:
        with self._lock:
            return list(self._listeners)

    def add_tag_listener(
        self, tag: SimulatedTag, listener: Callable[[FieldEvent], None]
    ) -> None:
        """Observe field events concerning ``tag`` only (O(1) routing)."""
        with self._lock:
            self._tag_listeners.setdefault(tag, []).append(listener)

    def remove_tag_listener(
        self, tag: SimulatedTag, listener: Callable[[FieldEvent], None]
    ) -> None:
        with self._lock:
            listeners = self._tag_listeners.get(tag)
            if listeners is None:
                return
            if listener in listeners:
                listeners.remove(listener)
            if not listeners:
                del self._tag_listeners[tag]

    def dispatch_field_event(self, event: FieldEvent) -> None:
        """Deliver ``event`` to the generic listeners plus -- for tag
        events -- the listeners registered for that specific tag.

        Called by the environment outside its own lock; listener bodies
        are trivial (they post to loopers or wake reactor tasks)."""
        with self._lock:
            self.field_events_dispatched += 1
            targets = list(self._listeners)
            tag = getattr(event, "tag", None)
            if tag is not None and tag in self._tag_listeners:
                targets.extend(self._tag_listeners[tag])
        for listener in targets:
            listener(event)

    def dispatch_field_events(self, events: List[FieldEvent]) -> None:
        """Deliver a batch of field events (crowd-scale churn).

        One listener snapshot serves the whole batch instead of one lock
        round-trip per event -- with hundreds of tags crossing a field
        boundary in one churn step, the per-event snapshot is the
        dominant dispatch cost. Per-tag listener routing is preserved
        per event; delivery order within the batch is the caller's order.
        """
        if not events:
            return
        with self._lock:
            self.field_events_dispatched += len(events)
            generic = list(self._listeners)
            routed = []
            for event in events:
                targets = list(generic)
                tag = getattr(event, "tag", None)
                if tag is not None and tag in self._tag_listeners:
                    targets.extend(self._tag_listeners[tag])
                routed.append((event, targets))
        for event, targets in routed:
            for listener in targets:
                listener(event)

    # -- tag operations -------------------------------------------------------------

    def read_ndef(self, tag: SimulatedTag) -> NdefMessage:
        """Blocking read of the tag's NDEF message.

        Raises ``NotInFieldError`` / ``TagLostError`` / ``TagFormatError``.
        """
        with self._lock:
            self.read_attempts += 1
            self.connects += 1
        return self._read_ndef_impl(tag, batched=False)

    def write_ndef(self, tag: SimulatedTag, message: NdefMessage) -> None:
        """Blocking write of ``message`` onto the tag.

        Raises ``NotInFieldError`` / ``TagLostError`` plus the tag-layer
        errors (capacity, read-only, unformatted). When ``corrupt_on_tear``
        is set, a tear mid-write leaves a truncated TLV behind.
        """
        with self._lock:
            self.write_attempts += 1
            self.connects += 1
        self._write_ndef_impl(tag, message, batched=False)

    def format_tag(self, tag: SimulatedTag) -> None:
        """Blocking NDEF format of an unformatted tag."""
        with self._lock:
            self.format_attempts += 1
            self.connects += 1
        self._format_impl(tag, batched=False)

    def make_read_only(self, tag: SimulatedTag) -> None:
        """Blocking lock of the tag."""
        with self._lock:
            self.lock_attempts += 1
            self.connects += 1
        self._lock_impl(tag, batched=False)

    def transceive(self, tag, data: bytes) -> bytes:
        """Blocking ISO-DEP exchange: one command APDU in, response out.

        Only meaningful for tags that speak ISO-DEP (Type 4 / emulated
        cards). Raises ``NotInFieldError`` / ``TagLostError`` like any
        other tag operation; protocol errors come back as status words,
        not exceptions -- exactly like ``IsoDep.transceive`` on Android.
        """
        with self._lock:
            self.connects += 1
        self._require_in_field(tag)
        with self._radio_lock:
            self._simulate_latency(len(data) + 32, tag=tag)
            self._require_in_field(tag, torn=True)
            if not self._link.attempt_succeeds(
                len(data) + 32
            ) or not self._env.attempt_allowed(self, tag):
                raise TagLostError(
                    f"link to tag {tag.uid_hex} tore during transceive on {self.name}"
                )
            process = getattr(tag, "process_apdu", None)
            if process is None:
                raise TagFormatError(f"tag {tag.uid_hex} does not speak ISO-DEP")
            return process(data)

    # -- batched sessions ------------------------------------------------------------

    def open_session(self, tag: SimulatedTag) -> "TagSession":
        """Connect to ``tag`` once for a whole batched window.

        Pays the connect/anticollision share of the latency model a
        single time; every operation issued through the returned
        :class:`TagSession` then costs only the per-operation share
        (``TransferTiming.batched_operation_seconds``). The link model is
        *not* consulted here -- it judges data transfers, one attempt
        per operation in both the standalone and the batched path, so
        seeded/scripted links observe identical attempt sequences.
        The tag leaving the field mid-anticollision raises
        ``TagLostError``; an absent tag raises ``NotInFieldError``.
        """
        with self._lock:
            self.connects += 1
        self._require_in_field(tag)
        with self._radio_lock:
            seconds = self._timing.connect_seconds
            seconds += self._env.transfer_overhead_seconds(self, tag)
            if seconds > 0:
                self._clock.sleep(seconds)
        self._require_in_field(tag, torn=True)
        return TagSession(self, tag)

    def _read_ndef_impl(self, tag: SimulatedTag, batched: bool) -> NdefMessage:
        self._require_in_field(tag)
        with self._radio_lock:
            self._simulate_latency(
                tag.tag_type.user_bytes, batched=batched, tag=tag
            )
            self._require_in_field(tag, torn=True)
            if not self._link.attempt_succeeds(
                tag.tag_type.user_bytes
            ) or not self._env.attempt_allowed(self, tag):
                raise TagLostError(
                    f"link to tag {tag.uid_hex} tore during read on {self.name}"
                )
            try:
                return tag.read_ndef()
            except NdefError as exc:
                raise TagFormatError(
                    f"tag {tag.uid_hex} holds undecodable NDEF data: {exc}"
                ) from exc

    def _write_ndef_impl(
        self, tag: SimulatedTag, message: NdefMessage, batched: bool
    ) -> None:
        self._require_in_field(tag)
        encoded_size = message.byte_length
        with self._radio_lock:
            self._simulate_latency(encoded_size, batched=batched, tag=tag)
            torn = (
                not self._env.tag_in_field(tag, self)
                or not self._link.attempt_succeeds(encoded_size)
                or not self._env.attempt_allowed(self, tag)
            )
            if torn:
                if self.corrupt_on_tear:
                    self._tear_write(tag, message)
                raise TagLostError(
                    f"link to tag {tag.uid_hex} tore during write on {self.name}"
                )
            tag.write_ndef(message)

    def _format_impl(self, tag: SimulatedTag, batched: bool) -> None:
        self._require_in_field(tag)
        with self._radio_lock:
            self._simulate_latency(16, batched=batched, tag=tag)
            self._require_in_field(tag, torn=True)
            if not self._link.attempt_succeeds(16) or not self._env.attempt_allowed(
                self, tag
            ):
                raise TagLostError(
                    f"link to tag {tag.uid_hex} tore during format on {self.name}"
                )
            tag.format()

    def _lock_impl(self, tag: SimulatedTag, batched: bool) -> None:
        self._require_in_field(tag)
        with self._radio_lock:
            self._simulate_latency(8, batched=batched, tag=tag)
            self._require_in_field(tag, torn=True)
            if not self._link.attempt_succeeds(8) or not self._env.attempt_allowed(
                self, tag
            ):
                raise TagLostError(
                    f"link to tag {tag.uid_hex} tore during lock on {self.name}"
                )
            tag.make_read_only()

    # -- Beam ----------------------------------------------------------------------

    def set_beam_handler(self, handler: Optional[BeamHandler]) -> None:
        """Install the callback invoked when a peer beams a message here.

        Internally the handler becomes the PUT callback of this port's
        SNEP server -- incoming pushes arrive as SNEP frames, are
        reassembled, decoded to an NDEF message and handed over.
        """
        with self._lock:
            self._beam_handler = handler
            self._rebuild_snep_server()

    def set_snep_get_provider(
        self, provider: Optional[Callable[[str, bytes], Optional[bytes]]]
    ) -> None:
        """Install a SNEP GET provider (used for negotiated handover).

        ``provider(sender, request_bytes)`` returns response bytes or
        ``None`` for NOT FOUND. It runs on the *requesting* port's thread.
        """
        with self._lock:
            self._snep_get_provider = provider
            self._rebuild_snep_server()

    def _rebuild_snep_server(self) -> None:
        handler = self._beam_handler
        provider = self._snep_get_provider
        if handler is None and provider is None:
            self._snep_server = None
            return

        def on_put(sender: str, ndef_bytes: bytes) -> None:
            if handler is None:
                return
            try:
                message = NdefMessage.from_bytes(ndef_bytes)
            except NdefError:
                return  # hostile payload: dropped, as a phone would
            handler(sender, message)

        self._snep_server = SnepServer(on_put, get_provider=provider)

    @property
    def snep_server(self) -> Optional[SnepServer]:
        return self._snep_server

    def snep_exchange(self, peer: "NfcAdapterPort", raw: bytes) -> bytes:
        """One SNEP round trip to a peer: request frame out, response in.

        Each fragment is a separate radio transfer: latency per fragment,
        and the link may tear on any of them (``TagLostError``).
        """
        if not self._env.in_beam_range(self, peer):
            raise TagLostError(
                f"{peer.name} drifted out of Beam range of {self.name}"
            )
        self._simulate_latency(len(raw))
        if not self._link.attempt_succeeds(len(raw)):
            raise TagLostError(f"Beam link tore on {self.name}")
        server = peer._snep_server
        if server is None:
            raise BeamError(f"{peer.name} runs no SNEP server")
        return server.process(self.name, raw)

    def beam(self, message: NdefMessage, miu: int = 128) -> List[str]:
        """Push ``message`` to every peer currently in Beam range.

        Undirected, like Android Beam: one SNEP PUT per peer, fragmented
        at ``miu`` bytes. Returns the names of the peers that accepted the
        message. Raises :class:`BeamError` when no peer is in range or
        none accepted, :class:`TagLostError` when the link tears
        mid-transfer.
        """
        with self._lock:
            self.beam_attempts += 1
        peers = self._env.peers_of(self)
        if not peers:
            raise BeamError(f"no peer in Beam range of {self.name}")
        delivered: List[str] = []
        for peer in peers:
            if not self._env.in_beam_range(self, peer):
                continue  # drifted apart during the transfer
            if peer._snep_server is None:
                continue  # peer has no foreground activity accepting beams
            client = SnepClient(
                lambda raw, p=peer: self.snep_exchange(p, raw), miu=miu
            )
            try:
                client.put(message.to_bytes())
            except SnepProtocolError:
                continue  # peer rejected the PUT
            delivered.append(peer.name)
        if not delivered:
            raise BeamError(
                f"no peer of {self.name} accepted the beamed message"
            )
        return delivered

    # -- internals -------------------------------------------------------------------

    def _require_in_field(self, tag: SimulatedTag, torn: bool = False) -> None:
        if not self._env.tag_in_field(tag, self):
            if torn:
                raise TagLostError(
                    f"tag {tag.uid_hex} left the field of {self.name} mid-operation"
                )
            raise NotInFieldError(
                f"tag {tag.uid_hex} is not in the field of {self.name}"
            )

    def _simulate_latency(
        self,
        byte_count: int,
        batched: bool = False,
        tag: Optional[SimulatedTag] = None,
    ) -> None:
        seconds = (
            self._timing.batched_operation_seconds(byte_count)
            if batched
            else self._timing.operation_seconds(byte_count)
        )
        if tag is not None:
            # Transport surcharge: a relayed tag pays the network hop on
            # every radio round trip, on top of the transfer model.
            seconds += self._env.transfer_overhead_seconds(self, tag)
        if seconds > 0:
            self._clock.sleep(seconds)

    @staticmethod
    def _tear_write(tag: SimulatedTag, message: NdefMessage) -> None:
        """Leave behind whatever a torn write leaves on this tag technology.

        Type 2 tags end up with a truncated (unreadable) TLV; Type 4 tags'
        safe-update sequence leaves a valid empty tag. Each technology
        implements its own ``_tear_write_hook``.
        """
        try:
            tag._tear_write_hook(message)  # noqa: SLF001 - deliberate hook
        except Exception:  # noqa: BLE001 - best-effort corruption
            pass


class TagSession:
    """One connected window to a single tag (see ``open_session``).

    Offers the same blocking tag operations as the port, but each one
    costs only the per-operation share of the latency model -- the
    connect/anticollision cost was paid once when the session opened.
    Attempt counters and the link model behave exactly as in the
    standalone path (one link decision per data transfer), so tears,
    seeded loss sequences and the environment's attempt hooks are
    indistinguishable between the two paths.

    A torn transfer (``TagLostError`` / ``NotInFieldError``) kills the
    session: the physical link broke, so the next operation needs a
    fresh connect via a new session. Tag-layer errors (capacity,
    read-only, undecodable data) leave the session alive -- the radio
    link is fine, the tag just refused. Closing a session is free
    (deselection costs no radio time). Sessions are not thread-safe:
    one drain loop owns a session at a time.
    """

    __slots__ = ("_port", "_tag", "alive", "operations")

    def __init__(self, port: NfcAdapterPort, tag: SimulatedTag) -> None:
        self._port = port
        self._tag = tag
        self.alive = True
        self.operations = 0  # transfers completed inside this session

    @property
    def tag(self) -> SimulatedTag:
        return self._tag

    def close(self) -> None:
        self.alive = False

    def __repr__(self) -> str:
        return (
            f"TagSession({self._tag.uid_hex} on {self._port.name}, "
            f"alive={self.alive}, operations={self.operations})"
        )

    # -- session operations ----------------------------------------------------

    def read_ndef(self, tag: SimulatedTag) -> NdefMessage:
        self._guard(tag)
        with self._port._lock:
            self._port.read_attempts += 1
        return self._run(lambda: self._port._read_ndef_impl(tag, batched=True))

    def write_ndef(self, tag: SimulatedTag, message: NdefMessage) -> None:
        self._guard(tag)
        with self._port._lock:
            self._port.write_attempts += 1
        return self._run(
            lambda: self._port._write_ndef_impl(tag, message, batched=True)
        )

    def format_tag(self, tag: SimulatedTag) -> None:
        self._guard(tag)
        with self._port._lock:
            self._port.format_attempts += 1
        return self._run(lambda: self._port._format_impl(tag, batched=True))

    def make_read_only(self, tag: SimulatedTag) -> None:
        self._guard(tag)
        with self._port._lock:
            self._port.lock_attempts += 1
        return self._run(lambda: self._port._lock_impl(tag, batched=True))

    # -- internals ---------------------------------------------------------------

    def _guard(self, tag: SimulatedTag) -> None:
        if tag is not self._tag:
            raise MorenaError(
                f"session to tag {self._tag.uid_hex} cannot address "
                f"tag {tag.uid_hex}"
            )
        if not self.alive:
            raise TagLostError(
                f"session to tag {self._tag.uid_hex} on {self._port.name} "
                "is closed"
            )

    def _run(self, thunk):
        try:
            result = thunk()
        except (TagLostError, NotInFieldError):
            self.alive = False  # the physical link broke mid-window
            raise
        self.operations += 1
        return result
