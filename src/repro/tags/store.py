"""Tag persistence: snapshot, restore, and a directory-backed store.

A deployment of the paper's system sticks physical tags on walls and
crates; their contents persist between app sessions by construction.
The simulation gets the same property here: any
:class:`~repro.tags.tag.SimulatedTag` can be snapshotted to JSON bytes
(UID, model, full memory image, wear counters, lock state) and restored
later, and a :class:`TagStore` keeps a named population of tags in a
directory.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import List, Union

from repro.errors import TagError
from repro.tags.tag import SimulatedTag
from repro.tags.types import TAG_TYPES

SNAPSHOT_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def snapshot_tag(tag: SimulatedTag) -> bytes:
    """Serialize a tag's complete state to JSON bytes."""
    state = {
        "version": SNAPSHOT_VERSION,
        "uid": tag.uid.hex(),
        "tag_type": tag.tag_type.name,
        "memory": tag.memory.export_state(),
    }
    return json.dumps(state, sort_keys=True).encode("utf-8")


def restore_tag(data: bytes) -> SimulatedTag:
    """Rebuild a tag from :func:`snapshot_tag` output.

    The restored tag is a *new* physical object with the same UID and
    byte-identical memory; wear counters and lock state carry over.
    """
    try:
        state = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TagError(f"not a tag snapshot: {exc}") from exc
    if state.get("version") != SNAPSHOT_VERSION:
        raise TagError(
            f"unsupported snapshot version {state.get('version')!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    try:
        tag_type = TAG_TYPES[state["tag_type"]]
        uid = bytes.fromhex(state["uid"])
        memory_state = state["memory"]
    except (KeyError, ValueError) as exc:
        raise TagError(f"malformed tag snapshot: {exc}") from exc
    tag = SimulatedTag(tag_type=tag_type, uid=uid, formatted=False)
    tag.memory.import_state(memory_state)
    return tag


class TagStore:
    """A named population of tags persisted in one directory."""

    SUFFIX = ".tag.json"

    def __init__(self, directory: Union[str, Path]) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)

    def save(self, name: str, tag: SimulatedTag) -> Path:
        """Persist ``tag`` under ``name`` (overwrites)."""
        path = self._path(name)
        path.write_bytes(snapshot_tag(tag))
        return path

    def load(self, name: str) -> SimulatedTag:
        path = self._path(name)
        if not path.exists():
            raise TagError(f"no stored tag named {name!r} in {self._dir}")
        return restore_tag(path.read_bytes())

    def delete(self, name: str) -> bool:
        path = self._path(name)
        if path.exists():
            path.unlink()
            return True
        return False

    def names(self) -> List[str]:
        return sorted(
            path.name[: -len(self.SUFFIX)]
            for path in self._dir.glob(f"*{self.SUFFIX}")
        )

    def __contains__(self, name: str) -> bool:
        return self._path(name).exists()

    def _path(self, name: str) -> Path:
        if not _NAME_RE.match(name):
            raise TagError(
                f"invalid tag name {name!r}; use letters, digits, ., _ and -"
            )
        return self._dir / f"{name}{self.SUFFIX}"
