"""Catalog of simulated tag models.

Geometry follows the NXP datasheets for the NTAG and MIFARE Ultralight
families (the tags actually sold as NFC stickers and the ones a Nexus-S
class phone reads). ``user_pages`` is the NDEF TLV area; the first four
pages (UID, internal, lock bytes, capability container) are modeled
separately by :class:`repro.tags.tag.SimulatedTag`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.tags.memory import PAGE_SIZE


@dataclass(frozen=True)
class TagType:
    """Static description of one tag model."""

    name: str
    user_pages: int
    write_endurance: int = 10_000
    # Nominal per-byte transfer time in seconds; type 2 tags at 106 kbit/s
    # move roughly 10 KiB/s of useful payload once protocol overhead is
    # accounted for. The radio layer scales operation latency with this.
    seconds_per_byte: float = 1e-4

    @property
    def user_bytes(self) -> int:
        return self.user_pages * PAGE_SIZE

    @property
    def total_pages(self) -> int:
        # 4 header pages (UID x2, internal+lock, capability container).
        return self.user_pages + 4

    @property
    def ndef_capacity(self) -> int:
        """Largest NDEF message that fits once TLV overhead is subtracted.

        The message TLV costs 2 bytes of overhead for lengths < 255 and
        4 bytes otherwise, plus 1 byte for the terminator TLV.
        """
        area = self.user_bytes
        if area - 3 < 255:
            return max(0, area - 3)
        return max(0, area - 5)


TAG_TYPES: Dict[str, TagType] = {
    tag_type.name: tag_type
    for tag_type in (
        TagType(name="MIFARE_ULTRALIGHT", user_pages=12, write_endurance=10_000),
        TagType(name="NTAG203", user_pages=36, write_endurance=10_000),
        TagType(name="NTAG213", user_pages=36, write_endurance=10_000),
        TagType(name="NTAG215", user_pages=126, write_endurance=10_000),
        TagType(name="NTAG216", user_pages=222, write_endurance=10_000),
        # A generous synthetic model for stress tests and large things.
        TagType(name="SIMTAG_4K", user_pages=1024, write_endurance=100_000),
    )
}

DEFAULT_TAG_TYPE = TAG_TYPES["NTAG216"]
