"""Type 4 tags: the ISO-DEP tag technology.

Where Type 2 tags expose raw pages, Type 4 tags run a tiny smartcard
application (ISO 7816-4). The NFC Forum Type 4 Tag mapping defines:

* an **NDEF application** selected by AID ``D2760000850101``;
* a **capability container file** (id ``E103``): version, maximum APDU
  sizes and a control TLV naming the NDEF file, its capacity and its
  read/write access bytes;
* an **NDEF file** (default id ``E104``): a 2-byte ``NLEN`` length prefix
  followed by the NDEF message bytes.

Readers drive the tag through SELECT / READ BINARY / UPDATE BINARY
APDUs. Writers follow the specification's **safe update** sequence:
write ``NLEN = 0``, write the message bytes, then write the real
``NLEN``. The payoff is atomicity -- a write torn mid-way leaves a
*valid empty* tag, never a corrupt one (contrast with Type 2, where a
torn TLV is unreadable until rewritten). The reproduction keeps that
difference observable: see ``benchmarks/test_bench_tag_techs.py``.

:class:`Type4Tag` implements the same high-level surface as
:class:`~repro.tags.tag.SimulatedTag` (``read_ndef`` / ``write_ndef`` /
``format`` / ``make_read_only`` / ``is_ndef_formatted`` ...), but every
high-level call is routed through the tag's own APDU processor -- the
byte protocol is the real interface, as on hardware.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import TagCapacityError, TagFormatError, TagReadOnlyError
from repro.ndef.message import NdefMessage
from repro.tags.apdu import (
    INS_READ_BINARY,
    INS_SELECT,
    INS_UPDATE_BINARY,
    SW_CONDITIONS_NOT_SATISFIED,
    SW_FILE_NOT_FOUND,
    SW_INS_NOT_SUPPORTED,
    SW_WRONG_LENGTH,
    SW_WRONG_P1P2,
    CommandApdu,
    ResponseApdu,
    error,
    ok,
)
from repro.tags.tag import generate_uid

NDEF_AID = bytes.fromhex("D2760000850101")
CC_FILE_ID = 0xE103
NDEF_FILE_ID = 0xE104

CC_MAPPING_VERSION = 0x20  # 2.0
MAX_LE = 0xF6  # max bytes per READ BINARY
MAX_LC = 0xF6  # max bytes per UPDATE BINARY

ACCESS_GRANTED = 0x00
ACCESS_DENIED = 0xFF


@dataclass(frozen=True)
class Type4Spec:
    """Static description of one Type 4 tag model."""

    name: str
    ndef_file_size: int  # bytes, including the 2-byte NLEN prefix

    @property
    def ndef_capacity(self) -> int:
        return self.ndef_file_size - 2

    # Rough parity with TagType for the radio's latency model.
    @property
    def user_bytes(self) -> int:
        return self.ndef_file_size


TYPE4_SPECS: Dict[str, Type4Spec] = {
    spec.name: spec
    for spec in (
        Type4Spec(name="TYPE4_2K", ndef_file_size=2048),
        Type4Spec(name="TYPE4_8K", ndef_file_size=8192),
        Type4Spec(name="DESFIRE_EV1_4K", ndef_file_size=4096),
    )
}


class Type4Tag:
    """One simulated Type 4 tag (or the tag side of a card emulation)."""

    def __init__(
        self,
        spec: Type4Spec = TYPE4_SPECS["TYPE4_2K"],
        uid: Optional[bytes] = None,
    ) -> None:
        self._spec = spec
        self._uid = bytes(uid) if uid is not None else generate_uid()
        if len(self._uid) != 7:
            raise ValueError("tag UIDs are 7 bytes")
        self._lock = threading.RLock()
        self._ndef_file = bytearray(spec.ndef_file_size)  # NLEN=0: empty
        self._write_access = ACCESS_GRANTED
        # Reader-session state (one reader at a time, as in the field).
        self._app_selected = False
        self._selected_file: Optional[int] = None
        self.apdu_count = 0

    # -- identity ---------------------------------------------------------------

    @property
    def uid(self) -> bytes:
        return self._uid

    @property
    def uid_hex(self) -> str:
        return self._uid.hex()

    @property
    def tag_type(self) -> Type4Spec:
        return self._spec

    @property
    def ndef_capacity(self) -> int:
        return self._spec.ndef_capacity

    def __repr__(self) -> str:
        return f"Type4Tag({self._spec.name}, uid={self.uid_hex})"

    # -- SimulatedTag-compatible high-level surface ------------------------------
    # Every call below goes through the tag's own APDU processor; the byte
    # protocol is the real interface, exactly as on hardware.

    @property
    def is_ndef_formatted(self) -> bool:
        return True  # Type 4 tags ship with the NDEF application installed

    @property
    def is_writable(self) -> bool:
        with self._lock:
            return self._write_access == ACCESS_GRANTED

    @property
    def is_empty(self) -> bool:
        try:
            return self.read_ndef().is_empty
        except Exception:  # noqa: BLE001 - unreadable counts as not-empty
            return False

    def read_ndef(self) -> NdefMessage:
        return _high_level_read(self)

    def write_ndef(self, message: NdefMessage) -> None:
        _high_level_write(self, message)

    def format(self) -> None:
        """Factory tags host the NDEF application already; empty the file."""
        session = _open_session(self)
        session.select_file(NDEF_FILE_ID)
        session.write_all(0, b"\x00\x00")

    def erase(self) -> None:
        self.format()

    def make_read_only(self) -> None:
        with self._lock:
            self._write_access = ACCESS_DENIED

    def _tear_write_hook(self, message: NdefMessage) -> None:
        """What a tear mid-write leaves behind: NLEN=0 plus partial data.

        Thanks to the safe-update sequence this is a *valid empty* tag,
        never a corrupt one -- the observable difference from Type 2.
        """
        encoded = message.to_bytes()
        torn = encoded[: max(1, len(encoded) // 2)]
        session = _open_session(self)
        session.select_file(NDEF_FILE_ID)
        session.write_all(0, b"\x00\x00")
        session.write_all(2, torn)

    # -- the APDU processor (what the radio actually calls) -------------------------

    def process_apdu(self, raw: bytes) -> bytes:
        """Handle one command APDU; returns the response bytes."""
        with self._lock:
            self.apdu_count += 1
            try:
                command = CommandApdu.from_bytes(raw)
            except Exception:  # noqa: BLE001 - hostile bytes answer with SW
                return error(SW_WRONG_LENGTH).to_bytes()
            return self._dispatch(command).to_bytes()

    def _dispatch(self, command: CommandApdu) -> ResponseApdu:
        if command.ins == INS_SELECT:
            return self._select(command)
        if command.ins == INS_READ_BINARY:
            return self._read_binary(command)
        if command.ins == INS_UPDATE_BINARY:
            return self._update_binary(command)
        return error(SW_INS_NOT_SUPPORTED)

    def _select(self, command: CommandApdu) -> ResponseApdu:
        if command.p1 == 0x04:  # select by AID
            if command.data == NDEF_AID:
                self._app_selected = True
                self._selected_file = None
                return ok()
            return error(SW_FILE_NOT_FOUND)
        if command.p1 == 0x00:  # select by file id
            if not self._app_selected:
                return error(SW_CONDITIONS_NOT_SATISFIED)
            if len(command.data) != 2:
                return error(SW_WRONG_LENGTH)
            file_id = int.from_bytes(command.data, "big")
            if file_id in (CC_FILE_ID, NDEF_FILE_ID):
                self._selected_file = file_id
                return ok()
            return error(SW_FILE_NOT_FOUND)
        return error(SW_WRONG_P1P2)

    def _read_binary(self, command: CommandApdu) -> ResponseApdu:
        content = self._selected_content()
        if content is None:
            return error(SW_CONDITIONS_NOT_SATISFIED)
        offset = command.p1p2
        if offset > len(content):
            return error(SW_WRONG_P1P2)
        length = command.le if command.le is not None else 0
        return ok(bytes(content[offset : offset + length]))

    def _update_binary(self, command: CommandApdu) -> ResponseApdu:
        if self._selected_file != NDEF_FILE_ID:
            return error(SW_CONDITIONS_NOT_SATISFIED)
        if self._write_access != ACCESS_GRANTED:
            return error(SW_CONDITIONS_NOT_SATISFIED)
        offset = command.p1p2
        if offset + len(command.data) > len(self._ndef_file):
            return error(SW_WRONG_LENGTH)
        self._ndef_file[offset : offset + len(command.data)] = command.data
        return ok()

    def _selected_content(self) -> Optional[bytes]:
        if self._selected_file == CC_FILE_ID:
            return self._cc_file()
        if self._selected_file == NDEF_FILE_ID:
            return bytes(self._ndef_file)
        return None

    def _cc_file(self) -> bytes:
        # CCLEN(2) version(1) MLe(2) MLc(2) + NDEF file control TLV (8).
        tlv = bytes(
            [
                0x04,  # NDEF File Control TLV
                0x06,
                NDEF_FILE_ID >> 8,
                NDEF_FILE_ID & 0xFF,
                len(self._ndef_file) >> 8,
                len(self._ndef_file) & 0xFF,
                ACCESS_GRANTED,  # read access
                self._write_access,
            ]
        )
        body = (
            bytes([CC_MAPPING_VERSION])
            + MAX_LE.to_bytes(2, "big")
            + MAX_LC.to_bytes(2, "big")
            + tlv
        )
        cclen = len(body) + 2
        return cclen.to_bytes(2, "big") + body


class _Type4ReaderSession:
    """Drives a Type4Tag through APDUs the way a phone's NFC stack does."""

    def __init__(self, tag: Type4Tag) -> None:
        self._tag = tag

    def _exchange(self, command: CommandApdu) -> ResponseApdu:
        response = ResponseApdu.from_bytes(self._tag.process_apdu(command.to_bytes()))
        return response

    def select_application(self) -> ResponseApdu:
        return self._exchange(
            CommandApdu(0x00, INS_SELECT, 0x04, 0x00, data=NDEF_AID)
        )

    def select_file(self, file_id: int) -> ResponseApdu:
        return self._exchange(
            CommandApdu(0x00, INS_SELECT, 0x00, 0x0C, data=file_id.to_bytes(2, "big"))
        )

    def read_binary(self, offset: int, length: int) -> ResponseApdu:
        return self._exchange(
            CommandApdu(0x00, INS_READ_BINARY, offset >> 8, offset & 0xFF, le=length)
        )

    def update_binary(self, offset: int, data: bytes) -> ResponseApdu:
        return self._exchange(
            CommandApdu(0x00, INS_UPDATE_BINARY, offset >> 8, offset & 0xFF, data=data)
        )

    def read_all(self, offset: int, total: int) -> bytes:
        out = bytearray()
        position = offset
        while len(out) < total:
            chunk = min(MAX_LE, total - len(out))
            response = self.read_binary(position, chunk)
            if not response.is_ok:
                raise TagFormatError(f"READ BINARY failed: SW={response.sw:04x}")
            out += response.data
            position += len(response.data)
        return bytes(out)

    def write_all(self, offset: int, data: bytes) -> None:
        position = 0
        while position < len(data):
            chunk = data[position : position + MAX_LC]
            response = self.update_binary(offset + position, chunk)
            if not response.is_ok:
                if response.sw == SW_CONDITIONS_NOT_SATISFIED:
                    raise TagReadOnlyError("NDEF file is write-protected")
                raise TagFormatError(f"UPDATE BINARY failed: SW={response.sw:04x}")
            position += len(chunk)


# -- the SimulatedTag-compatible high-level surface --------------------------------


def _open_session(tag: Type4Tag) -> _Type4ReaderSession:
    session = _Type4ReaderSession(tag)
    if not session.select_application().is_ok:
        raise TagFormatError("tag does not host the NDEF application")
    return session


def _high_level_read(tag: Type4Tag) -> NdefMessage:
    session = _open_session(tag)
    if not session.select_file(NDEF_FILE_ID).is_ok:
        raise TagFormatError("NDEF file missing")
    nlen = int.from_bytes(session.read_all(0, 2), "big")
    if nlen == 0:
        return NdefMessage.empty()
    if nlen > tag.ndef_capacity:
        raise TagFormatError(f"NLEN {nlen} exceeds the NDEF file")
    return NdefMessage.from_bytes(session.read_all(2, nlen))


def _high_level_write(tag: Type4Tag, message: NdefMessage) -> None:
    encoded = message.to_bytes()
    if len(encoded) > tag.ndef_capacity:
        raise TagCapacityError(
            f"{len(encoded)}-byte message exceeds the "
            f"{tag.ndef_capacity}-byte NDEF file of {tag.tag_type.name}"
        )
    session = _open_session(tag)
    if not session.select_file(NDEF_FILE_ID).is_ok:
        raise TagFormatError("NDEF file missing")
    # The specification's safe sequence: NLEN=0, data, real NLEN.
    session.write_all(0, b"\x00\x00")
    session.write_all(2, encoded)
    session.write_all(0, len(encoded).to_bytes(2, "big"))


def make_type4_tag(
    spec: str = "TYPE4_2K",
    content: Optional[NdefMessage] = None,
    uid: Optional[bytes] = None,
) -> Type4Tag:
    """Convenience constructor mirroring :func:`repro.tags.factory.make_tag`."""
    try:
        resolved = TYPE4_SPECS[spec]
    except KeyError:
        known = ", ".join(sorted(TYPE4_SPECS))
        raise TagFormatError(f"unknown Type 4 spec {spec!r}; known: {known}") from None
    tag = Type4Tag(spec=resolved, uid=uid)
    if content is not None:
        tag.write_ndef(content)
    return tag
