"""ISO 7816-4 APDUs: the command protocol of Type 4 tags.

Type 4 tags (and phones emulating cards) speak ISO-DEP: the reader sends
command APDUs (``CLA INS P1 P2 [Lc data] [Le]``), the tag answers with
response APDUs (``data SW1 SW2``). This module implements the short-form
encoding the NFC Forum Type 4 Tag specification uses, plus the status
words the NDEF application returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import TagError


class ApduError(TagError):
    """Malformed APDU bytes."""


# Instructions used by the Type 4 NDEF application.
INS_SELECT = 0xA4
INS_READ_BINARY = 0xB0
INS_UPDATE_BINARY = 0xD6

# Status words.
SW_OK = 0x9000
SW_FILE_NOT_FOUND = 0x6A82
SW_WRONG_P1P2 = 0x6B00
SW_WRONG_LENGTH = 0x6700
SW_INS_NOT_SUPPORTED = 0x6D00
SW_CONDITIONS_NOT_SATISFIED = 0x6985
SW_END_OF_FILE = 0x6282


@dataclass(frozen=True)
class CommandApdu:
    """A short-form command APDU."""

    cla: int
    ins: int
    p1: int
    p2: int
    data: bytes = b""
    le: Optional[int] = None  # expected response length; None = absent

    def __post_init__(self) -> None:
        for name, value in (
            ("cla", self.cla),
            ("ins", self.ins),
            ("p1", self.p1),
            ("p2", self.p2),
        ):
            if not 0 <= value <= 0xFF:
                raise ApduError(f"{name} must be one byte, got {value}")
        if len(self.data) > 0xFF:
            raise ApduError("short-form APDUs carry at most 255 data bytes")
        if self.le is not None and not 0 <= self.le <= 0x100:
            raise ApduError("Le must be in 0..256")

    @property
    def p1p2(self) -> int:
        return (self.p1 << 8) | self.p2

    def to_bytes(self) -> bytes:
        out = bytearray([self.cla, self.ins, self.p1, self.p2])
        if self.data:
            out.append(len(self.data))
            out += self.data
        if self.le is not None:
            out.append(0x00 if self.le == 0x100 else self.le)
        return bytes(out)

    @staticmethod
    def from_bytes(raw: bytes) -> "CommandApdu":
        if len(raw) < 4:
            raise ApduError("command APDU shorter than 4 bytes")
        cla, ins, p1, p2 = raw[0], raw[1], raw[2], raw[3]
        body = raw[4:]
        data = b""
        le: Optional[int] = None
        if len(body) == 0:
            pass  # case 1: no data, no Le
        elif len(body) == 1:
            le = body[0] or 0x100  # case 2: Le only
        else:
            lc = body[0]
            rest = body[1:]
            if len(rest) == lc:
                data = bytes(rest)  # case 3: data, no Le
            elif len(rest) == lc + 1:
                data = bytes(rest[:-1])  # case 4: data + Le
                le = rest[-1] or 0x100
            else:
                raise ApduError(
                    f"Lc={lc} inconsistent with {len(rest)} remaining bytes"
                )
        return CommandApdu(cla=cla, ins=ins, p1=p1, p2=p2, data=data, le=le)


@dataclass(frozen=True)
class ResponseApdu:
    """A response APDU: payload plus a 16-bit status word."""

    sw: int
    data: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.sw <= 0xFFFF:
            raise ApduError("status word must be 16 bits")

    @property
    def is_ok(self) -> bool:
        return self.sw == SW_OK

    def to_bytes(self) -> bytes:
        return self.data + bytes([self.sw >> 8, self.sw & 0xFF])

    @staticmethod
    def from_bytes(raw: bytes) -> "ResponseApdu":
        if len(raw) < 2:
            raise ApduError("response APDU shorter than 2 bytes")
        return ResponseApdu(
            sw=(raw[-2] << 8) | raw[-1],
            data=bytes(raw[:-2]),
        )


def ok(data: bytes = b"") -> ResponseApdu:
    return ResponseApdu(sw=SW_OK, data=data)


def error(sw: int) -> ResponseApdu:
    return ResponseApdu(sw=sw)
