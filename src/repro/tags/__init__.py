"""Simulated RFID/NFC tag hardware.

Byte-level simulation of NFC Forum Type-2-style tags (NTAG / MIFARE
Ultralight families): page-addressed EEPROM, capability container, NDEF
TLV area, static lock bytes and a write-endurance budget.

The radio layer moves these tags in and out of the field of simulated
phones; the Android layer exposes them through blocking ``Ndef`` /
``NdefFormatable`` tech objects exactly like the real platform does.
"""

from repro.tags.memory import TagMemory
from repro.tags.types import TAG_TYPES, TagType
from repro.tags.tag import SimulatedTag
from repro.tags.factory import make_tag, make_tags
from repro.tags.store import TagStore, restore_tag, snapshot_tag
from repro.tags.type4 import TYPE4_SPECS, Type4Spec, Type4Tag, make_type4_tag

__all__ = [
    "TagMemory",
    "TagType",
    "TAG_TYPES",
    "SimulatedTag",
    "make_tag",
    "make_tags",
    "TagStore",
    "snapshot_tag",
    "restore_tag",
    "Type4Tag",
    "Type4Spec",
    "TYPE4_SPECS",
    "make_type4_tag",
]
