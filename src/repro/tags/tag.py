"""The simulated tag proper: UID, capability container, NDEF TLV area.

A :class:`SimulatedTag` behaves like an NFC Forum Type 2 tag:

* pages 0-1 hold the 7-byte UID (+ BCC bytes, simplified),
* page 2 holds internal/lock bytes,
* page 3 holds the capability container (CC): magic ``0xE1``, version,
  user-area size, access byte,
* pages 4+ hold TLV blocks; an NDEF message lives in a ``0x03`` TLV
  terminated by ``0xFE``.

Everything the Android tech layer does (read, write, format, lock) goes
through the byte-level operations here, so capacity limits, unformatted
tags and read-only tags behave as on hardware.
"""

from __future__ import annotations

import itertools
import threading
from typing import Optional, Tuple

from repro.errors import (
    TagCapacityError,
    TagFormatError,
    TagReadOnlyError,
)
from repro.ndef.message import NdefMessage
from repro.tags.memory import PAGE_SIZE, TagMemory
from repro.tags.types import DEFAULT_TAG_TYPE, TagType

CC_MAGIC = 0xE1
CC_VERSION = 0x10  # NDEF mapping version 1.0
CC_ACCESS_RW = 0x00
CC_ACCESS_RO = 0x0F

TLV_NULL = 0x00
TLV_NDEF = 0x03
TLV_PROPRIETARY = 0xFD
TLV_TERMINATOR = 0xFE

USER_START_PAGE = 4

_uid_counter = itertools.count(1)
_uid_lock = threading.Lock()


def generate_uid() -> bytes:
    """A unique 7-byte NXP-style UID (manufacturer byte 0x04)."""
    with _uid_lock:
        serial = next(_uid_counter)
    return bytes([0x04]) + serial.to_bytes(6, "big")


class SimulatedTag:
    """One physical tag. Thread-safe; shared by every reader that sees it."""

    def __init__(
        self,
        tag_type: TagType = DEFAULT_TAG_TYPE,
        uid: Optional[bytes] = None,
        formatted: bool = True,
    ) -> None:
        self._type = tag_type
        self._uid = bytes(uid) if uid is not None else generate_uid()
        if len(self._uid) != 7:
            raise ValueError("tag UIDs are 7 bytes")
        self._memory = TagMemory(
            page_count=tag_type.total_pages,
            write_endurance=tag_type.write_endurance,
        )
        self._lock = threading.RLock()
        self._memory.write_bytes(0, self._uid + b"\x00")  # pages 0-1
        if formatted:
            self.format()

    # -- identity ------------------------------------------------------------

    @property
    def uid(self) -> bytes:
        return self._uid

    @property
    def uid_hex(self) -> str:
        return self._uid.hex()

    @property
    def tag_type(self) -> TagType:
        return self._type

    @property
    def memory(self) -> TagMemory:
        return self._memory

    def __repr__(self) -> str:
        return f"SimulatedTag({self._type.name}, uid={self.uid_hex})"

    # -- capability container ------------------------------------------------

    def format(self) -> None:
        """Write the capability container and an empty NDEF message.

        Equivalent to ``NdefFormatable.format()`` on Android.
        """
        with self._lock:
            size_field = min(self._type.user_bytes // 8, 0xFF)
            self._memory.write_page(
                3, bytes([CC_MAGIC, CC_VERSION, size_field, CC_ACCESS_RW])
            )
            self._store_tlv(NdefMessage.empty().to_bytes())

    @property
    def is_ndef_formatted(self) -> bool:
        return self._memory.read_page(3)[0] == CC_MAGIC

    @property
    def is_writable(self) -> bool:
        with self._lock:
            if self._memory.locked:
                return False
            cc = self._memory.read_page(3)
            return cc[0] == CC_MAGIC and cc[3] == CC_ACCESS_RW

    def make_read_only(self) -> None:
        """Set the CC access byte to read-only and freeze the memory.

        Idempotent: locking an already-locked tag is a no-op (the lock
        bits are one-way fuses on hardware).
        """
        with self._lock:
            if self._memory.locked:
                return
            cc = bytearray(self._memory.read_page(3))
            cc[3] = CC_ACCESS_RO
            self._memory.write_page(3, bytes(cc))
            self._memory.lock()

    @property
    def ndef_capacity(self) -> int:
        """Largest encodable NDEF message in bytes."""
        return self._type.ndef_capacity

    # -- NDEF I/O ------------------------------------------------------------

    def read_ndef(self) -> NdefMessage:
        """Read and decode the stored NDEF message.

        Raises :class:`TagFormatError` if the tag is unformatted or its TLV
        area is corrupt.
        """
        with self._lock:
            if not self.is_ndef_formatted:
                raise TagFormatError(f"tag {self.uid_hex} is not NDEF formatted")
            raw = self._load_tlv()
            return NdefMessage.from_bytes(raw)

    def write_ndef(self, message: NdefMessage) -> None:
        """Encode and store ``message``.

        Raises :class:`TagFormatError` for unformatted tags,
        :class:`TagReadOnlyError` for locked tags and
        :class:`TagCapacityError` when the message does not fit.
        """
        with self._lock:
            if not self.is_ndef_formatted:
                raise TagFormatError(f"tag {self.uid_hex} is not NDEF formatted")
            if not self.is_writable:
                raise TagReadOnlyError(f"tag {self.uid_hex} is read-only")
            encoded = message.to_bytes()
            if len(encoded) > self.ndef_capacity:
                raise TagCapacityError(
                    f"{len(encoded)}-byte message exceeds the "
                    f"{self.ndef_capacity}-byte capacity of {self._type.name}"
                )
            self._store_tlv(encoded)

    def erase(self) -> None:
        """Overwrite the stored message with the canonical empty message."""
        self.write_ndef(NdefMessage.empty())

    @property
    def is_empty(self) -> bool:
        """True when formatted and holding only the empty record."""
        with self._lock:
            if not self.is_ndef_formatted:
                return False
            try:
                return self.read_ndef().is_empty
            except Exception:  # noqa: BLE001 - corrupt area counts as not-empty
                return False

    # -- TLV plumbing ----------------------------------------------------------

    def _store_tlv(self, ndef_bytes: bytes) -> None:
        if len(ndef_bytes) < 0xFF:
            block = bytes([TLV_NDEF, len(ndef_bytes)]) + ndef_bytes
        else:
            block = (
                bytes([TLV_NDEF, 0xFF])
                + len(ndef_bytes).to_bytes(2, "big")
                + ndef_bytes
            )
        block += bytes([TLV_TERMINATOR])
        if len(block) > self._type.user_bytes:
            raise TagCapacityError(
                f"TLV block of {len(block)} bytes exceeds the "
                f"{self._type.user_bytes}-byte user area"
            )
        self._memory.write_bytes(USER_START_PAGE, block)

    def _load_tlv(self) -> bytes:
        area = self._memory.read_pages(USER_START_PAGE, self._type.user_pages)
        offset = 0
        while offset < len(area):
            tlv_type = area[offset]
            if tlv_type == TLV_NULL:
                offset += 1
                continue
            if tlv_type == TLV_TERMINATOR:
                break
            value, offset = self._read_tlv_value(area, offset)
            if tlv_type == TLV_NDEF:
                return value
            # Proprietary and other TLVs are skipped.
        raise TagFormatError(f"tag {self.uid_hex} holds no NDEF TLV")

    @staticmethod
    def _read_tlv_value(area: bytes, offset: int) -> Tuple[bytes, int]:
        if offset + 2 > len(area):
            raise TagFormatError("truncated TLV header")
        length = area[offset + 1]
        offset += 2
        if length == 0xFF:
            if offset + 2 > len(area):
                raise TagFormatError("truncated 3-byte TLV length")
            length = int.from_bytes(area[offset : offset + 2], "big")
            offset += 2
        if offset + length > len(area):
            raise TagFormatError("TLV value exceeds the user area")
        return area[offset : offset + length], offset + length

    def _tear_write_hook(self, message: NdefMessage) -> None:
        """What a tear mid-write leaves behind on a Type 2 tag: a truncated
        TLV that subsequent reads reject until a full rewrite heals it."""
        encoded = message.to_bytes()
        torn = encoded[: max(1, len(encoded) // 2)]
        try:
            self._store_tlv(torn)
        except Exception:  # noqa: BLE001 - best-effort corruption
            pass

    # -- diagnostics -----------------------------------------------------------

    def raw_dump(self) -> bytes:
        """Full memory image, for debugging and forensic tests."""
        return self._memory.read_pages(0, self._memory.page_count)

    @property
    def write_cycles(self) -> int:
        return self._memory.total_writes()
