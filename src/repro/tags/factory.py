"""Convenience constructors for simulated tags."""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import TagError
from repro.ndef.message import NdefMessage
from repro.tags.tag import SimulatedTag
from repro.tags.types import TAG_TYPES, TagType


def _resolve_type(tag_type: Union[str, TagType, None]) -> TagType:
    if tag_type is None:
        return TAG_TYPES["NTAG216"]
    if isinstance(tag_type, TagType):
        return tag_type
    try:
        return TAG_TYPES[tag_type]
    except KeyError:
        known = ", ".join(sorted(TAG_TYPES))
        raise TagError(f"unknown tag type {tag_type!r}; known types: {known}") from None


def make_tag(
    tag_type: Union[str, TagType, None] = None,
    content: Optional[NdefMessage] = None,
    formatted: bool = True,
    uid: Optional[bytes] = None,
) -> SimulatedTag:
    """Build one tag, optionally pre-loaded with ``content``."""
    resolved = _resolve_type(tag_type)
    tag = SimulatedTag(tag_type=resolved, uid=uid, formatted=formatted)
    if content is not None:
        if not formatted:
            raise TagError("cannot preload content onto an unformatted tag")
        tag.write_ndef(content)
    return tag


def make_tags(
    count: int,
    tag_type: Union[str, TagType, None] = None,
    formatted: bool = True,
) -> List[SimulatedTag]:
    """Build ``count`` fresh tags of the same model."""
    if count < 0:
        raise TagError("count must be >= 0")
    return [make_tag(tag_type=tag_type, formatted=formatted) for _ in range(count)]
