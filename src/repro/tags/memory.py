"""Page-addressed tag EEPROM.

Type 2 tags expose their memory as 4-byte pages. Pages 0-2 hold the UID
and internal/lock bytes, page 3 holds the capability container, and user
memory starts at page 4. This module models just the storage: bounds
checking, page granularity, per-page write counting (for the endurance
model) and a static lock that freezes the user area.
"""

from __future__ import annotations

import threading
from typing import List

from repro.errors import TagError, TagReadOnlyError, TagWornOutError

PAGE_SIZE = 4


class TagMemory:
    """A bank of 4-byte pages with lock and endurance accounting."""

    def __init__(self, page_count: int, write_endurance: int = 0) -> None:
        """Create a zeroed memory of ``page_count`` pages.

        ``write_endurance`` is the number of write cycles each page
        tolerates; 0 disables the endurance model.
        """
        if page_count <= 0:
            raise TagError("a tag needs at least one memory page")
        self._pages = bytearray(page_count * PAGE_SIZE)
        self._page_count = page_count
        self._write_counts = [0] * page_count
        self._write_endurance = write_endurance
        self._locked = False
        self._lock = threading.RLock()

    # -- geometry ------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def byte_size(self) -> int:
        return self._page_count * PAGE_SIZE

    # -- locking -------------------------------------------------------------

    @property
    def locked(self) -> bool:
        with self._lock:
            return self._locked

    def lock(self) -> None:
        """Set the static lock: all subsequent writes fail. Irreversible."""
        with self._lock:
            self._locked = True

    # -- page I/O ------------------------------------------------------------

    def read_page(self, page: int) -> bytes:
        with self._lock:
            self._check_page(page)
            offset = page * PAGE_SIZE
            return bytes(self._pages[offset : offset + PAGE_SIZE])

    def read_pages(self, page: int, count: int) -> bytes:
        with self._lock:
            if count < 0:
                raise TagError("page count must be >= 0")
            self._check_page(page)
            if count and page + count > self._page_count:
                raise TagError(
                    f"read of {count} pages at page {page} exceeds "
                    f"{self._page_count}-page memory"
                )
            offset = page * PAGE_SIZE
            return bytes(self._pages[offset : offset + count * PAGE_SIZE])

    def write_page(self, page: int, data: bytes) -> None:
        with self._lock:
            self._check_page(page)
            if len(data) != PAGE_SIZE:
                raise TagError(f"page writes must be exactly {PAGE_SIZE} bytes")
            if self._locked:
                raise TagReadOnlyError(f"page {page} is locked")
            if self._write_endurance:
                if self._write_counts[page] >= self._write_endurance:
                    raise TagWornOutError(
                        f"page {page} exceeded its {self._write_endurance}-cycle "
                        "write endurance"
                    )
                self._write_counts[page] += 1
            offset = page * PAGE_SIZE
            self._pages[offset : offset + PAGE_SIZE] = data

    def write_bytes(self, start_page: int, data: bytes) -> None:
        """Write ``data`` page by page starting at ``start_page``.

        The final partial page (if any) is padded with the existing bytes,
        i.e. only ``len(data)`` bytes actually change.
        """
        with self._lock:
            full_pages, remainder = divmod(len(data), PAGE_SIZE)
            needed = full_pages + (1 if remainder else 0)
            if start_page + needed > self._page_count:
                raise TagError(
                    f"{len(data)}-byte write at page {start_page} exceeds memory"
                )
            for index in range(full_pages):
                offset = index * PAGE_SIZE
                self.write_page(start_page + index, data[offset : offset + PAGE_SIZE])
            if remainder:
                tail_page = start_page + full_pages
                existing = self.read_page(tail_page)
                patched = data[full_pages * PAGE_SIZE :] + existing[remainder:]
                self.write_page(tail_page, patched)

    # -- diagnostics ---------------------------------------------------------

    def write_count(self, page: int) -> int:
        with self._lock:
            self._check_page(page)
            return self._write_counts[page]

    def total_writes(self) -> int:
        with self._lock:
            return sum(self._write_counts)

    def worn_pages(self) -> List[int]:
        """Pages that have exhausted their endurance budget."""
        with self._lock:
            if not self._write_endurance:
                return []
            return [
                page
                for page, count in enumerate(self._write_counts)
                if count >= self._write_endurance
            ]

    # -- persistence -----------------------------------------------------------

    def export_state(self) -> dict:
        """A JSON-able snapshot of the full memory state."""
        with self._lock:
            return {
                "pages": bytes(self._pages).hex(),
                "page_count": self._page_count,
                "write_counts": list(self._write_counts),
                "write_endurance": self._write_endurance,
                "locked": self._locked,
            }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        with self._lock:
            pages = bytes.fromhex(state["pages"])
            if len(pages) != self.byte_size or state["page_count"] != self._page_count:
                raise TagError("snapshot geometry does not match this memory")
            self._pages[:] = pages
            self._write_counts = list(state["write_counts"])
            self._write_endurance = int(state["write_endurance"])
            self._locked = bool(state["locked"])

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self._page_count:
            raise TagError(
                f"page {page} out of range (tag has {self._page_count} pages)"
            )

    def __repr__(self) -> str:
        return (
            f"TagMemory(pages={self._page_count}, locked={self._locked}, "
            f"writes={self.total_writes()})"
        )
