"""A GSON-like JSON object mapper.

The paper serializes *things* with Google's GSON: deep serialization of
all non-``transient`` fields, JSON text on the tag, and **no cycles in the
object graph**. This package reproduces that contract in Python:

* ``to_json(obj)`` walks the object graph depth-first, emitting every
  public attribute that is not declared transient;
* ``from_json(text, cls)`` rebuilds an instance of ``cls`` without calling
  ``__init__``, using class annotations to revive nested objects;
* cycles raise :class:`~repro.errors.CircularReferenceError`;
* custom representations are pluggable through type adapters
  (:mod:`repro.gson.adapters`), e.g. ``bytes`` as base64.

Transient fields are declared with a ``__transient__`` tuple on the class;
attributes whose names start with ``_`` are always skipped (they are the
Python analogue of non-serializable internals).
"""

from repro.gson.adapters import BytesAdapter, TypeAdapter
from repro.gson.gson import (
    ClassPlan,
    Gson,
    annotated_fields,
    class_plan,
    transient_fields,
)

__all__ = [
    "Gson",
    "TypeAdapter",
    "BytesAdapter",
    "ClassPlan",
    "class_plan",
    "transient_fields",
    "annotated_fields",
]
