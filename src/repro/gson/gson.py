"""The object mapper proper.

Serialization rules (matching the slice of GSON the paper relies on):

* JSON primitives (``None``, ``bool``, ``int``, ``float``, ``str``) pass
  through; ``tuple``/``list``/``set`` become JSON arrays; ``dict`` becomes
  a JSON object (keys must be strings).
* Any other object is serialized from its instance attributes, skipping
  names that start with ``_`` and names listed in the class's
  ``__transient__`` tuple (searched across the MRO).
* Registered :class:`~repro.gson.adapters.TypeAdapter` instances win over
  the generic object walk.
* A cycle anywhere in the graph raises
  :class:`~repro.errors.CircularReferenceError` -- GSON does not support
  cyclic graphs and neither does the tag format.

Deserialization revives ``cls`` without calling ``__init__`` (GSON uses
unsafe allocation the same way) and uses class annotations to decide which
nested dicts become which classes. Unannotated fields are restored as
plain dicts/lists.
"""

from __future__ import annotations

import json
import threading
import typing
import weakref
from typing import Any, Dict, List, Optional, Type, TypeVar, get_args, get_origin

from repro.errors import CircularReferenceError, DeserializationError, SerializationError
from repro.gson.adapters import BytesAdapter, TypeAdapter

T = TypeVar("T")

_PRIMITIVES = (type(None), bool, int, float, str)


class ClassPlan:
    """Gson-independent per-class serialization facts, computed once.

    ``transients`` is the union of ``__transient__`` declarations across
    the MRO; ``annotations`` the merged class annotations (subclass
    wins). Treat both as read-only -- they are shared by every caller.
    """

    __slots__ = ("transients", "annotations")

    def __init__(self, transients: frozenset, annotations: Dict[str, Any]) -> None:
        self.transients = transients
        self.annotations = annotations


def _compute_class_plan(cls: type) -> ClassPlan:
    names: set = set()
    for klass in cls.__mro__:
        names.update(getattr(klass, "__transient__", ()))
    merged: Dict[str, Any] = {}
    for klass in reversed(cls.__mro__):
        merged.update(getattr(klass, "__annotations__", {}))
    return ClassPlan(frozenset(names), merged)


# Weakly keyed so dynamically created classes (tests, REPLs) can be
# collected; the lock only guards the compute-and-store race.
_class_plans: "weakref.WeakKeyDictionary[type, ClassPlan]" = weakref.WeakKeyDictionary()
_class_plans_lock = threading.Lock()


def class_plan(cls: type) -> ClassPlan:
    """The cached :class:`ClassPlan` for ``cls`` (computed on first use)."""
    plan = _class_plans.get(cls)
    if plan is None:
        with _class_plans_lock:
            plan = _class_plans.get(cls)
            if plan is None:
                plan = _compute_class_plan(cls)
                _class_plans[cls] = plan
    return plan


def transient_fields(cls: type) -> frozenset:
    """Union of ``__transient__`` declarations across the MRO (cached)."""
    return class_plan(cls).transients


def annotated_fields(cls: type) -> Dict[str, Any]:
    """Merged class annotations across the MRO, subclass wins (cached).

    The returned dict is the shared cache entry -- do not mutate it.
    """
    return class_plan(cls).annotations


class SerializationPlan:
    """One Gson instance's per-class fast path: class facts + adapter."""

    __slots__ = ("transients", "annotations", "adapter")

    def __init__(
        self,
        transients: frozenset,
        annotations: Dict[str, Any],
        adapter: Optional[TypeAdapter],
    ) -> None:
        self.transients = transients
        self.annotations = annotations
        self.adapter = adapter


class Gson:
    """One serializer configuration: a set of type adapters.

    Encoding resolves the per-class :class:`SerializationPlan` (transient
    set, annotations, MRO-resolved adapter) once and caches it, so
    repeated serialization of the same classes never re-walks the MRO.
    Pass ``cache_plans=False`` to recompute every plan on every use (the
    ablation baseline used by ``benchmarks/test_bench_codec.py``).
    """

    def __init__(
        self,
        adapters: Optional[List[TypeAdapter]] = None,
        cache_plans: bool = True,
    ) -> None:
        self._adapters: Dict[type, TypeAdapter] = {}
        self._cache_plans = cache_plans
        self._plans: Dict[type, SerializationPlan] = {}
        # Plan cache telemetry, exposed for tests and benchmarks.
        self.plan_hits = 0
        self.plan_misses = 0
        self.register_adapter(BytesAdapter())
        for adapter in adapters or []:
            self.register_adapter(adapter)

    def register_adapter(self, adapter: TypeAdapter) -> None:
        """Register ``adapter``; it also applies to subclasses of its
        target class (nearest MRO match wins, exact class first).

        Cached plans that may embed a now-stale adapter resolution are
        invalidated -- registering an adapter after a class has already
        been encoded must affect subsequent encodes.
        """
        self._adapters[adapter.target_class] = adapter
        self._plans.clear()

    def _resolve_adapter(self, cls: type) -> Optional[TypeAdapter]:
        adapter = self._adapters.get(cls)
        if adapter is not None:
            return adapter
        for klass in cls.__mro__[1:]:
            adapter = self._adapters.get(klass)
            if adapter is not None:
                return adapter
        return None

    def _plan_for(self, cls: type) -> SerializationPlan:
        plan = self._plans.get(cls)
        if plan is not None:
            self.plan_hits += 1
            return plan
        self.plan_misses += 1
        if self._cache_plans:
            facts = class_plan(cls)
        else:
            facts = _compute_class_plan(cls)  # honest no-cache baseline
        plan = SerializationPlan(
            facts.transients, facts.annotations, self._resolve_adapter(cls)
        )
        if self._cache_plans:
            self._plans[cls] = plan
        return plan

    # -- serialization --------------------------------------------------------

    def to_json(self, obj: Any, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_jsonable(obj), indent=indent, sort_keys=True)

    def to_jsonable(self, obj: Any) -> Any:
        return self._encode(obj, on_path=set())

    def _encode(self, obj: Any, on_path: set) -> Any:
        if isinstance(obj, _PRIMITIVES):
            return obj
        plan = self._plan_for(type(obj))
        if plan.adapter is not None:
            return plan.adapter.to_jsonable(obj)
        marker = id(obj)
        if marker in on_path:
            raise CircularReferenceError(
                f"cycle through a {type(obj).__name__} instance; "
                "GSON-style serialization does not support cyclic object graphs"
            )
        on_path.add(marker)
        try:
            if isinstance(obj, (list, tuple, set, frozenset)):
                return [self._encode(item, on_path) for item in obj]
            if isinstance(obj, dict):
                out = {}
                for key, value in obj.items():
                    if not isinstance(key, str):
                        raise SerializationError(
                            f"dict keys must be strings, got {type(key).__name__}"
                        )
                    out[key] = self._encode(value, on_path)
                return out
            return self._encode_object(obj, plan, on_path)
        finally:
            on_path.discard(marker)

    def _encode_object(
        self, obj: Any, plan: SerializationPlan, on_path: set
    ) -> Dict[str, Any]:
        attributes = getattr(obj, "__dict__", None)
        if attributes is None:
            raise SerializationError(
                f"cannot serialize {type(obj).__name__}: no instance attributes "
                "and no registered type adapter"
            )
        skip = plan.transients
        out: Dict[str, Any] = {}
        for name, value in attributes.items():
            if name.startswith("_") or name in skip:
                continue
            out[name] = self._encode(value, on_path)
        return out

    # -- deserialization ----------------------------------------------------------

    def from_json(self, text: str, cls: Type[T]) -> T:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DeserializationError(f"not valid JSON: {exc}") from exc
        return self.from_jsonable(data, cls)

    def from_jsonable(self, data: Any, cls: Type[T]) -> T:
        return self._decode(data, cls)

    def _decode(self, data: Any, target: Any) -> Any:
        if target is None or target is Any or target is typing.Any:
            return data
        origin = get_origin(target)
        if origin is not None:
            return self._decode_generic(data, target, origin)
        if isinstance(target, type):
            adapter = self._adapters.get(target)
            if adapter is not None:
                return adapter.from_jsonable(data)
            if target in _PRIMITIVES or target in (int, float, str, bool):
                return self._decode_primitive(data, target)
            if target in (list, dict, tuple, set):
                return data
            return self._decode_object(data, target)
        # Unresolvable annotation (string forward ref, TypeVar, ...): pass through.
        return data

    def _decode_generic(self, data: Any, target: Any, origin: type) -> Any:
        args = get_args(target)
        if origin in (list, set, frozenset, tuple):
            if not isinstance(data, list):
                raise DeserializationError(
                    f"expected a JSON array for {target}, got {type(data).__name__}"
                )
            item_type = args[0] if args else None
            items = [self._decode(item, item_type) for item in data]
            if origin is list:
                return items
            if origin is tuple:
                return tuple(items)
            return origin(items)
        if origin is dict:
            if not isinstance(data, dict):
                raise DeserializationError(
                    f"expected a JSON object for {target}, got {type(data).__name__}"
                )
            value_type = args[1] if len(args) == 2 else None
            return {key: self._decode(value, value_type) for key, value in data.items()}
        if origin is typing.Union:
            # Optional[X] and friends: try each arm, None passes through.
            if data is None:
                return None
            for arm in args:
                if arm is type(None):
                    continue
                try:
                    return self._decode(data, arm)
                except DeserializationError:
                    continue
            raise DeserializationError(f"no Union arm of {target} matched")
        return data

    @staticmethod
    def _decode_primitive(data: Any, target: type) -> Any:
        if target is float and isinstance(data, int):
            return float(data)
        if target is type(None):
            if data is not None:
                raise DeserializationError(f"expected null, got {data!r}")
            return None
        if not isinstance(data, target) or (
            target is not bool and isinstance(data, bool)
        ):
            raise DeserializationError(
                f"expected {target.__name__}, got {type(data).__name__}"
            )
        return data

    def _decode_object(self, data: Any, cls: type) -> Any:
        if not isinstance(data, dict):
            raise DeserializationError(
                f"expected a JSON object for {cls.__name__}, got {type(data).__name__}"
            )
        try:
            instance = object.__new__(cls)
        except TypeError as exc:
            raise DeserializationError(f"cannot instantiate {cls.__name__}: {exc}") from exc
        annotations = annotated_fields(cls)
        for name, value in data.items():
            field_type = annotations.get(name)
            setattr(instance, name, self._decode(value, field_type))
        return instance
