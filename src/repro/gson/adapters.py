"""Type adapters: custom JSON representations for specific classes."""

from __future__ import annotations

import base64
from typing import Any, Generic, Type, TypeVar

T = TypeVar("T")


class TypeAdapter(Generic[T]):
    """Convert instances of one class to/from JSON-able values.

    Subclass and override both methods, then register the adapter on a
    :class:`~repro.gson.gson.Gson` instance.
    """

    def __init__(self, target_class: Type[T]) -> None:
        self.target_class = target_class

    def to_jsonable(self, value: T) -> Any:
        raise NotImplementedError

    def from_jsonable(self, data: Any) -> T:
        raise NotImplementedError


class BytesAdapter(TypeAdapter[bytes]):
    """``bytes`` as base64 text (GSON itself has no native byte-string type)."""

    def __init__(self) -> None:
        super().__init__(bytes)

    def to_jsonable(self, value: bytes) -> str:
        return base64.b64encode(value).decode("ascii")

    def from_jsonable(self, data: Any) -> bytes:
        return base64.b64decode(str(data))
