"""The WiFi-sharing application, handcrafted on the raw Android NFC API.

Functionally equivalent to :class:`repro.apps.wifi.morena_app.WifiJoinerActivity`
(same wire format, same user stories: join by tag, share via empty tag,
save a modified config, beam to a nearby phone, join from a beam) but
written the way the Android documentation tells you to:

* every tag operation runs on a hand-managed worker thread, with results
  posted back to the main looper;
* every operation is wrapped in exception handling for the tag-lost /
  out-of-range / capacity / read-only cases, reporting to the user --
  there is **no automatic retry**: when a write fails because the hand
  drifted, the user must tap again (the behavioural difference section 4
  calls out);
* the JSON and NDEF conversions are written out by hand, twice (one per
  direction);
* all event handling goes through intents in the activity.

Every RFID-related line carries a Figure 2 region annotation. The paper
counted 197 such lines in its Java version; the Python one is naturally
denser, but the per-subproblem *shape* is what the evaluation reproduces.
"""

from __future__ import annotations

import json
import threading
from typing import List, Optional

from repro.android.activity import Activity
from repro.android.intents import (
    ACTION_NDEF_DISCOVERED,
    ACTION_TECH_DISCOVERED,
    EXTRA_NDEF_MESSAGES,
    EXTRA_TAG,
    Intent,
    IntentFilter,
)
from repro.android.nfc.tech import Ndef, NdefFormatable, Tag
from repro.apps.wifi.wifi_manager import WifiManager, WifiNetworkRegistry
from repro.errors import (
    BeamError,
    NotInFieldError,
    TagCapacityError,
    TagFormatError,
    TagLostError,
    TagReadOnlyError,
)
from repro.ndef.message import NdefMessage
from repro.ndef.record import NdefRecord, Tnf

WIFI_MIME_TYPE = "application/vnd.morena.wificonfig"


class WifiConfigData:
    """Plain credentials holder (no middleware, no magic)."""

    def __init__(self, ssid: str, key: str) -> None:
        self.ssid = ssid
        self.key = key

    def connect(self, wifi_manager: WifiManager) -> bool:
        return wifi_manager.connect(self.ssid, self.key)


class HandcraftedWifiActivity(Activity):
    """The baseline activity: everything by hand."""

    def __init__(self, device, registry: WifiNetworkRegistry) -> None:
        super().__init__(device)
        self.wifi = WifiManager(registry)
        self.pending_share: Optional[WifiConfigData] = None
        self.last_config: Optional[WifiConfigData] = None
        # @rfid: concurrency
        self.last_tag: Optional[Tag] = None
        self._tag_lock = threading.Lock()
        self._workers: List[threading.Thread] = []
        self._workers_lock = threading.Lock()
        # @rfid: end

    # ------------------------------------------------------------------
    # Event handling: intents in, dispatch by action and payload
    # ------------------------------------------------------------------

    # @rfid: event-handling
    def on_create(self) -> None:
        self.enable_foreground_dispatch(
            [
                IntentFilter(ACTION_NDEF_DISCOVERED, WIFI_MIME_TYPE),
                IntentFilter(ACTION_TECH_DISCOVERED),
            ]
        )

    def on_new_intent(self, intent: Intent) -> None:
        if intent.is_beam:
            messages = intent.get_extra(EXTRA_NDEF_MESSAGES)
            if messages:
                self._handle_received_beam(messages[0])
            return
        tag = intent.get_extra(EXTRA_TAG)
        if tag is None:
            return
        if intent.action == ACTION_NDEF_DISCOVERED:
            with self._tag_lock:
                self.last_tag = tag
            self._start_read(tag)
        elif intent.action == ACTION_TECH_DISCOVERED:
            with self._tag_lock:
                self.last_tag = tag
            if self.pending_share is not None:
                self._start_write(tag, self.pending_share, initializing=True)
    # @rfid: end

    # @rfid: event-handling
    def _handle_received_beam(self, message: NdefMessage) -> None:
    # @rfid: end
    # @rfid: data-conversion
        try:
            config = self._ndef_message_to_config(message)
    # @rfid: end
    # @rfid: failure-handling
        except (ValueError, KeyError) as exc:
            self.toast(f"Received malformed WiFi joiner ({exc}), ask to re-beam.")
            return
    # @rfid: end
        self._apply_config(config)

    def _apply_config(self, config: WifiConfigData) -> None:
        """Join the network in ``config`` (application logic)."""
        self.last_config = config
        self.toast(f"Joining Wifi network {config.ssid}")
        if not config.connect(self.wifi):
            self.toast(f"Could not join {config.ssid}")

    # ------------------------------------------------------------------
    # Reading: worker thread + blocking tech I/O + manual conversion
    # ------------------------------------------------------------------

    # @rfid: concurrency
    def _start_read(self, tag: Tag) -> None:
        # Tag I/O blocks; the docs say: never on the main thread.
        worker = threading.Thread(
            target=self._read_tag_worker,
            args=(tag,),
            name="wifi-read-worker",
            daemon=True,
        )
        with self._workers_lock:
            self._workers.append(worker)
        worker.start()

    def _read_tag_worker(self, tag: Tag) -> None:
    # @rfid: end
    # @rfid: read-write
        ndef = Ndef.get(tag)
    # @rfid: end
    # @rfid: failure-handling
        if ndef is None:
            self.run_on_ui_thread(
                lambda: self.toast("This tag is not NDEF formatted.")
            )
            return
    # @rfid: end
    # @rfid: read-write
        try:
            ndef.connect()
            try:
                message = ndef.get_ndef_message()
            finally:
                ndef.close()
    # @rfid: end
    # @rfid: failure-handling
        except TagLostError:
            self.run_on_ui_thread(
                lambda: self.toast("Tag lost while reading, tap again.")
            )
            return
        except NotInFieldError:
            self.run_on_ui_thread(
                lambda: self.toast("Tag out of range, tap again.")
            )
            return
        except TagFormatError:
            self.run_on_ui_thread(
                lambda: self.toast("Tag data is corrupt, rewrite it.")
            )
            return
    # @rfid: end
    # @rfid: data-conversion
        try:
            config = self._ndef_message_to_config(message)
    # @rfid: end
    # @rfid: failure-handling
        except (ValueError, KeyError):
            self.run_on_ui_thread(
                lambda: self.toast("Tag does not hold WiFi credentials.")
            )
            return
    # @rfid: end
    # @rfid: concurrency
        # Results must be applied on the main thread (UI access).
        self.run_on_ui_thread(lambda: self._apply_config(config))
    # @rfid: end

    # ------------------------------------------------------------------
    # Writing: worker thread + format-if-blank + blocking write
    # ------------------------------------------------------------------

    # @rfid: concurrency
    def _start_write(
        self, tag: Tag, config: WifiConfigData, initializing: bool
    ) -> None:
        worker = threading.Thread(
            target=self._write_tag_worker,
            args=(tag, config, initializing),
            name="wifi-write-worker",
            daemon=True,
        )
        with self._workers_lock:
            self._workers.append(worker)
        worker.start()

    def _write_tag_worker(
        self, tag: Tag, config: WifiConfigData, initializing: bool
    ) -> None:
    # @rfid: end
    # @rfid: data-conversion
        message = self._config_to_ndef_message(config)
    # @rfid: end
    # @rfid: read-write
        ndef = Ndef.get(tag)
        try:
            if ndef is None:
                formatable = NdefFormatable.get(tag)
                if formatable is None:
                    raise TagFormatError("tag supports neither Ndef nor formatting")
                formatable.connect()
                try:
                    formatable.format(message)
                finally:
                    formatable.close()
            else:
                ndef.connect()
                try:
                    ndef.write_ndef_message(message)
                finally:
                    ndef.close()
    # @rfid: end
    # @rfid: failure-handling
        except TagLostError:
            self.run_on_ui_thread(
                lambda: self.toast("Tag lost while writing, tap again to retry.")
            )
            return
        except NotInFieldError:
            self.run_on_ui_thread(
                lambda: self.toast("Tag out of range, tap again to retry.")
            )
            return
        except TagCapacityError:
            self.run_on_ui_thread(
                lambda: self.toast("Credentials too large for this tag.")
            )
            return
        except TagReadOnlyError:
            self.run_on_ui_thread(
                lambda: self.toast("This tag is locked and cannot be written.")
            )
            return
        except TagFormatError:
            self.run_on_ui_thread(
                lambda: self.toast("Tag could not be formatted, tap again.")
            )
            return
    # @rfid: end
    # @rfid: concurrency
        def report_success() -> None:
            if initializing:
                self.pending_share = None
                self.toast("WiFi joiner created!")
            else:
                self.toast("WiFi joiner saved!")

        self.run_on_ui_thread(report_success)
    # @rfid: end

    # ------------------------------------------------------------------
    # User actions (buttons in a real UI)
    # ------------------------------------------------------------------

    def share_with_tag(self, config: WifiConfigData) -> None:
        """Arm the app: the next empty tag scanned receives ``config``."""
        self.pending_share = config

    def rename_network(self, config: WifiConfigData, ssid: str, key: str) -> None:
        config.ssid = ssid
        config.key = key
    # @rfid: failure-handling
        with self._tag_lock:
            tag = self.last_tag
        if tag is None:
            self.toast("No tag in reach; tap the tag to save.")
            return
    # @rfid: end
    # @rfid: read-write
        self._start_write(tag, config, initializing=False)
    # @rfid: end

    def share_with_phone(self, config: WifiConfigData) -> None:
    # @rfid: concurrency
        worker = threading.Thread(
            target=self._beam_worker,
            args=(config,),
            name="wifi-beam-worker",
            daemon=True,
        )
        with self._workers_lock:
            self._workers.append(worker)
        worker.start()

    def _beam_worker(self, config: WifiConfigData) -> None:
    # @rfid: end
    # @rfid: data-conversion
        message = self._config_to_ndef_message(config)
    # @rfid: end
    # @rfid: read-write
        try:
            self.device.nfc_adapter.push_now(message)
    # @rfid: end
    # @rfid: failure-handling
        except BeamError:
            self.run_on_ui_thread(
                lambda: self.toast("No phone nearby; bring the phones together.")
            )
            return
        except TagLostError:
            self.run_on_ui_thread(
                lambda: self.toast("Beam interrupted, try again.")
            )
            return
    # @rfid: end
    # @rfid: concurrency
        self.run_on_ui_thread(lambda: self.toast("WiFi joiner shared!"))
    # @rfid: end

    # ------------------------------------------------------------------
    # Manual data conversion: JSON <-> NDEF, both directions, by hand
    # ------------------------------------------------------------------

    # @rfid: data-conversion
    @staticmethod
    def _config_to_ndef_message(config: WifiConfigData) -> NdefMessage:
        payload = json.dumps(
            {"ssid": config.ssid, "key": config.key},
            sort_keys=True,
        ).encode("utf-8")
        record = NdefRecord(
            Tnf.MIME_MEDIA,
            WIFI_MIME_TYPE.encode("ascii"),
            b"",
            payload,
        )
        return NdefMessage([record])

    @staticmethod
    def _ndef_message_to_config(message: NdefMessage) -> WifiConfigData:
        if not len(message):
            raise ValueError("empty NDEF message")
        record = message[0]
        if record.tnf != Tnf.MIME_MEDIA:
            raise ValueError("first record is not a MIME record")
        if record.type.decode("ascii", "replace") != WIFI_MIME_TYPE:
            raise ValueError("record does not hold WiFi credentials")
        data = json.loads(record.payload.decode("utf-8"))
        ssid = data["ssid"]
        key = data["key"]
        if not isinstance(ssid, str) or not isinstance(key, str):
            raise ValueError("ssid and key must be strings")
        return WifiConfigData(ssid=ssid, key=key)
    # @rfid: end

    # ------------------------------------------------------------------
    # Worker hygiene
    # ------------------------------------------------------------------

    # @rfid: concurrency
    def join_workers(self, timeout: float = 5.0) -> None:
        """Wait for in-flight tag workers (needed for orderly teardown)."""
        with self._workers_lock:
            workers = list(self._workers)
        for worker in workers:
            worker.join(timeout)

    def on_destroy(self) -> None:
        self.join_workers()
        super().on_destroy()
    # @rfid: end
