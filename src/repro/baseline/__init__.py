"""The handcrafted baseline: the WiFi-sharing app on the bare NFC API.

This is the paper's comparison subject (section 4): the same application
as :mod:`repro.apps.wifi.morena_app`, written directly against the
simulated Android NFC API with all four of its drawbacks in play --
blocking I/O on worker threads, per-operation exception handling, manual
NDEF/JSON conversion, and intent plumbing in the activity.
"""

from repro.baseline.handcrafted_wifi import HandcraftedWifiActivity, WifiConfigData

__all__ = ["HandcraftedWifiActivity", "WifiConfigData"]
