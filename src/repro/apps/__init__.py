"""Demo applications built on the reproduction.

``repro.apps.wifi`` is the paper's running example and evaluation subject:
the WiFi-sharing application, in a MORENA version and (under
``repro.baseline``) a handcrafted version against the raw NFC API.
"""
