"""Standards interop: joining from WSC / Connection-Handover tags.

The MORENA WiFi app stores credentials in its own thing format; real
routers ship NFC stickers in the NFC Forum static-handover format with a
WiFi Simple Config carrier. :class:`WscWifiJoinerActivity` extends the
paper's application with a *second* ``TagDiscoverer`` for those tags --
demonstrating the multi-discoverer capability the paper highlights ("a
single activity can use multiple TagDiscoverers ... all with their
separate data conversion strategies").
"""

from __future__ import annotations

from typing import Any

from repro.apps.wifi.morena_app import WifiJoinerActivity
from repro.core.converters import (
    NdefMessageToObjectConverter,
    ObjectToNdefMessageConverter,
)
from repro.core.discovery import TagDiscoverer
from repro.core.reference import TagReference
from repro.errors import ConverterError, NdefError
from repro.ndef.handover import CPS_ACTIVE, build_handover_select, parse_handover_select
from repro.ndef.message import NdefMessage
from repro.ndef.mime import record_mime_type
from repro.ndef.record import NdefRecord, Tnf
from repro.ndef.wsc import WSC_MIME_TYPE, WifiCredential


class WscReadConverter(NdefMessageToObjectConverter):
    """NDEF -> :class:`WifiCredential`, from bare WSC or handover tags."""

    def convert(self, message: NdefMessage) -> WifiCredential:
        try:
            if message[0].tnf == Tnf.WELL_KNOWN and message[0].type == b"Hs":
                parsed = parse_handover_select(message)
                for record in parsed.carrier_records():
                    if record_mime_type(record) == WSC_MIME_TYPE:
                        return WifiCredential.from_record(record)
                raise ConverterError("handover tag offers no WiFi carrier")
            for record in message:
                if record_mime_type(record) == WSC_MIME_TYPE:
                    return WifiCredential.from_record(record)
            raise ConverterError("message holds no WSC record")
        except NdefError as exc:
            raise ConverterError(f"malformed WSC/handover tag: {exc}") from exc


class WscWriteConverter(ObjectToNdefMessageConverter):
    """:class:`WifiCredential` -> a static-handover message with one carrier."""

    def convert(self, obj: Any) -> NdefMessage:
        if not isinstance(obj, WifiCredential):
            raise ConverterError(
                f"expected WifiCredential, got {type(obj).__name__}"
            )
        bare = obj.to_record()
        carrier = NdefRecord(bare.tnf, bare.type, b"0", bare.payload)
        return build_handover_select([(carrier, CPS_ACTIVE)])


class _WscDiscoverer(TagDiscoverer):
    def __init__(self, activity: "WscWifiJoinerActivity") -> None:
        self._joiner = activity
        super().__init__(
            activity,
            WSC_MIME_TYPE,
            WscReadConverter(),
            WscWriteConverter(),
        )

    def on_tag_detected(self, reference: TagReference) -> None:
        self._joiner.join_from_credential(reference.cached)

    def on_tag_redetected(self, reference: TagReference) -> None:
        self._joiner.join_from_credential(reference.cached)


class WscWifiJoinerActivity(WifiJoinerActivity):
    """The paper's app, plus interop with standards-format router tags."""

    def __init__(self, device, registry) -> None:
        super().__init__(device, registry)
        self._wsc_discoverer = _WscDiscoverer(self)

    def join_from_credential(self, credential: WifiCredential) -> None:
        self.toast(f"Joining Wifi network {credential.ssid} (WSC tag)")
        if not self.wifi.connect(credential.ssid, credential.key):
            self.toast(f"Could not join {credential.ssid}")


def router_sticker(ssid: str, key: str, **kwargs) -> NdefMessage:
    """The message a router's NFC sticker carries (static handover + WSC)."""
    return WscWriteConverter().convert(WifiCredential(ssid=ssid, key=key, **kwargs))
