"""The WiFi-sharing application, MORENA version (paper sections 2.2-2.5).

Every RFID-related line is bracketed by flat ``# @rfid: <category>``
region markers for the Figure 2 LoC accounting. Note what is *absent*
compared to :mod:`repro.baseline.handcrafted_wifi`: no intents, no
threads, no try/except around tag I/O, no NDEF or JSON handling -- the
middleware owns all of it. In particular there is not a single line in
the ``concurrency`` category.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.wifi.config import WifiConfig
from repro.apps.wifi.wifi_manager import WifiManager, WifiNetworkRegistry
from repro.things.activity import ThingActivity
from repro.things.empty import EmptyRecord


class WifiJoinerActivity(ThingActivity):
    """Swipe a credentials tag to join; swipe an empty tag to share."""

    THING_CLASS = WifiConfig

    def __init__(self, device, registry: WifiNetworkRegistry) -> None:
        super().__init__(device)
        self.wifi = WifiManager(registry)
        self.pending_share: Optional[WifiConfig] = None
        self.last_config: Optional[WifiConfig] = None

    # -- joining: a credentials tag (or a beamed config) was discovered ----------

    # @rfid: event-handling
    def when_discovered(self, thing: WifiConfig) -> None:
        self.last_config = thing
    # @rfid: end
        self.toast(f"Joining Wifi network {thing.ssid}")
        if not thing.connect(self.wifi):
            self.toast(f"Could not join {thing.ssid}")

    # -- sharing: an empty tag was discovered while a share is pending ------------

    # @rfid: event-handling
    def when_discovered_empty(self, empty: EmptyRecord) -> None:
        if self.pending_share is None:
            return
    # @rfid: end
    # @rfid: read-write
        empty.initialize(
            self.pending_share,
    # @rfid: end
    # @rfid: event-handling
            on_saved=self._on_joiner_created,
    # @rfid: end
    # @rfid: failure-handling
            on_save_failed=self._on_joiner_failed,
    # @rfid: end
    # @rfid: read-write
        )
    # @rfid: end

    # @rfid: event-handling
    def _on_joiner_created(self, thing: WifiConfig) -> None:
        self.pending_share = None
    # @rfid: end
        self.toast("WiFi joiner created!")

    # @rfid: failure-handling
    def _on_joiner_failed(self) -> None:
    # @rfid: end
        self.toast("Creating WiFi joiner failed, try again.")

    # -- saving a modified config back to its tag (section 2.4) ---------------------

    def rename_network(self, config: WifiConfig, ssid: str, key: str) -> None:
        config.ssid = ssid
        config.key = key
    # @rfid: read-write
        config.save_async(
    # @rfid: end
    # @rfid: event-handling
            on_saved=self._on_joiner_saved,
    # @rfid: end
    # @rfid: failure-handling
            on_failed=self._on_save_failed,
    # @rfid: end
    # @rfid: read-write
        )
    # @rfid: end

    # @rfid: event-handling
    def _on_joiner_saved(self, thing: WifiConfig) -> None:
    # @rfid: end
        self.toast("WiFi joiner saved!")

    # @rfid: failure-handling
    def _on_save_failed(self) -> None:
    # @rfid: end
        self.toast("Saving WiFi joiner failed, try again.")

    # -- broadcasting over Beam (section 2.5) ------------------------------------------

    def share_with_phone(self, config: WifiConfig) -> None:
    # @rfid: read-write
        config.broadcast(
    # @rfid: end
    # @rfid: event-handling
            on_success=self._on_joiner_shared,
    # @rfid: end
    # @rfid: failure-handling
            on_failed=self._on_share_failed,
    # @rfid: end
    # @rfid: read-write
        )
    # @rfid: end

    # @rfid: event-handling
    def _on_joiner_shared(self, thing: WifiConfig) -> None:
    # @rfid: end
        self.toast("WiFi joiner shared!")

    # @rfid: failure-handling
    def _on_share_failed(self, thing: WifiConfig) -> None:
    # @rfid: end
        self.toast("Failed to share WiFi joiner, try again.")

    # -- sharing via a tag: arm the next empty tap ------------------------------------------

    def share_with_tag(self, config: WifiConfig) -> None:
        """Arm the app: the next empty tag scanned receives ``config``."""
        self.pending_share = config
