"""A simulated WiFi subsystem.

Stands in for ``android.net.wifi.WifiManager``: a registry of access
points (shared across the simulated world) and a per-device manager that
connects with SSID + key. Both app versions call ``connect``; the
evaluation only cares that the call exists and succeeds/fails
deterministically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class WifiNetwork:
    """One access point."""

    ssid: str
    key: str


class WifiNetworkRegistry:
    """The access points that exist in the simulated world."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._networks: Dict[str, WifiNetwork] = {}

    def add_network(self, ssid: str, key: str) -> WifiNetwork:
        network = WifiNetwork(ssid=ssid, key=key)
        with self._lock:
            self._networks[ssid] = network
        return network

    def remove_network(self, ssid: str) -> None:
        with self._lock:
            self._networks.pop(ssid, None)

    def lookup(self, ssid: str) -> Optional[WifiNetwork]:
        with self._lock:
            return self._networks.get(ssid)

    def ssids(self) -> List[str]:
        with self._lock:
            return sorted(self._networks)


class WifiManager:
    """One device's WiFi radio."""

    def __init__(self, registry: WifiNetworkRegistry) -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self._connected: Optional[WifiNetwork] = None
        self.connection_attempts = 0

    def connect(self, ssid: str, key: str) -> bool:
        """Try to join ``ssid``; returns whether the connection succeeded."""
        with self._lock:
            self.connection_attempts += 1
        network = self._registry.lookup(ssid)
        if network is None or network.key != key:
            return False
        with self._lock:
            self._connected = network
        return True

    def disconnect(self) -> None:
        with self._lock:
            self._connected = None

    @property
    def connected_ssid(self) -> Optional[str]:
        with self._lock:
            return self._connected.ssid if self._connected else None

    @property
    def is_connected(self) -> bool:
        return self.connected_ssid is not None
