"""The ``WifiConfig`` thing (paper section 2.1)."""

from __future__ import annotations

from repro.apps.wifi.wifi_manager import WifiManager
from repro.things.thing import Thing


class WifiConfig(Thing):
    """Credentials for one WiFi network, storable on an RFID tag.

    Mirrors the paper's class: two public fields (serialized
    automatically -- neither is transient) and a ``connect`` method that
    joins the network. The paper's trailing-underscore Java fields
    (``ssid_``, ``key_``) become plain Python attributes; leading
    underscores would mark them internal and unserialized.
    """

    # @rfid: data-conversion
    ssid: str
    key: str
    # @rfid: end

    def __init__(self, activity, ssid: str, key: str) -> None:
        super().__init__(activity)
        self.ssid = ssid
        self.key = key

    def connect(self, wifi_manager: WifiManager) -> bool:
        """Join the network described by this config (application logic)."""
        return wifi_manager.connect(self.ssid, self.key)
