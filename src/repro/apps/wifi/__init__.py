"""The WiFi-sharing application (paper sections 2 and 4).

Guests join a facility's WiFi by swiping their phone over an RFID tag
holding the network credentials, or by receiving the credentials from
another phone over Beam. Two implementations exist:

* :mod:`repro.apps.wifi.morena_app` -- built on MORENA's thing layer
  (the paper's sections 2.1-2.5 verbatim, in Python);
* :mod:`repro.baseline.handcrafted_wifi` -- built directly on the
  simulated Android NFC API, with manual threads, retries and conversion.

Both share the :mod:`repro.apps.wifi.wifi_manager` substrate (a simulated
WiFi subsystem) so the evaluation compares only the RFID plumbing.
"""

from repro.apps.wifi.config import WifiConfig
from repro.apps.wifi.morena_app import WifiJoinerActivity
from repro.apps.wifi.wifi_manager import WifiManager, WifiNetwork, WifiNetworkRegistry

__all__ = [
    "WifiConfig",
    "WifiJoinerActivity",
    "WifiManager",
    "WifiNetwork",
    "WifiNetworkRegistry",
]
