"""Command-line front end.

::

    python -m repro.cli fig2              # print the Figure 2 reproduction
    python -m repro.cli demo wifi         # run the WiFi-sharing scenario
    python -m repro.cli demo beam         # phone-to-phone Beam demo
    python -m repro.cli tagdump           # write a tag and hexdump its memory
    python -m repro.cli tagdump --type NTAG213 --text "hello"
    python -m repro.cli lint src examples # run the morelint misuse linter
    python -m repro.cli fuzz --seed 7 --iterations 500 --corpus tests/ndef/corpus
    python -m repro.cli gateway --devices 200 --tags 1000 --shards 4

Everything runs against the in-process simulation; no hardware, no
network, no state outside the current directory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_fig2(_args: argparse.Namespace) -> int:
    import repro.apps.wifi.config as morena_config
    import repro.apps.wifi.morena_app as morena_app
    import repro.baseline.handcrafted_wifi as handcrafted
    from repro.metrics.loc import compare_implementations

    comparison = compare_implementations(
        [handcrafted], [morena_app, morena_config]
    )
    print(comparison.format_table())
    return 0


def _cmd_demo_wifi(_args: argparse.Namespace) -> int:
    from repro.apps.wifi import WifiConfig, WifiJoinerActivity
    from repro.concurrent import wait_until
    from repro.harness import Scenario

    with Scenario() as scenario:
        scenario.wifi_registry.add_network("LobbyWifi", "welcome123")
        facility = scenario.add_phone("facility")
        guest = scenario.add_phone("guest")
        facility_app = scenario.start(
            facility, WifiJoinerActivity, scenario.wifi_registry
        )
        guest_app = scenario.start(guest, WifiJoinerActivity, scenario.wifi_registry)

        tag = scenario.add_tag()
        facility_app.share_with_tag(
            WifiConfig(facility_app, "LobbyWifi", "welcome123")
        )
        print("facility taps an empty tag ...")
        scenario.put(tag, facility)
        if not wait_until(
            lambda: "WiFi joiner created!" in facility.toasts.snapshot()
        ):
            print("ERROR: joiner was not created", file=sys.stderr)
            return 1
        scenario.take(tag, facility)
        print("  toast:", facility.toasts.snapshot()[-1])

        print("guest taps the tag ...")
        scenario.put(tag, guest)
        if not wait_until(lambda: guest_app.wifi.connected_ssid == "LobbyWifi"):
            print("ERROR: guest did not join", file=sys.stderr)
            return 1
        print("  guest connected to:", guest_app.wifi.connected_ssid)
        return 0


def _cmd_demo_beam(_args: argparse.Namespace) -> int:
    from repro.concurrent import EventLog
    from repro.core import (
        Beamer,
        BeamReceivedListener,
        NFCActivity,
        NdefMessageToStringConverter,
        StringToNdefMessageConverter,
    )
    from repro.harness import Scenario

    mime = "application/x-cli-beam"

    class Receiver(NFCActivity):
        def on_create(self):
            self.inbox = EventLog()
            app = self

            class Listener(BeamReceivedListener):
                def on_beam_received_from(self, obj, sender):
                    app.inbox.append(f"{sender}: {obj}")

            Listener(self, mime, NdefMessageToStringConverter())

    class Sender(NFCActivity):
        def on_create(self):
            self.beamer = Beamer(self, StringToNdefMessageConverter(mime))

    with Scenario() as scenario:
        alice = scenario.add_phone("alice")
        bob = scenario.add_phone("bob")
        sender = scenario.start(alice, Sender)
        receiver = scenario.start(bob, Receiver)
        sender.beamer.beam("hello from the command line")
        print("message queued; phones touch ...")
        scenario.pair(alice, bob)
        if not receiver.inbox.wait_for_count(1, timeout=5):
            print("ERROR: beam not delivered", file=sys.stderr)
            return 1
        print("  bob received:", receiver.inbox.snapshot()[0])
        return 0


def _cmd_demo_handover(_args: argparse.Namespace) -> int:
    from repro.harness import Scenario
    from repro.ndef.handover import CPS_ACTIVE, build_handover_select
    from repro.ndef.record import NdefRecord
    from repro.ndef.wsc import WSC_MIME_TYPE, WifiCredential

    with Scenario() as scenario:
        asker = scenario.add_phone("asker")
        sharer = scenario.add_phone("sharer")

        def responder(request, sender):
            if WSC_MIME_TYPE not in request.requested_mime_types:
                return None
            bare = WifiCredential("HomeNet", "home-key").to_record()
            carrier = NdefRecord(bare.tnf, bare.type, b"w", bare.payload)
            return build_handover_select([(carrier, CPS_ACTIVE)])

        sharer.nfc_adapter.set_handover_responder(responder)
        scenario.pair(asker, sharer)
        print("asker requests a WiFi carrier over negotiated handover ...")
        answers = asker.nfc_adapter.request_handover([WSC_MIME_TYPE])
        if not answers:
            print("ERROR: no peer answered", file=sys.stderr)
            return 1
        peer, select = answers[0]
        credential = WifiCredential.from_record(select.carrier_records()[0])
        print(f"  {peer} offered ssid={credential.ssid!r} (auth {credential.auth})")
        return 0


def _cmd_tagdump(args: argparse.Namespace) -> int:
    from repro.ndef import NdefMessage, mime_record
    from repro.tags import make_tag

    message = NdefMessage(
        [mime_record("text/plain", args.text.encode("utf-8"))]
    )
    tag = make_tag(args.type, content=message)
    print(f"tag: {tag.tag_type.name}  uid={tag.uid_hex}")
    print(f"capacity: {tag.ndef_capacity} bytes, stored: {message.byte_length} bytes")
    dump = tag.raw_dump()
    shown = dump[: args.bytes]
    for offset in range(0, len(shown), 16):
        chunk = shown[offset : offset + 16]
        hex_part = " ".join(f"{b:02x}" for b in chunk)
        text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        print(f"  {offset:04x}  {hex_part:<48}  {text}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import main as lint_main

    argv: List[str] = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.no_hints:
        argv.append("--no-hints")
    if args.fix:
        argv.append("--fix")
    if args.format != "text":
        argv += ["--format", args.format]
    if args.output:
        argv += ["--output", args.output]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.jobs != "auto":
        argv += ["--jobs", args.jobs]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.harness.fuzz import fuzz, load_corpus_dir, replay_corpus, save_case

    failed = False
    if args.corpus:
        entries = load_corpus_dir(args.corpus)
        if entries:
            replay = replay_corpus(entries)
            print(
                f"corpus: {replay.iterations} committed inputs, "
                f"{len(replay.crashes)} crash"
                + ("es" if len(replay.crashes) != 1 else "")
            )
            for crash in replay.crashes:
                print("  " + crash.describe(), file=sys.stderr)
            failed = failed or not replay.ok
        else:
            print(f"corpus: no .hex files under {args.corpus}")

    report = fuzz(iterations=args.iterations, seed=args.seed)
    print(report.summary() if args.verbose else report.summary().splitlines()[0])
    if not report.ok:
        for crash in report.crashes:
            print("  " + crash.describe(), file=sys.stderr)
        if args.save_crashes:
            for crash in report.crashes:
                path = save_case(args.save_crashes, crash)
                print(f"  saved {path}", file=sys.stderr)
    failed = failed or not report.ok
    return 1 if failed else 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    from repro.clock import ManualClock
    from repro.core.scheduler import Reactor
    from repro.gateway import FleetGateway, make_fleet_reporters, simulate_fleet
    from repro.harness.crowd import fleet_day

    clock = ManualClock()
    reactor = Reactor(clock=clock, name="gateway", mode=args.backend)
    gateway = FleetGateway(
        reactor,
        clock=clock,
        shards=args.shards,
        window_seconds=args.window,
        bucket_seconds=max(args.window / 12.0, 0.25),
    )
    schedule = fleet_day(args.devices, args.tags, seed=args.seed)
    reporters = make_fleet_reporters(gateway, args.devices)
    print(
        f"fleet: {args.devices} devices, {args.tags} tags, "
        f"{args.shards} shard(s) on the {args.backend} reactor"
    )
    print(f"schedule: {schedule!r}")

    def tick(now: float) -> None:
        gateway.drain()
        telemetry = gateway.telemetry()
        rates = gateway.station_rates(now)
        busiest = sorted(
            rates.items(), key=lambda item: -item[1]["windowed"]
        )[:3]
        stations = "  ".join(
            f"{name}={row['rate_per_second']:.1f}/s" for name, row in busiest
        )
        print(
            f"[t={now:7.2f}s] ingested={telemetry['events_ingested']:>7}"
            f" dropped={telemetry['events_dropped_queue']}"
            f" depth={telemetry['queue_depth']:>4}"
            f"  busiest: {stations or '(quiet)'}"
        )

    try:
        stats = simulate_fleet(
            gateway,
            schedule,
            reporters=reporters,
            seed=args.seed,
            on_tick=tick,
            tick_seconds=args.tick,
        )
        if not gateway.drain():
            print("ERROR: gateway did not drain", file=sys.stderr)
            return 1
        snapshot = gateway.snapshot(top=5)
        print(
            f"\nreplay: {stats.events_recorded} events"
            f" ({stats.scans} scans, {stats.saves} saves,"
            f" {stats.lease_events} lease) over"
            f" {stats.virtual_seconds:.1f} virtual seconds"
        )
        telemetry = snapshot.telemetry
        print(
            f"ingested {telemetry['events_ingested']} in"
            f" {telemetry['batches']} batches;"
            f" dropped: queue={telemetry['events_dropped_queue']}"
            f" reporter={telemetry['events_dropped_reporter']}"
            f" | queue high-water {telemetry['queue_high_water']}"
        )
        print("\nbusiest stations (sliding window):")
        ranked = sorted(
            snapshot.station_rates.items(), key=lambda item: -item[1]["total"]
        )
        for name, row in ranked[:5]:
            print(
                f"  {name:<14} total={row['total']:>6}"
                f"  window={row['windowed']:>5}"
                f"  rate={row['rate_per_second']:.2f}/s"
            )
        print("\nlease contention leaderboard:")
        if snapshot.lease_leaderboard:
            for row in snapshot.lease_leaderboard:
                print(
                    f"  {row['tag_uid']:<12} denied={row['denied']:>4}"
                    f"  acquired={row['acquired']:>4}"
                )
            hot = snapshot.lease_leaderboard[0]["tag_uid"]
            travel = gateway.travel_history(hot)
            if travel is not None:
                path = " -> ".join(station for station, _at in travel["path"][-6:])
                print(
                    f"\ntravel history for {hot}:"
                    f" {travel['scans']} scans,"
                    f" {travel['transitions']} transitions; tail: {path}"
                )
        else:
            print("  (no lease traffic)")
        return 0
    finally:
        gateway.close()
        reactor.stop()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MORENA reproduction: simulated NFC demos and reports.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig2 = subparsers.add_parser("fig2", help="print the Figure 2 LoC reproduction")
    fig2.set_defaults(handler=_cmd_fig2)

    demo = subparsers.add_parser("demo", help="run a scripted scenario")
    demo.add_argument("scenario", choices=["wifi", "beam", "handover"])
    demo_handlers = {
        "wifi": _cmd_demo_wifi,
        "beam": _cmd_demo_beam,
        "handover": _cmd_demo_handover,
    }
    demo.set_defaults(handler=lambda args: demo_handlers[args.scenario](args))

    tagdump = subparsers.add_parser(
        "tagdump", help="write text to a simulated tag and hexdump its memory"
    )
    tagdump.add_argument("--type", default="NTAG213", help="tag model name")
    tagdump.add_argument("--text", default="hello, MORENA", help="text to store")
    tagdump.add_argument(
        "--bytes", type=int, default=96, help="how many bytes to dump"
    )
    tagdump.set_defaults(handler=_cmd_tagdump)

    lint = subparsers.add_parser(
        "lint", help="run the morelint misuse linter over files or directories"
    )
    lint.add_argument("paths", nargs="*", help="files or directories to lint")
    lint.add_argument("--select", help="comma-separated rule ids to run")
    lint.add_argument(
        "--no-hints", action="store_true", help="omit the autofix hint lines"
    )
    lint.add_argument(
        "--fix", action="store_true", help="apply mechanical fixes in place"
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format",
    )
    lint.add_argument(
        "--output", help="write the json/sarif rendering to this file"
    )
    lint.add_argument(
        "--baseline", help="baseline file of accepted findings"
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="freeze current findings into the baseline file",
    )
    lint.add_argument(
        "--jobs", default="auto", help="worker processes (N, or 'auto')"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lint.set_defaults(handler=_cmd_lint)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="mutate NDEF wire bytes and assert every mutant fails cleanly",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="deterministic RNG seed")
    fuzz.add_argument(
        "--iterations", type=int, default=500, help="number of mutated inputs"
    )
    fuzz.add_argument(
        "--corpus",
        help="directory of committed .hex crash inputs to regression-replay first",
    )
    fuzz.add_argument(
        "--save-crashes",
        help="directory to write new crash inputs into (as .hex files)",
    )
    fuzz.add_argument(
        "--verbose", action="store_true", help="print per-mutation counts"
    )
    fuzz.set_defaults(handler=_cmd_fuzz)

    gateway = subparsers.add_parser(
        "gateway",
        help="run a simulated fleet against the scan-event gateway and "
        "print the live views",
    )
    gateway.add_argument(
        "--devices", type=int, default=100, help="simulated devices (stations)"
    )
    gateway.add_argument(
        "--tags", type=int, default=500, help="tag population size"
    )
    gateway.add_argument(
        "--shards", type=int, default=4, help="ingestion shard count"
    )
    gateway.add_argument(
        "--backend",
        choices=["threaded", "asyncio"],
        default="threaded",
        help="reactor backend the shards drain on",
    )
    gateway.add_argument(
        "--seed", type=int, default=0, help="deterministic RNG seed"
    )
    gateway.add_argument(
        "--window",
        type=float,
        default=3.0,
        help="station throughput window (virtual seconds)",
    )
    gateway.add_argument(
        "--tick",
        type=float,
        default=2.0,
        help="live telemetry print interval (virtual seconds)",
    )
    gateway.set_defaults(handler=_cmd_gateway)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
