"""Injectable time sources.

All MORENA components that deal with timeouts, retry deadlines or leases
take a :class:`Clock` so that tests and benchmarks can substitute a
:class:`ManualClock` and advance time explicitly. Production code defaults
to :class:`SystemClock`.

The clock is deliberately tiny: ``now()`` returning seconds as a float, and
``sleep()``. Components that need to *wait for a condition or a deadline,
whichever comes first* should use a ``threading.Condition`` with a timeout
derived from ``now()`` rather than calling ``sleep()`` in a loop.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Minimal time source protocol."""

    def now(self) -> float:
        """Return the current time in seconds (monotonic)."""
        ...  # pragma: no cover - protocol

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds``."""
        ...  # pragma: no cover - protocol


class SystemClock:
    """Real monotonic wall-clock time."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self) -> str:
        return "SystemClock()"


class ManualClock:
    """A clock that only moves when told to.

    ``sleep()`` on a manual clock advances time immediately instead of
    blocking, which keeps single-threaded simulations deterministic.
    Threads blocked in :meth:`wait_until` are woken whenever
    :meth:`advance` moves time past their deadline.

    Components that keep their own deadline queues (the reactor in
    :mod:`repro.core.scheduler`, :class:`repro.android.looper.Looper`)
    subscribe via :meth:`add_listener` and are notified after every
    :meth:`advance` / :meth:`set`, so time-driven wakeups need no
    real-time polling. Listeners are invoked *outside* the clock's lock
    and must be cheap and non-blocking (typically a condition notify).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._cond = threading.Condition()
        self._listeners: List[Callable[[], None]] = []

    def now(self) -> float:
        with self._cond:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.advance(seconds)

    def add_listener(self, listener: Callable[[], None]) -> None:
        """Subscribe to time advances; called after each advance/set."""
        with self._cond:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[], None]) -> None:
        with self._cond:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def advance(self, seconds: float) -> None:
        """Move time forward and wake any deadline waiters."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        with self._cond:
            self._now += seconds
            self._cond.notify_all()
            listeners = list(self._listeners)
        for listener in listeners:
            listener()

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time (must not move backwards)."""
        with self._cond:
            if timestamp < self._now:
                raise ValueError("cannot move a ManualClock backwards")
            self._now = timestamp
            self._cond.notify_all()
            listeners = list(self._listeners)
        for listener in listeners:
            listener()

    def wait_until(self, deadline: float, real_timeout: float = 5.0) -> bool:
        """Block until the manual time reaches ``deadline``.

        Returns ``True`` if the deadline was reached, ``False`` if
        ``real_timeout`` real seconds elapsed first (a test safety valve).
        """
        end_real = time.monotonic() + real_timeout
        with self._cond:
            while self._now < deadline:
                remaining = end_real - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def __repr__(self) -> str:
        return f"ManualClock(now={self.now():.6f})"


DEFAULT_CLOCK: Clock = SystemClock()
