"""Automatic lease renewal.

A device doing a long interaction with a tag (the paper's example: a
facility updating credentials) should not lose exclusivity mid-work just
because the lease duration was conservative. The :class:`LeaseKeeper`
schedules renewals on the device's main looper at a fraction of the lease
duration, stopping automatically when a renewal is denied (someone else
took over after an expiry) or when asked.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.leasing.manager import LeaseManager

# Renew when this fraction of the lease duration has elapsed.
RENEW_FRACTION = 0.5


class LeaseKeeper:
    """Keeps one :class:`LeaseManager`'s lease alive until stopped."""

    def __init__(
        self,
        manager: LeaseManager,
        duration: float,
        on_lost: Optional[Callable[[], None]] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError("lease duration must be positive")
        self._manager = manager
        self._duration = duration
        self._on_lost = on_lost
        self._looper = manager.reference.activity.device.main_looper
        self._lock = threading.Lock()
        self._running = False
        self.renewal_count = 0

    @property
    def is_running(self) -> bool:
        with self._lock:
            return self._running

    # -- lifecycle --------------------------------------------------------------

    def start(
        self,
        on_acquired: Optional[Callable] = None,
        on_denied: Optional[Callable[[], None]] = None,
    ) -> None:
        """Acquire the lease and begin renewing it."""
        with self._lock:
            if self._running:
                return
            self._running = True

        def acquired(lease) -> None:
            if on_acquired is not None:
                on_acquired(lease)
            self._schedule_renewal()

        def denied() -> None:
            with self._lock:
                self._running = False
            if on_denied is not None:
                on_denied()

        self._manager.acquire(
            self._duration, on_acquired=acquired, on_denied=denied
        )

    def stop(self, release: bool = True) -> None:
        """Stop renewing; optionally release the lease on the tag."""
        with self._lock:
            if not self._running:
                return
            self._running = False
        if release:
            self._manager.release()

    # -- renewal loop -------------------------------------------------------------

    def _schedule_renewal(self) -> None:
        if not self.is_running:
            return
        delay = self._duration * RENEW_FRACTION
        try:
            self._looper.post_delayed(self._renew_now, delay)
        except Exception:  # noqa: BLE001 - looper quit during shutdown
            with self._lock:
                self._running = False

    def _renew_now(self) -> None:
        if not self.is_running:
            return

        def renewed(_lease) -> None:
            self.renewal_count += 1
            self._schedule_renewal()

        def lost() -> None:
            with self._lock:
                self._running = False
            if self._on_lost is not None:
                self._on_lost()

        self._manager.renew(self._duration, on_renewed=renewed, on_failed=lost)
