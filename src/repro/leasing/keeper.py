"""Automatic lease renewal.

A device doing a long interaction with a tag (the paper's example: a
facility updating credentials) should not lose exclusivity mid-work just
because the lease duration was conservative. The :class:`LeaseKeeper`
ticks on the device's main looper at a fraction of the lease duration;
each tick issues one renewal and immediately schedules the next tick.
Ticking is decoupled from renewal *settlement* on purpose: while the tag
is out of range the renewals pile up in the reference queue and
tail-merge (see :meth:`LeaseManager.renew`), so redetection performs one
physical write carrying the latest expiry instead of replaying every
missed beat.

Every scheduled tick carries the *generation* it was issued under; both
:meth:`start` and :meth:`stop` bump the generation, so a tick (or a
renewal callback) from a previous life of the keeper is recognised as
stale and ignored. Without that, a stop-then-start left the old
``post_delayed`` callback armed and a second renewal chain would spawn
alongside the new one, double-counting renewals.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.leasing.manager import LeaseManager

# Renew when this fraction of the lease duration has elapsed.
RENEW_FRACTION = 0.5


class LeaseKeeper:
    """Keeps one :class:`LeaseManager`'s lease alive until stopped."""

    def __init__(
        self,
        manager: LeaseManager,
        duration: float,
        on_lost: Optional[Callable[[], None]] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError("lease duration must be positive")
        self._manager = manager
        self._duration = duration
        self._on_lost = on_lost
        self._looper = manager.reference.activity.device.main_looper
        self._lock = threading.Lock()
        self._running = False
        self._generation = 0
        self._renewal_count = 0

    @property
    def is_running(self) -> bool:
        with self._lock:
            return self._running

    @property
    def renewal_count(self) -> int:
        """Successful renewals across this keeper's lifetime (locked:
        renewal callbacks land on the main thread while tests and
        benchmarks read from theirs)."""
        with self._lock:
            return self._renewal_count

    # -- lifecycle --------------------------------------------------------------

    def start(
        self,
        on_acquired: Optional[Callable] = None,
        on_denied: Optional[Callable[[], None]] = None,
    ) -> None:
        """Acquire the lease and begin renewing it."""
        with self._lock:
            if self._running:
                return
            self._running = True
            self._generation += 1
            generation = self._generation

        def acquired(lease) -> None:
            if on_acquired is not None:
                on_acquired(lease)
            self._schedule_tick(generation)

        def denied() -> None:
            self._halt(generation)
            if on_denied is not None:
                on_denied()

        self._manager.acquire(
            self._duration, on_acquired=acquired, on_denied=denied
        )

    def stop(self, release: bool = True) -> None:
        """Stop renewing; optionally release the lease on the tag.

        Bumping the generation invalidates the tick already sitting in
        the looper's delayed queue (loopers cannot unpost), so a
        stop-then-start never runs two renewal chains at once.
        """
        with self._lock:
            if not self._running:
                return
            self._running = False
            self._generation += 1
        if release:
            self._manager.release()

    # -- renewal loop -------------------------------------------------------------

    def _halt(self, generation: int) -> bool:
        """Stop the chain from inside; True only for the first caller.

        A merged renewal chain settles every absorbed operation with the
        survivor's outcome, so a lost lease may fail N callbacks at
        once -- ``on_lost`` must still fire exactly once.
        """
        with self._lock:
            if not self._running or generation != self._generation:
                return False
            self._running = False
            self._generation += 1
            return True

    def _current(self, generation: int) -> bool:
        with self._lock:
            return self._running and generation == self._generation

    def _schedule_tick(self, generation: int) -> None:
        if not self._current(generation):
            return
        delay = self._duration * RENEW_FRACTION
        try:
            self._looper.post_delayed(lambda: self._renew_now(generation), delay)
        except Exception:  # noqa: BLE001 - looper quit during shutdown
            self._halt(generation)

    def _renew_now(self, generation: int) -> None:
        if not self._current(generation):
            return
        # Next tick first: the beat stays periodic whether or not this
        # renewal settles before the next one is due (away-time renewals
        # merge in the reference queue rather than being skipped).
        self._schedule_tick(generation)

        def renewed(_lease) -> None:
            with self._lock:
                if self._running and generation == self._generation:
                    self._renewal_count += 1

        def lost() -> None:
            if self._halt(generation) and self._on_lost is not None:
                self._on_lost()

        self._manager.renew(self._duration, on_renewed=renewed, on_failed=lost)
