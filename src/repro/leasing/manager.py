"""Acquire / renew / release / guarded writes on one tag.

The manager works at the NDEF-message level through the tag reference's
raw operations (``read_raw`` / ``write_raw``), so it composes with *any*
reference -- string-converter references and thing references alike: the
application data records ride along untouched while the trailing lease
record changes hands.

Every protocol step is a *nested* pair of asynchronous operations -- read
the current lease, then conditionally write -- composed with listeners,
which is exactly how the paper says multi-step tag interactions must be
synchronized (section 3.2: "Synchronization of operations must happen by
nesting these listeners").
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional

from repro.core.listeners import ListenerLike, as_callback
from repro.core.reference import TagReference
from repro.errors import LeaseError
from repro.leasing.lease import Lease, join_lease, split_lease
from repro.ndef.record import NdefRecord


class LeaseManager:
    """Drives the leasing protocol for one device on one tag reference."""

    def __init__(
        self,
        reference: TagReference,
        device_id: str,
        drift_bound: float = 0.05,
    ) -> None:
        if drift_bound < 0:
            raise LeaseError("drift_bound must be >= 0")
        self._reference = reference
        self.device_id = device_id
        self.drift_bound = drift_bound
        self._clock = reference.activity.device.environment.clock
        self._lock = threading.Lock()
        self._held: Optional[Lease] = None

        # Statistics for tests and benchmarks.
        self.acquisitions = 0
        self.denials = 0
        self.renewals = 0

    # -- state -------------------------------------------------------------------

    @property
    def reference(self) -> TagReference:
        return self._reference

    @property
    def held_lease(self) -> Optional[Lease]:
        with self._lock:
            return self._held

    @property
    def holds_valid_lease(self) -> bool:
        with self._lock:
            held = self._held
        return held is not None and not held.is_expired(
            self._clock, self.drift_bound, ours=True
        )

    # -- protocol steps ------------------------------------------------------------

    def acquire(
        self,
        duration: float,
        on_acquired: ListenerLike = None,
        on_denied: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Try to obtain exclusive access for ``duration`` seconds.

        Reads the tag; if it carries no lease, an expired lease, or our
        own lease, writes a fresh lease record (keeping the application
        data records). ``on_acquired(lease)`` or ``on_denied()`` runs on
        the main thread; radio failures surface as ``on_denied`` after the
        operation timeout, like any MORENA failure listener.
        """
        if duration <= 0:
            raise LeaseError("lease duration must be positive")
        acquired = as_callback(on_acquired)
        denied = as_callback(on_denied)

        def after_read(ref: TagReference) -> None:
            current, records = self._split_cached(ref)
            if (
                current is not None
                and not current.held_by(self.device_id)
                and not current.is_expired(self._clock, self.drift_bound, ours=False)
            ):
                self.denials += 1
                denied()
                return
            lease = Lease(
                device_id=self.device_id,
                acquired_at=self._clock.now(),
                expires_at=self._clock.now() + duration,
            )

            def after_write(_ref: TagReference) -> None:
                with self._lock:
                    self._held = lease
                self.acquisitions += 1
                acquired(lease)

            ref.write_raw(
                join_lease(lease, records),
                on_written=after_write,
                on_failed=lambda _ref: denied(),
                timeout=timeout,
            )

        self._reference.read_raw(
            on_read=after_read,
            on_failed=lambda _ref: denied(),
            timeout=timeout,
        )

    def renew(
        self,
        duration: float,
        on_renewed: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Extend a lease we currently hold (checked locally first)."""
        if not self.holds_valid_lease:
            as_callback(on_failed)()
            return

        def count_renewal(lease: Lease) -> None:
            self.renewals += 1
            self.acquisitions -= 1  # a renewal is not a fresh acquisition
            as_callback(on_renewed)(lease)

        self.acquire(
            duration,
            on_acquired=count_renewal,
            on_denied=on_failed,
            timeout=timeout,
        )

    def release(
        self,
        on_released: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Remove our lease record from the tag (application data stays)."""
        released = as_callback(on_released)
        failed = as_callback(on_failed)

        def after_read(ref: TagReference) -> None:
            current, records = self._split_cached(ref)
            if current is not None and not current.held_by(self.device_id):
                # Not ours (anymore): drop local state, nothing to write.
                self._forget()
                released()
                return

            def after_write(_ref: TagReference) -> None:
                self._forget()
                released()

            ref.write_raw(
                join_lease(None, records),
                on_written=after_write,
                on_failed=lambda _ref: failed(),
                timeout=timeout,
            )

        self._reference.read_raw(
            on_read=after_read,
            on_failed=lambda _ref: failed(),
            timeout=timeout,
        )

    def write_guarded(
        self,
        records: List[NdefRecord],
        on_written: ListenerLike = None,
        on_denied: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Write application data only while holding a valid lease.

        The lease record is preserved after the data. Without a
        valid lease the write is denied locally -- this is the data-race
        protection for cached things the paper's future work asks for.
        """
        with self._lock:
            held = self._held
        if held is None or held.is_expired(self._clock, self.drift_bound, ours=True):
            self._forget_if_expired()
            as_callback(on_denied)()
            return
        written = as_callback(on_written)
        self._reference.write_raw(
            join_lease(held, list(records)),
            on_written=lambda _ref: written(),
            on_failed=lambda _ref: as_callback(on_denied)(),
            timeout=timeout,
        )

    # -- internals -------------------------------------------------------------------

    def _split_cached(self, ref: TagReference):
        message = ref.cached_message
        if message is None:
            return None, []
        if message.is_empty:
            return None, []
        try:
            return split_lease(message)
        except LeaseError:
            # A corrupt lease record does not grant anyone exclusivity.
            return None, [r for r in message]

    def _forget(self) -> None:
        with self._lock:
            self._held = None

    def _forget_if_expired(self) -> None:
        with self._lock:
            if self._held is not None and self._held.is_expired(
                self._clock, self.drift_bound, ours=True
            ):
                self._held = None

    def __repr__(self) -> str:
        return (
            f"LeaseManager(device={self.device_id!r}, tag={self._reference.uid_hex}, "
            f"holding={self.holds_valid_lease})"
        )
