"""Acquire / renew / release / guarded writes on one tag.

The manager works at the NDEF-message level through the tag reference's
raw operations (``read_raw`` / ``write_raw``), so it composes with *any*
reference -- string-converter references and thing references alike: the
application data records ride along untouched while the trailing lease
record changes hands.

Acquire and release are *nested* pairs of asynchronous operations --
read the current lease, then conditionally write -- composed with
listeners, which is exactly how the paper says multi-step tag
interactions must be synchronized (section 3.2: "Synchronization of
operations must happen by nesting these listeners").

Renewal is different: while our own lease is locally valid, no
drift-honest device may touch the tag, so the cached message is
authoritative and a renewal is a single guarded write -- no
read-before-write handshake. That makes a renewal the canonical
redundant write: only the latest expiry matters, and pending renewals
queued while the tag is away collapse to one physical write through
the reference's protocol merge hook (``merge_key``), never across a
guarded data write, a release, or a read (those are fences in the
queue). The renewal write's deadline is capped at the current lease's
own validity, so a renewal that cannot land while we still hold the
guard times out instead of clobbering a successor's lease.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Tuple

from repro.core.listeners import ListenerLike, as_callback
from repro.core.reference import TagReference
from repro.errors import LeaseError
from repro.leasing.lease import Lease, join_lease, split_lease
from repro.ndef.message import NdefMessage
from repro.ndef.record import NdefRecord


class LeaseManager:
    """Drives the leasing protocol for one device on one tag reference."""

    def __init__(
        self,
        reference: TagReference,
        device_id: str,
        drift_bound: float = 0.05,
    ) -> None:
        if drift_bound < 0:
            raise LeaseError("drift_bound must be >= 0")
        self._reference = reference
        self.device_id = device_id
        self.drift_bound = drift_bound
        self._clock = reference.activity.device.environment.clock
        self._lock = threading.Lock()
        self._held: Optional[Lease] = None
        self._merge_key = f"lease-renew:{device_id}"

        # Statistics for tests and benchmarks. Listener callbacks and
        # benchmark readers run on different threads, so every mutation
        # holds ``_lock`` (the EncodeStats pattern); ``stats_snapshot``
        # is the consistent multi-counter read.
        self.acquisitions = 0
        self.denials = 0
        self.renewals = 0
        self.renewals_merged = 0

        # Protocol-outcome observers: ``listener(event, manager)`` with
        # event in {"acquired", "denied", "renewed", "released"}. A tap
        # for telemetry (the fleet gateway's lease-contention view),
        # invoked inline after the application callback; must not block.
        self._lease_listeners: List[Any] = []

    # -- observers ---------------------------------------------------------------

    def add_lease_listener(self, listener) -> None:
        """Observe protocol outcomes: ``listener(event, manager)``.

        Events: ``"acquired"``, ``"denied"``, ``"renewed"``,
        ``"released"``. Called inline right after the corresponding
        application callback fires; listeners must be cheap and
        non-blocking (the gateway reporter's contract).
        """
        with self._lock:
            self._lease_listeners.append(listener)

    def remove_lease_listener(self, listener) -> None:
        with self._lock:
            if listener in self._lease_listeners:
                self._lease_listeners.remove(listener)

    def _notify_lease(self, event: str) -> None:
        with self._lock:
            listeners = list(self._lease_listeners)
        for listener in listeners:
            try:
                listener(event, self)
            except Exception:  # noqa: BLE001 - a tap must not break the protocol
                pass

    # -- state -------------------------------------------------------------------

    @property
    def reference(self) -> TagReference:
        return self._reference

    @property
    def held_lease(self) -> Optional[Lease]:
        with self._lock:
            return self._held

    @property
    def holds_valid_lease(self) -> bool:
        with self._lock:
            held = self._held
        return held is not None and not held.is_expired(
            self._clock, self.drift_bound, ours=True
        )

    def stats_snapshot(self) -> Tuple[int, int, int, int]:
        """(acquisitions, denials, renewals, renewals_merged) atomically."""
        with self._lock:
            return (
                self.acquisitions,
                self.denials,
                self.renewals,
                self.renewals_merged,
            )

    # -- protocol steps ------------------------------------------------------------

    def acquire(
        self,
        duration: float,
        on_acquired: ListenerLike = None,
        on_denied: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Try to obtain exclusive access for ``duration`` seconds.

        Reads the tag; if it carries no lease, an expired lease, or our
        own lease, writes a fresh lease record (keeping the application
        data records). ``on_acquired(lease)`` or ``on_denied()`` runs on
        the main thread; radio failures surface as ``on_denied`` after the
        operation timeout, like any MORENA failure listener.
        """
        if duration <= 0:
            raise LeaseError("lease duration must be positive")
        acquired = as_callback(on_acquired)
        denied = as_callback(on_denied)

        def after_read(ref: TagReference) -> None:
            current, records = self._split_cached(ref)
            if (
                current is not None
                and not current.held_by(self.device_id)
                and not current.is_expired(self._clock, self.drift_bound, ours=False)
            ):
                with self._lock:
                    self.denials += 1
                denied()
                # Contention evidence (someone else holds the tag) --
                # radio-failure denials deliberately do not notify.
                self._notify_lease("denied")
                return
            # One clock snapshot: expires_at - acquired_at == duration
            # even under a coarse or advancing clock.
            now = self._clock.now()
            lease = Lease(
                device_id=self.device_id,
                acquired_at=now,
                expires_at=now + duration,
            )

            def after_write(_ref: TagReference) -> None:
                with self._lock:
                    self._held = lease
                    self.acquisitions += 1
                acquired(lease)
                self._notify_lease("acquired")

            ref.write_raw(
                join_lease(lease, records),
                on_written=after_write,
                on_failed=lambda _ref: denied(),
                timeout=timeout,
            )

        self._reference.read_raw(
            on_read=after_read,
            on_failed=lambda _ref: denied(),
            timeout=timeout,
        )

    def renew(
        self,
        duration: float,
        on_renewed: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Extend a lease we currently hold: one guarded write, no read.

        Local validity of our own lease *is* the guard -- a drift-honest
        device cannot have touched the tag since we last saw it -- so the
        renewal writes the extended lease record directly over the
        cached application records. Consequences, all deliberate:

        * Pending renewals collapse: while the tag is away, successive
          renewals tail-merge in the reference queue (``merge_key``) and
          one physical write lands the *latest* expiry on redetection.
        * A guarded data write, a release, or any read queued between
          two renewals is a fence -- those never merge with a renewal.
        * The write's deadline never outlives the current lease (minus
          the drift bound): a renewal that cannot land while we still
          hold the guard fails instead of landing late over a
          successor's lease.
        * The message is built at transmission time, so the renewal
          re-writes the application records as the *previous* queued
          write left them, not as they were when ``renew`` was called.
        """
        if duration <= 0:
            raise LeaseError("lease duration must be positive")
        renewed = as_callback(on_renewed)
        failed = as_callback(on_failed)
        with self._lock:
            held = self._held
        if held is None or held.is_expired(self._clock, self.drift_bound, ours=True):
            self._forget_if_expired()
            failed()
            return
        now = self._clock.now()
        guard_remaining = held.expires_at - self.drift_bound - now
        if guard_remaining <= 0:
            # Raced past the validity edge between the check and here.
            self._forget_if_expired()
            failed()
            return
        lease = held.renewal_of(now, duration)

        def build_message() -> NdefMessage:
            _, records = self._split_cached(self._reference)
            return join_lease(lease, records)

        def after_write(_ref: TagReference) -> None:
            with self._lock:
                self.renewals += 1
                # Adopt the extension only while the same lease lineage
                # (acquired_at) is still held: a release() issued while
                # the renewal was queued or in flight must not be
                # resurrected, nor a fresh re-acquire overwritten.
                if (
                    self._held is not None
                    and self._held.acquired_at == lease.acquired_at
                ):
                    self._held = lease
            renewed(lease)
            self._notify_lease("renewed")

        base = self._reference.default_timeout if timeout is None else timeout
        operation = self._reference.write_raw(
            message_factory=build_message,
            on_written=after_write,
            on_failed=lambda _ref: failed(),
            timeout=min(base, guard_remaining),
            merge_key=self._merge_key,
        )
        if operation.merged:
            with self._lock:
                self.renewals_merged += 1

    def release(
        self,
        on_released: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Remove our lease record from the tag (application data stays).

        Local state is dropped immediately: a renewal arriving after
        ``release()`` must not resurrect the lease, even while the
        removal write is still in flight.
        """
        released = as_callback(on_released)
        failed = as_callback(on_failed)
        self._forget()

        def finish() -> None:
            # A renewal that settled between release() and here may have
            # re-adopted the lease; released means released.
            self._forget()
            released()
            self._notify_lease("released")

        def after_read(ref: TagReference) -> None:
            current, records = self._split_cached(ref)
            if current is None:
                # Nothing to remove: skip the radio round-trip that
                # would rewrite identical records.
                finish()
                return
            if not current.held_by(self.device_id):
                # Not ours (anymore): nothing to write.
                finish()
                return

            def build_message() -> NdefMessage:
                _, fresh = self._split_cached(ref)
                return join_lease(None, fresh)

            ref.write_raw(
                message_factory=build_message,
                on_written=lambda _ref: finish(),
                on_failed=lambda _ref: failed(),
                timeout=timeout,
            )

        self._reference.read_raw(
            on_read=after_read,
            on_failed=lambda _ref: failed(),
            timeout=timeout,
        )

    def write_guarded(
        self,
        records: List[NdefRecord],
        on_written: ListenerLike = None,
        on_denied: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Write application data only while holding a valid lease.

        The lease record is preserved after the data. Without a
        valid lease the write is denied locally -- this is the data-race
        protection for cached things the paper's future work asks for.
        The guarded write never carries a merge key: each data write
        must physically reach the tag, and it fences renewal merging on
        both sides.
        """
        with self._lock:
            held = self._held
        if held is None or held.is_expired(self._clock, self.drift_bound, ours=True):
            self._forget_if_expired()
            as_callback(on_denied)()
            return
        written = as_callback(on_written)
        data = list(records)

        def build_message() -> NdefMessage:
            # Preserve the freshest of our on-tag lease records: a
            # renewal queued before this write may already have landed
            # a later expiry than the one held at call time.
            current, _ = self._split_cached(self._reference)
            record = current if current is not None and current.held_by(
                self.device_id
            ) else held
            return join_lease(record, data)

        self._reference.write_raw(
            message_factory=build_message,
            on_written=lambda _ref: written(),
            on_failed=lambda _ref: as_callback(on_denied)(),
            timeout=timeout,
        )

    # -- internals -------------------------------------------------------------------

    def _split_cached(self, ref: TagReference):
        message = ref.cached_message
        if message is None:
            return None, []
        if message.is_empty:
            return None, []
        try:
            return split_lease(message)
        except LeaseError:
            # A corrupt lease record does not grant anyone exclusivity.
            return None, [r for r in message]

    def _forget(self) -> None:
        with self._lock:
            self._held = None

    def _forget_if_expired(self) -> None:
        with self._lock:
            if self._held is not None and self._held.is_expired(
                self._clock, self.drift_bound, ours=True
            ):
                self._held = None

    def __repr__(self) -> str:
        return (
            f"LeaseManager(device={self.device_id!r}, tag={self._reference.uid_hex}, "
            f"holding={self.holds_valid_lease})"
        )
