"""The lease record and its on-tag representation."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.clock import Clock
from repro.errors import LeaseError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record, record_mime_type
from repro.ndef.record import NdefRecord

LEASE_MIME_TYPE = "application/vnd.morena.lease"


@dataclass(frozen=True)
class Lease:
    """Exclusive access to one tag by one device until ``expires_at``.

    Timestamps are seconds on the shared simulation clock (on real phones
    they would be wall-clock epochs; the drift-bound logic is identical).
    """

    device_id: str
    acquired_at: float
    expires_at: float

    @property
    def duration(self) -> float:
        return self.expires_at - self.acquired_at

    def is_expired(self, clock: Clock, drift_bound: float, ours: bool) -> bool:
        """Expiry under the clock-drift assumption.

        A *foreign* lease is honoured ``drift_bound`` seconds past its
        expiry (their clock may run slow relative to ours); our *own*
        lease is abandoned ``drift_bound`` seconds early (our clock may
        run slow relative to theirs).
        """
        if drift_bound < 0:
            raise LeaseError("drift_bound must be >= 0")
        now = clock.now()
        if ours:
            return now >= self.expires_at - drift_bound
        return now >= self.expires_at + drift_bound

    def held_by(self, device_id: str) -> bool:
        return self.device_id == device_id

    def renewal_of(self, now: float, duration: float) -> "Lease":
        """The record a renewal writes: same holder and acquisition
        time, expiry extended to ``now + duration``.

        Keeping ``acquired_at`` makes :attr:`duration` the total time
        the device has held the tag across renewals, which is what
        hold-time accounting wants to see."""
        return Lease(
            device_id=self.device_id,
            acquired_at=self.acquired_at,
            expires_at=now + duration,
        )

    # -- on-tag codec ----------------------------------------------------------

    def to_record(self) -> NdefRecord:
        payload = json.dumps(
            {
                "device_id": self.device_id,
                "acquired_at": self.acquired_at,
                "expires_at": self.expires_at,
            },
            sort_keys=True,
        ).encode("utf-8")
        return mime_record(LEASE_MIME_TYPE, payload)

    @staticmethod
    def from_record(record: NdefRecord) -> "Lease":
        if record_mime_type(record) != LEASE_MIME_TYPE:
            raise LeaseError("record is not a lease record")
        try:
            data = json.loads(record.payload.decode("utf-8"))
            return Lease(
                device_id=str(data["device_id"]),
                acquired_at=float(data["acquired_at"]),
                expires_at=float(data["expires_at"]),
            )
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise LeaseError(f"malformed lease record: {exc}") from exc


def split_lease(message: NdefMessage) -> Tuple[Optional[Lease], List[NdefRecord]]:
    """Separate the lease record (if any) from the application records."""
    lease: Optional[Lease] = None
    rest: List[NdefRecord] = []
    for record in message:
        if lease is None and record_mime_type(record) == LEASE_MIME_TYPE:
            lease = Lease.from_record(record)
        else:
            rest.append(record)
    return lease, rest


def join_lease(lease: Optional[Lease], records: List[NdefRecord]) -> NdefMessage:
    """Rebuild the on-tag message: the data records, then the lease.

    The lease record goes *last* so that the first record -- the one
    Android's intent dispatch derives the tag's MIME type from -- remains
    the application's, and a leased tag still reaches its application.
    """
    combined: List[NdefRecord] = list(records)
    if lease is not None:
        combined.append(lease.to_record())
    if not combined:
        return NdefMessage.empty()
    return NdefMessage(combined)
