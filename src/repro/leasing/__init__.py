"""Leasing: the paper's future-work feature, implemented.

Paper section 6 sketches a leasing mechanism with two goals: protecting
cached things from data races with other phones, and enabling automatic
garbage collection of tag references. The envisioned protocol -- "write a
locking timestamp and a device ID on the RFID tag's memory; only if this
succeeds, the device is granted exclusive access; beyond this timestamp
the lease expires" -- is implemented here on top of the tag-reference
layer:

* :class:`~repro.leasing.lease.Lease` -- the (device id, acquired-at,
  expires-at) record, stored on the tag as an extra MIME record ahead of
  the application data.
* :class:`~repro.leasing.manager.LeaseManager` -- acquire / renew /
  release / guarded writes, built by *nesting asynchronous listeners*
  (read-then-write), the composition style section 3.2 prescribes.
* :class:`~repro.leasing.table.LeaseTable` -- tracks the activity's held
  leases and releases expired tag references from the factory: the
  automatic reference GC of the paper's future work.

The paper's clock assumption ("clock drift among Android devices is small
enough") is surfaced as an explicit, benchmarkable ``drift_bound``: a
foreign lease only counts as expired ``drift_bound`` seconds *after* its
expiry, and our own lease counts as expired ``drift_bound`` seconds
*before* -- conservative on both sides.
"""

from repro.leasing.lease import LEASE_MIME_TYPE, Lease
from repro.leasing.keeper import LeaseKeeper
from repro.leasing.manager import LeaseManager
from repro.leasing.table import LeaseTable

__all__ = ["Lease", "LeaseManager", "LeaseKeeper", "LeaseTable", "LEASE_MIME_TYPE"]
