"""Coroutine adapters over the lease protocol's listener interface.

The protocol itself — guarded reads, renewal merging, drift bounds —
lives entirely in :class:`~repro.leasing.manager.LeaseManager` and is
untouched here; these functions only change the completion style, the
same way :mod:`repro.core.aio` wraps tag operations. They work under
either reactor backend and from any event loop.

::

    lease = await acquire(manager, duration=30.0)
    ...
    await renew(manager, duration=30.0)
    await release(manager)
"""

from __future__ import annotations

from typing import Optional

from repro.core.futures import OperationFuture
from repro.errors import LeaseError
from repro.leasing.lease import Lease
from repro.leasing.manager import LeaseManager


class LeaseDeniedError(LeaseError):
    """The lease step completed as denied/failed (tag held, radio loss)."""


def _denial(step: str) -> LeaseDeniedError:
    return LeaseDeniedError(f"lease {step} denied or failed")


async def acquire(
    manager: LeaseManager, duration: float, timeout: Optional[float] = None
) -> Lease:
    """``await acquire(manager, 30.0)`` — the obtained :class:`Lease`.

    Raises :class:`LeaseDeniedError` when another device holds a live
    lease or the radio round fails — the coroutine face of
    ``on_denied``.
    """
    future = OperationFuture()
    manager.acquire(
        duration,
        on_acquired=lambda lease: future._succeed(lease),  # noqa: SLF001
        on_denied=lambda: future._fail(_denial("acquire")),  # noqa: SLF001
        timeout=timeout,
    )
    return await future


async def renew(
    manager: LeaseManager, duration: float, timeout: Optional[float] = None
) -> Lease:
    """``await renew(manager, 30.0)`` — the extended :class:`Lease`."""
    future = OperationFuture()
    manager.renew(
        duration,
        on_renewed=lambda lease: future._succeed(lease),  # noqa: SLF001
        on_failed=lambda: future._fail(_denial("renew")),  # noqa: SLF001
        timeout=timeout,
    )
    return await future


async def release(manager: LeaseManager, timeout: Optional[float] = None) -> None:
    """``await release(manager)`` — resolves once the record is removed."""
    future = OperationFuture()
    manager.release(
        on_released=lambda: future._succeed(None),  # noqa: SLF001
        on_failed=lambda: future._fail(_denial("release")),  # noqa: SLF001
        timeout=timeout,
    )
    await future
