"""Lease-driven garbage collection of tag references.

The second goal of the paper's leasing future work: "allow cached objects
to be garbage collected automatically ... beyond this timestamp the lease
expires ... and the reference to the tag can be safely garbage
collected." A :class:`LeaseTable` tracks the lease managers an activity
created; :meth:`collect_expired` stops and forgets every reference whose
lease has lapsed.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.core.factory import TagReferenceFactory
from repro.leasing.manager import LeaseManager


class LeaseTable:
    """All lease managers of one activity, keyed by tag UID."""

    def __init__(self, factory: TagReferenceFactory) -> None:
        self._factory = factory
        self._lock = threading.Lock()
        self._managers: Dict[bytes, LeaseManager] = {}

    def track(self, manager: LeaseManager) -> LeaseManager:
        with self._lock:
            self._managers[manager.reference.uid] = manager
        return manager

    def manager_for(self, uid: bytes) -> LeaseManager:
        with self._lock:
            return self._managers[uid]

    def tracked_uids(self) -> List[bytes]:
        with self._lock:
            return list(self._managers)

    def collect_expired(self) -> List[bytes]:
        """Release every reference whose lease is no longer valid.

        Returns the UIDs that were collected. References with a live
        lease, and managers that never acquired one, are left alone only
        if the lease is still valid -- a manager that never acquired (or
        whose lease lapsed) is fair game, since nothing protects its
        cached data anymore.
        """
        with self._lock:
            expired = [
                uid
                for uid, manager in self._managers.items()
                if not manager.holds_valid_lease
            ]
            for uid in expired:
                del self._managers[uid]
        for uid in expired:
            self._factory.release(uid)
        return expired

    def __len__(self) -> int:
        with self._lock:
            return len(self._managers)
