"""Exception hierarchy shared by every MORENA subsystem.

The hierarchy mirrors the layering of the reproduction:

* ``ReproError`` is the common root, so callers embedding the library can
  catch everything it raises with a single ``except`` clause.
* ``NdefError`` and subclasses cover the NDEF binary codec.
* ``TagError`` and subclasses cover the simulated tag hardware.
* ``RadioError`` covers the radio-field simulation. ``TagLostError`` is the
  Python analogue of Android's ``TagLostException``: it is raised by
  blocking tag I/O when the tag leaves the field (or the link tears) in the
  middle of an operation. In the paper's words, with NFC "failure is the
  rule instead of the exception" -- this exception *is* that rule.
* ``AndroidError`` covers the simulated platform (lifecycle misuse,
  messaging on a dead looper, ...).
* ``SerializationError`` covers the GSON-like serializer.
* ``MorenaError`` covers the middleware proper (reference misuse, missing
  converters, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every exception raised by this library."""


# ---------------------------------------------------------------------------
# NDEF codec
# ---------------------------------------------------------------------------


class NdefError(ReproError):
    """Root for NDEF encoding/decoding problems."""


class NdefDecodeError(NdefError):
    """Raised when a byte sequence is not a well-formed NDEF message."""


class NdefEncodeError(NdefError):
    """Raised when a record cannot be encoded (field too large, bad TNF...)."""


class NdefValidationError(NdefError):
    """Raised when a structurally decodable message violates NDEF rules."""


# ---------------------------------------------------------------------------
# Tag hardware
# ---------------------------------------------------------------------------


class TagError(ReproError):
    """Root for simulated-tag hardware errors."""


class TagCapacityError(TagError):
    """The NDEF message does not fit in the tag's usable memory."""


class TagReadOnlyError(TagError):
    """A write was attempted on a locked (read-only) tag."""


class TagFormatError(TagError):
    """The tag's memory does not contain a valid NDEF TLV structure."""


class TagWornOutError(TagError):
    """The tag exceeded its write-endurance budget and no longer accepts writes."""


# ---------------------------------------------------------------------------
# Radio field
# ---------------------------------------------------------------------------


class RadioError(ReproError):
    """Root for radio-field simulation errors."""


class TagLostError(RadioError):
    """The tag left the field (or the link tore) during an operation.

    Mirrors ``android.nfc.TagLostException``. Blocking tag I/O in the
    simulated Android API raises this; MORENA's asynchronous layer converts
    it into silent retries.
    """


class NotInFieldError(RadioError):
    """An operation was attempted on a tag that is not currently in range."""


class BeamError(RadioError):
    """A phone-to-phone Beam push could not be delivered."""


# ---------------------------------------------------------------------------
# Android platform
# ---------------------------------------------------------------------------


class AndroidError(ReproError):
    """Root for simulated-platform errors."""


class LooperError(AndroidError):
    """Messaging misuse: posting to a quit looper, double-preparing, ..."""


class LifecycleError(AndroidError):
    """Activity lifecycle misuse (e.g. resuming a destroyed activity)."""


class IntentError(AndroidError):
    """Malformed or undeliverable intent."""


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


class SerializationError(ReproError):
    """Root for GSON-like serializer errors."""


class CircularReferenceError(SerializationError):
    """The object graph to serialize contains a cycle (GSON does not support cycles)."""


class DeserializationError(SerializationError):
    """JSON text could not be mapped back onto the target class."""


# ---------------------------------------------------------------------------
# MORENA middleware
# ---------------------------------------------------------------------------


class MorenaError(ReproError):
    """Root for middleware-layer errors."""


class ConverterError(MorenaError):
    """A data converter failed or was missing where one is required."""


class ReferenceStoppedError(MorenaError):
    """An operation was scheduled on a tag reference whose event loop stopped."""


class ThingError(MorenaError):
    """Thing-layer misuse (unregistered thing type, thing not bound to a tag...)."""


class LeaseError(MorenaError):
    """Root for leasing-protocol errors."""


class LeaseDeniedError(LeaseError):
    """The tag is currently leased by another device."""


class LeaseExpiredError(LeaseError):
    """An operation required a lease that has already expired."""
