"""File collection and rule dispatch for ``morelint``.

The engine is deliberately boring: expand paths to ``.py`` files, parse
each into a :class:`~repro.analysis.context.FileContext`, hand the
context to every selected rule, and return the accumulated findings
sorted by location. All intelligence lives in the context (shared
precomputation) and the rules (judgement).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Set

from repro.analysis.context import FileContext
from repro.analysis.model import Finding, Rule, Severity, all_rules

_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "node_modules"}


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    out: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = [d for d in dirs if d not in _SKIP_DIRS]
                for name in files:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        elif path.endswith(".py"):
            out.add(path)
    return sorted(out)


def lint_source(
    path: str, source: str, rules: Optional[Iterable[Rule]] = None
) -> List[Finding]:
    """Lint one in-memory source buffer (the test entry point)."""
    try:
        context = FileContext(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="MOR000",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 1,
                column=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        findings.extend(rule.check(context))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    return findings


def lint_paths(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint files/directories; ``select`` filters by rule id."""
    chosen: Optional[List[Rule]] = None
    if select is not None:
        wanted = set(select)
        chosen = [rule for rule in all_rules() if rule.id in wanted]
    findings: List[Finding] = []
    for path in collect_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    rule_id="MOR000",
                    severity=Severity.ERROR,
                    path=path,
                    line=1,
                    column=1,
                    message=f"file is unreadable: {exc}",
                )
            )
            continue
        findings.extend(lint_source(path, source, rules=chosen))
    return findings
