"""File collection and rule dispatch for ``morelint``.

Since the flow-aware rules landed, a lint run has two phases:

1. **Index.** Every file is parsed and digested into a picklable
   :class:`~repro.analysis.project.FileSummary`; the merged
   :class:`~repro.analysis.project.ProjectIndex` is the cross-module
   symbol table (class hierarchies, parameter effects, policy sites)
   the project-aware rules resolve against.
2. **Lint.** Every file is parsed again into a
   :class:`~repro.analysis.context.FileContext` carrying the index,
   every selected rule runs over it, and inline ``# morelint:
   disable=...`` pragmas filter the findings.

Both phases are embarrassingly parallel; ``jobs > 1`` fans them out
over a process pool (summaries and findings are plain data). The
serial path parses each file once and reuses the context for both
phases.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import FileContext
from repro.analysis.model import Finding, Rule, Severity, all_rules
from repro.analysis.project import FileSummary, ProjectIndex, summarize

_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "node_modules"}

# Below this many files the process-pool spin-up costs more than it
# saves; the serial path also parses only once.
_PARALLEL_THRESHOLD = 24


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    out: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = [d for d in dirs if d not in _SKIP_DIRS]
                for name in files:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        elif path.endswith(".py"):
            out.add(path)
    return sorted(out)


def _parse_error_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule_id="MOR000",
        severity=Severity.ERROR,
        path=path,
        line=exc.lineno or 1,
        column=(exc.offset or 0) + 1,
        message=f"file does not parse: {exc.msg}",
    )


def _read_error_finding(path: str, exc: Exception) -> Finding:
    return Finding(
        rule_id="MOR000",
        severity=Severity.ERROR,
        path=path,
        line=1,
        column=1,
        message=f"file is unreadable: {exc}",
    )


def _run_rules(
    context: FileContext, rules: Optional[Iterable[Rule]]
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(context):
            if not context.is_suppressed(finding.rule_id, finding.line):
                findings.append(finding)
    return findings


def lint_source(
    path: str,
    source: str,
    rules: Optional[Iterable[Rule]] = None,
    project: Optional[ProjectIndex] = None,
) -> List[Finding]:
    """Lint one in-memory source buffer (the test entry point)."""
    try:
        context = FileContext(path, source)
    except SyntaxError as exc:
        return [_parse_error_finding(path, exc)]
    context.project = project
    findings = _run_rules(context, rules)
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    return findings


def _select_rules(select: Optional[Iterable[str]]) -> Optional[List[Rule]]:
    if select is None:
        return None
    wanted = set(select)
    return [rule for rule in all_rules() if rule.id in wanted]


# -- process-pool workers (module-level for picklability) ----------------------


def _summarize_worker(path: str):
    """Phase 1 in a worker: path -> FileSummary | error Finding."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return _read_error_finding(path, exc)
    try:
        return summarize(FileContext(path, source))
    except SyntaxError as exc:
        return _parse_error_finding(path, exc)


def _lint_worker(args: Tuple[str, Optional[Tuple[str, ...]], ProjectIndex]):
    """Phase 2 in a worker: (path, select, index) -> findings."""
    path, select, index = args
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [_read_error_finding(path, exc)]
    try:
        context = FileContext(path, source)
    except SyntaxError as exc:
        return [_parse_error_finding(path, exc)]
    context.project = index
    return _run_rules(context, _select_rules(select))


def resolve_jobs(jobs: Optional[object], file_count: int) -> int:
    """``--jobs`` semantics: ``auto``/None scales with the work."""
    if jobs in (None, "auto"):
        if file_count < _PARALLEL_THRESHOLD:
            return 1
        return max(1, min(8, (os.cpu_count() or 2) - 1))
    count = int(jobs)  # raises on junk, matching argparse type=... usage
    return max(1, count)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    jobs: Optional[object] = None,
) -> List[Finding]:
    """Lint files/directories; ``select`` filters by rule id."""
    chosen = _select_rules(select)
    files = collect_files(paths)
    workers = resolve_jobs(jobs, len(files))
    findings: List[Finding] = []

    if workers > 1 and len(files) >= 2:
        select_tuple = tuple(select) if select is not None else None
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            summaries: List[FileSummary] = []
            for result in pool.map(_summarize_worker, files, chunksize=8):
                if isinstance(result, Finding):
                    findings.append(result)
                else:
                    summaries.append(result)
            index = ProjectIndex(summaries)
            jobs_args = [(path, select_tuple, index) for path in files]
            for file_findings in pool.map(_lint_worker, jobs_args, chunksize=8):
                findings.extend(file_findings)
        # Phase-2 workers re-parse unreadable/broken files and re-emit
        # the same MOR000s phase 1 produced; collapse the duplicates.
        findings = list(dict.fromkeys(findings))
    else:
        contexts: List[FileContext] = []
        for path in files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except (OSError, UnicodeDecodeError) as exc:
                findings.append(_read_error_finding(path, exc))
                continue
            try:
                contexts.append(FileContext(path, source))
            except SyntaxError as exc:
                findings.append(_parse_error_finding(path, exc))
        index = ProjectIndex([summarize(context) for context in contexts])
        for context in contexts:
            context.project = index
            findings.extend(_run_rules(context, chosen))

    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    return findings
