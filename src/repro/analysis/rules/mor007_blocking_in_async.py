"""MOR007: blocking call inside a coroutine.

An ``async def`` body runs on an event loop — the asyncio reactor's
loop (``Reactor(mode="asyncio")``), or whatever loop the application
drives. One blocking call there stalls *every* coroutine and every
reference multiplexed on that loop, which in asyncio mode is the whole
device: strictly worse than MOR001's frozen looper. ``time.sleep``
has ``asyncio.sleep``, ``future.result()`` has ``await future``,
``looper.sync()`` has no business in a coroutine at all, and the
blocking reference idioms have ``ref.aio`` (``await ref.aio.read()``).

Awaited calls are never flagged — ``await asyncio.wait_for(...)`` or
``await sock.connect(...)`` yield to the loop instead of blocking it.
The runtime twin of this rule is the sanitizer's ``blocking-on-loop``
check (:mod:`repro.analysis.sanitizer`).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import FileContext, call_name
from repro.analysis.model import Finding, Rule, Severity, register
from repro.analysis.rules.mor001_blocking_calls import is_blocking_call


def check(context: FileContext) -> Iterator[Finding]:
    findings: List[Finding] = []
    for coroutine in context.async_contexts:
        for node in coroutine.walk():
            if not isinstance(node, ast.Call) or not is_blocking_call(node):
                continue
            if isinstance(context.parent(node), ast.Await):
                continue  # awaited -> yields to the loop, not blocking
            findings.append(
                RULE.finding(
                    context,
                    node,
                    f"blocking call {call_name(node.func)!r} inside coroutine "
                    f"{coroutine.name!r}; it stalls the event loop and every "
                    "reference scheduled on it",
                )
            )
    return iter(findings)


RULE = register(
    Rule(
        id="MOR007",
        name="blocking-call-in-coroutine",
        severity=Severity.ERROR,
        summary="time.sleep / future waits / sync I/O inside an async def body",
        autofix_hint=(
            "use the await-native surface (await ref.aio.read(), await future, "
            "asyncio.sleep) or run the blocking work in an executor"
        ),
        check=check,
    )
)
