"""MOR004: ``Gson.register_adapter`` inside a hot callback.

``register_adapter`` invalidates every cached ``SerializationPlan`` of
its ``Gson`` instance -- registering an adapter after a class was
encoded *must* affect subsequent encodes, so the cache flushes. Calling
it inside a listener (``when_discovered`` fires on every tap, save
listeners on every settle) therefore flushes the plan cache on every
event, silently downgrading the serialize pipeline to the no-cache
baseline the codec benchmark measures at >= 3x slower. Adapters belong
in one-time configuration: ``ThingActivity.make_gson`` or module setup.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import FileContext, tail_name
from repro.analysis.model import Finding, Rule, Severity, register


def check(context: FileContext) -> Iterator[Finding]:
    findings: List[Finding] = []
    for callback in context.looper_contexts:
        for node in callback.walk():
            if (
                isinstance(node, ast.Call)
                and tail_name(node.func) == "register_adapter"
            ):
                findings.append(
                    RULE.finding(
                        context,
                        node,
                        f"register_adapter() inside {callback.name!r} "
                        "invalidates the serialization plan cache on every "
                        "event, defeating the codec fast path",
                    )
                )
    return iter(findings)


RULE = register(
    Rule(
        id="MOR004",
        name="adapter-churn-in-callback",
        severity=Severity.ERROR,
        summary="register_adapter in a listener flushes the plan cache per event",
        autofix_hint=(
            "register adapters once, in ThingActivity.make_gson() (or module "
            "setup), not per event"
        ),
        check=check,
    )
)
