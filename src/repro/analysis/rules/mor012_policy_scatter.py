"""MOR012: distribution-policy knobs pinned literally all over the project.

``coalesce=True`` here, ``retries=3`` there, ``tx_policy="fair"`` in a
third module: each call site hard-codes a slice of the *distribution
policy* -- how writes merge, how transactions schedule, how failures
retry. Scattered literals drift independently; the proximity-driven
field tuning the paper describes wants one policy object
(``CrossTagPolicy``-shaped) configured once and forwarded.

Counted project-wide through the index: only *literal* pins count
(forwarding ``coalesce=coalesce`` or reading ``policy.retries`` is
already centralized), and constructing a policy object is the fix, not
the smell. The finding fires once per offending file, at its first
site, when the project crosses the scatter threshold.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import FileContext
from repro.analysis.model import Finding, Rule, Severity, register
from repro.analysis.project import get_summary, index_for

# The smell needs both volume and spread: a pair of flags inside one
# helper is fine; four-plus literals across three-plus functions is a
# policy without a home.
MIN_SITES = 4
MIN_FUNCTIONS = 3


def check(context: FileContext) -> Iterator[Finding]:
    local = get_summary(context)
    if not local.policy_sites:
        return iter(())
    total, functions, per_flag = index_for(context).policy_scatter()
    if total < MIN_SITES or functions < MIN_FUNCTIONS:
        return iter(())
    first = min(local.policy_sites, key=lambda site: site.line)
    flags = ", ".join(
        f"{flag}×{count}" for flag, count in sorted(per_flag.items())
    )
    anchor = ast.Name(id=first.flag)
    anchor.lineno = first.line
    anchor.col_offset = 0
    finding = RULE.finding(
        context,
        anchor,
        f"distribution-policy flags pinned literally at {total} call sites "
        f"across {functions} functions project-wide ({flags}) -- "
        "consolidate into one CrossTagPolicy-style object and forward it",
    )
    return iter([finding])


RULE = register(
    Rule(
        id="MOR012",
        name="scattered-policy",
        severity=Severity.WARNING,
        summary="distribution-policy literals scattered across call sites",
        autofix_hint=(
            "build one policy object (coalesce/tx_policy/retry in one "
            "place) and pass it through instead of re-pinning literals"
        ),
        check=check,
    )
)
