"""MOR010: reading a tag that still has an unfenced coalesced write queued.

A coalesced write (``write(..., coalesce=True)``, or ``save_async()``
which coalesces by default) is *deferred*: the reference layer may merge
it with later writes and flush at its leisure. Reading the same tag
straight afterwards races that queue -- the read can observe the
pre-write payload and the program then acts on stale state.

The fences that make the follow-up read well-ordered:

* a success listener on the write (``on_written=`` / ``on_saved=``) --
  re-read from inside it;
* ``coalesce=False`` -- the write is synchronous in queue order;
* a raw write (``write_raw``) -- raw operations flush the queue.

Flow-sensitivity earns its keep here: the hazard only exists on paths
where the queued write is still pending, so a read in the *other*
branch of an ``if``, or after a fencing ``write_raw``, stays silent.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.analysis.context import (
    FileContext,
    SUCCESS_KEYWORDS,
    get_keyword,
    is_none,
    tail_name,
)
from repro.analysis.dataflow import ResourceAnalysis, receiver_key
from repro.analysis.dataflow.resources import token_line
from repro.analysis.model import Finding, Rule, Severity, register

_READS = frozenset({"read", "read_raw", "refresh_async"})


def _coalesce_value(call: ast.Call):
    keyword = get_keyword(call, "coalesce")
    if keyword is None or not isinstance(keyword.value, ast.Constant):
        return None
    return bool(keyword.value.value)


def _has_success_listener(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg in SUCCESS_KEYWORDS and not is_none(keyword.value):
            return True
    # Positional listener slots: write(payload, on_written, ...) --
    # anything callable-looking after the payload counts.
    for arg in call.args:
        if isinstance(arg, ast.Lambda):
            return True
        name = tail_name(arg)
        if name.lower().startswith("on_"):
            return True
    return False


def _classify(call: ast.Call) -> Iterable[Tuple[str, ...]]:
    if not isinstance(call.func, ast.Attribute):
        return
    key = receiver_key(call)
    if not key:
        return
    verb = call.func.attr
    if verb == "write":
        coalesce = _coalesce_value(call)
        if coalesce and not _has_success_listener(call):
            yield ("seed", key, "coalesced")
        else:
            # coalesce=False or a listener: this write fences the queue.
            yield ("clear", key)
    elif verb == "save_async":
        if _coalesce_value(call) is False or _has_success_listener(call):
            yield ("clear", key)
        else:
            yield ("seed", key, "coalesced")
    elif verb == "write_raw":
        yield ("clear", key)
    elif verb in _READS:
        yield ("use", key)


def check(context: FileContext) -> Iterator[Finding]:
    analysis = ResourceAnalysis(_classify)
    findings: List[Finding] = []
    seen: set = set()
    for fn in ast.walk(context.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for use in analysis.run(fn).uses:
            queued = min(token_line(token) for token in use.tokens)
            at = (use.call.lineno, use.call.col_offset, use.key)
            if at in seen:
                continue
            seen.add(at)
            what = tail_name(use.call.func)
            findings.append(
                RULE.finding(
                    context,
                    use.call,
                    f"{use.key}.{what}() races the coalesced write queued "
                    f"at line {queued} -- read from its on_written/on_saved "
                    "listener, or pass coalesce=False",
                )
            )
    return iter(findings)


RULE = register(
    Rule(
        id="MOR010",
        name="coalesce-fence",
        severity=Severity.WARNING,
        summary="read racing an unfenced coalesced write on the same tag",
        autofix_hint=(
            "re-read from the write's success listener, or order the pair "
            "explicitly with coalesce=False / write_raw"
        ),
        check=check,
    )
)
