"""MOR011: an attribute locked in one place, written bare in another.

The static half of an Eraser-style lockset check. If *any* method of a
class (or of a base class, resolved through the project index across
files) writes ``self.attr`` while holding a lock, that attribute has a
declared discipline: it is shared state. A bare write to the same
attribute from a method reachable off a listener / looper / coroutine
entry point is then a candidate race -- two NFC callbacks interleave
and the unguarded write tears the invariant the lock was bought for.

Precision carve-outs (the difference between a lint rule and noise):

* constructor-ish methods (``__init__``, ``on_create``, ``setUp``...)
  publish nothing -- no other thread holds the object yet;
* methods *not* reachable from any concurrent entry point (listener
  method, thread target, coroutine, or anything they call through
  ``self.*``) are single-threaded maintenance code and stay silent.

The runtime mirror of this rule is
:class:`repro.analysis.sanitizer.LocksetTracker`, which watches real
lock acquisitions and flags the same discipline violations dynamically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.context import FileContext
from repro.analysis.model import Finding, Rule, Severity, register
from repro.analysis.project import (
    _self_attr_writes,
    index_for,
    lock_names_held_at,
)

_CTORISH = frozenset({"__init__", "__new__", "__init_subclass__", "on_create", "setUp", "setup"})


def _methods(klass: ast.ClassDef) -> List[ast.AST]:
    return [
        item
        for item in klass.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _self_calls(method: ast.AST) -> Set[str]:
    """Names of ``self.m(...)`` calls in ``method`` (own body only)."""
    out: Set[str] = set()
    stack: List[ast.AST] = list(method.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            out.add(node.func.attr)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _entry_method_names(context: FileContext, klass: ast.ClassDef) -> Set[str]:
    """Methods of ``klass`` that concurrent machinery calls directly."""
    entries: Set[str] = set()
    contexts = (
        context.looper_contexts
        + context.off_looper_contexts
        + context.async_contexts
    )
    for callback in contexts:
        if callback.enclosing_class == klass.name and isinstance(
            callback.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            entries.add(callback.node.name)
    return entries


def _reachable_methods(context: FileContext, klass: ast.ClassDef) -> Set[str]:
    """Entry methods plus the closure over intra-class ``self.m()`` calls."""
    by_name = {m.name: m for m in _methods(klass)}
    reachable = {
        name for name in _entry_method_names(context, klass) if name in by_name
    }
    frontier = list(reachable)
    while frontier:
        method = by_name[frontier.pop()]
        for callee in _self_calls(method):
            if callee in by_name and callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)
    return reachable


def check(context: FileContext) -> Iterator[Finding]:
    index = index_for(context)
    findings: List[Finding] = []
    for klass in ast.walk(context.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        guarded = index.class_locked_attrs(klass.name)
        if not guarded:
            continue
        reachable = _reachable_methods(context, klass)
        if not reachable:
            continue
        for method in _methods(klass):
            if method.name in _CTORISH or method.name not in reachable:
                continue
            for attr, write in _self_attr_writes(method):
                locks = guarded.get(attr)
                if locks is None:
                    continue
                if lock_names_held_at(context, write):
                    continue
                where = " / ".join(locks)
                findings.append(
                    RULE.finding(
                        context,
                        write,
                        f"self.{attr} is written under {where!r} elsewhere "
                        f"but bare in {klass.name}.{method.name}(), which "
                        "runs on a concurrent entry point -- interleaved "
                        "callbacks can tear it",
                    )
                )
    return iter(findings)


RULE = register(
    Rule(
        id="MOR011",
        name="inconsistent-lockset",
        severity=Severity.ERROR,
        summary="attribute locked in one method, written bare on a concurrent path",
        autofix_hint=(
            "take the same lock around the write, or move the state onto "
            "the looper thread and drop the lock entirely"
        ),
        check=check,
    )
)
