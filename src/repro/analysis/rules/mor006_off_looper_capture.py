"""MOR006: off-looper callback mutates captured activity state directly.

MORENA's listeners run on the main looper precisely so applications
never need locks. But callbacks registered *below* the listener layer do
not enjoy that guarantee: ``threading.Thread`` targets run on their own
thread, raw field listeners (``add_field_listener`` / ``add_tag_listener``)
run on the radio thread, and negotiated-handover responders run on the
*requesting* device's thread ("keep it short and thread-safe", says the
adapter). A closure there that assigns to captured mutable state
(``self.count += 1``) races every listener reading the same field on the
looper. The mutation must either hop onto the looper
(``looper.post(...)``) or sit under an explicit lock.

Assignments lexically inside a ``with self._lock:`` / ``with
self._cond:`` block are accepted -- that is the explicit-lock escape
hatch the middleware itself uses.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import CallbackContext, FileContext, call_name
from repro.analysis.model import Finding, Rule, Severity, register

_LOCKISH = ("lock", "cond", "mutex", "sem")


def _is_lock_guard(item: ast.withitem) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = call_name(expr).lower()
    return any(mark in name for mark in _LOCKISH)


def _mutations(
    nodes: List[ast.AST], captured: str, guarded: bool
) -> Iterator[ast.AST]:
    """Yield assignments to ``captured``'s public attributes that are not
    under a lock guard; recurses with the guard state."""
    for node in nodes:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # different execution context
        if isinstance(node, ast.With):
            inner_guarded = guarded or any(
                _is_lock_guard(item) for item in node.items
            )
            yield from _mutations(node.body, captured, inner_guarded)
            continue
        if not guarded and isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == captured
                    and not target.attr.startswith("_")
                ):
                    yield node
        yield from _mutations(list(ast.iter_child_nodes(node)), captured, guarded)


def _captured_names(context: FileContext, callback: CallbackContext) -> List[str]:
    """Which names count as 'the activity' inside this callback.

    ``self`` always does (a thread-target *method* shares its instance
    with the looper); so do enclosing-scope aliases of it, the common
    ``app = self`` closure idiom.
    """
    names = ["self"]
    scope = context.enclosing_function(callback.node)
    while scope is not None:
        for node in getattr(scope, "body", []):
            if isinstance(node, ast.Assign) and (
                isinstance(node.value, ast.Name) and node.value.id in names
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in names:
                        names.append(target.id)
        scope = context.enclosing_function(scope)
    return names


def check(context: FileContext) -> Iterator[Finding]:
    findings: List[Finding] = []
    for callback in context.off_looper_contexts:
        for captured in _captured_names(context, callback):
            for node in _mutations(callback.body, captured, guarded=False):
                where = {
                    "thread-target": "a private thread",
                    "field-listener": "the radio thread",
                    "responder": "the requesting peer's thread",
                }.get(callback.kind, "an off-looper thread")
                findings.append(
                    RULE.finding(
                        context,
                        node,
                        f"{callback.name!r} runs on {where} but mutates "
                        f"captured activity state directly; this races the "
                        "listeners reading it on the main looper",
                    )
                )
    return iter(findings)


RULE = register(
    Rule(
        id="MOR006",
        name="off-looper-state-capture",
        severity=Severity.ERROR,
        summary="thread/radio callbacks assigning to captured activity fields",
        autofix_hint=(
            "post the mutation to the main looper "
            "(device.main_looper.post(lambda: ...)) or guard it with an "
            "explicit lock (with self._lock: ...)"
        ),
        check=check,
    )
)
