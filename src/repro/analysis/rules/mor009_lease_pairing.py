"""MOR009: a lease acquired on some path but not released on every path.

``manager.acquire(...)`` pins a guard record onto the tag; until a
matching ``release()`` (or ``renew()``) the tag rejects other writers.
Forgetting the release on *any* path -- an early ``return``, a caught
exception -- wedges the tag until the lease expires on its own.

The dataflow core runs with exception edges enabled, so the rule can
distinguish "never released" from "not released on an exception path"
(the classic ``acquire(); work(); release()`` without a ``finally``).

Deliberately out of scope (escape analysis, syntactic):

* a lease handle that escapes the function (``return h``, ``self.h =
  h``, passed to another call) is someone else's responsibility;
* ``with manager.acquire(...):`` -- the context manager releases;
* callback-style ``acquire(tag, on_acquired=done)`` where ``done``
  releases or renews (or cannot be resolved locally);
* a manager received as a *parameter* that this function never
  releases anywhere -- the caller owns the lifecycle (the ``async``
  facade's ``acquire()`` helper is the canonical case). A function
  *owns* the pairing -- and is checked -- when it creates the manager
  locally, or when it releases/renews it on at least one path.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.analysis.context import (
    FileContext,
    is_none,
    tail_name,
)
from repro.analysis.dataflow import ResourceAnalysis
from repro.analysis.dataflow.resources import (
    token_exceptional,
    token_kind,
    token_line,
)
from repro.analysis.model import Finding, Rule, Severity, register
from repro.analysis.project import is_lockish

_GUARDISH = ("lease", "lock", "keeper", "guard", "manager", "mgr")
_ACQUIRED_KEYWORDS = ("on_acquired", "on_granted", "on_success")
_BALANCE_VERBS = frozenset({"release", "renew"})


def _guardish(name: str) -> bool:
    lowered = name.lower()
    return is_lockish(lowered) or any(mark in lowered for mark in _GUARDISH)


def _own_walk(fn: ast.AST):
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _escaped_names(fn: ast.AST) -> Set[str]:
    """Bare names whose lease obligations leave this function."""
    escaped: Set[str] = set()
    for node in _own_walk(fn):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if isinstance(node.value, ast.Name):
                escaped.add(node.value.id)
        elif isinstance(node, ast.Assign):
            # Stored onto an object (``self.lease = h``): outlives us.
            if any(isinstance(t, ast.Attribute) for t in node.targets):
                if isinstance(node.value, ast.Name):
                    escaped.add(node.value.id)
        elif isinstance(node, ast.Call):
            # Passed whole to another callable (not as the receiver).
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    escaped.add(arg.id)
            for keyword in node.keywords:
                if isinstance(keyword.value, ast.Name):
                    escaped.add(keyword.value.id)
    return escaped


def _param_names(fn: ast.AST) -> Set[str]:
    args = fn.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return set(names)


def _released_receivers(fn: ast.AST) -> Set[str]:
    """Receivers of release/renew anywhere in ``fn``, nested bodies
    included -- the syntactic ownership signal."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _BALANCE_VERBS
            and isinstance(node.func.value, ast.Name)
        ):
            out.add(node.func.value.id)
    return out


def _with_managed_calls(fn: ast.AST) -> Set[int]:
    """ids of calls used as ``with`` context expressions."""
    managed: Set[int] = set()
    for node in _own_walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    managed.add(id(item.context_expr))
    return managed


def _callback_balances(
    context: FileContext, call: ast.Call, receiver: str
) -> Tuple[bool, bool]:
    """(has_callback, callback_balances_the_lease).

    A callback that cannot be resolved locally counts as balancing --
    silence over noise.
    """
    values: List[ast.AST] = []
    for keyword in call.keywords:
        if keyword.arg in _ACQUIRED_KEYWORDS and not is_none(keyword.value):
            values.append(keyword.value)
    for arg in call.args:
        if isinstance(arg, ast.Lambda):
            values.append(arg)
    if not values:
        return False, False
    for value in values:
        resolved = context.resolve_callable(value, call)
        if resolved is None:
            return True, True  # unknown callee: assume it balances
        body = resolved.body if isinstance(resolved.body, list) else [resolved.body]
        for node in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _BALANCE_VERBS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == receiver
            ):
                return True, True
    return True, False


def _classify_for(context: FileContext, fn: ast.AST):
    escaped = _escaped_names(fn)
    managed = _with_managed_calls(fn)
    params = _param_names(fn)
    released = _released_receivers(fn)

    def classify(call: ast.Call) -> Iterable[Tuple[str, ...]]:
        if not isinstance(call.func, ast.Attribute):
            return
        if not isinstance(call.func.value, ast.Name):
            return
        receiver = call.func.value.id
        verb = call.func.attr
        if verb == "acquire":
            if (
                not _guardish(receiver)
                or receiver in escaped
                or id(call) in managed
            ):
                return
            if receiver in params and receiver not in released:
                return  # caller-owned lifecycle
            has_callback, balances = _callback_balances(context, call, receiver)
            if has_callback and balances:
                return
            yield ("seed", receiver, "held")
        elif verb in _BALANCE_VERBS:
            yield ("clear", receiver)

    return classify


def check(context: FileContext) -> Iterator[Finding]:
    findings: List[Finding] = []
    for fn in ast.walk(context.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        analysis = ResourceAnalysis(
            _classify_for(context, fn), mark_exceptional=True
        )
        result = analysis.run(fn)
        # line -> (key, saw_normal_leak, saw_exceptional_leak)
        leaks: Dict[int, Tuple[str, bool, bool]] = {}
        for key, tokens in result.exit_state.items():
            for token in tokens:
                if token_kind(token) != "held":
                    continue
                line = token_line(token)
                _, normal, exceptional = leaks.get(line, (key, False, False))
                if token_exceptional(token):
                    exceptional = True
                else:
                    normal = True
                leaks[line] = (key, normal, exceptional)
        for line in sorted(leaks):
            key, normal, exceptional = leaks[line]
            anchor = ast.Name(id=key)
            anchor.lineno = line
            anchor.col_offset = 0
            if normal:
                message = (
                    f"lease acquired on {key!r} here is not released (or "
                    "renewed) on every path -- an early return leaks the "
                    "guard record onto the tag"
                )
            else:
                message = (
                    f"lease acquired on {key!r} here leaks on an exception "
                    "path -- release it in a finally block"
                )
            findings.append(RULE.finding(context, anchor, message))
    return iter(findings)


RULE = register(
    Rule(
        id="MOR009",
        name="lease-pairing",
        severity=Severity.ERROR,
        summary="acquire without release/renew on every path (incl. exceptions)",
        autofix_hint=(
            "release the lease in a finally block, or hand it to a callback "
            "/ context manager that does"
        ),
        check=check,
    )
)
