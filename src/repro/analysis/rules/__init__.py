"""The ``morelint`` rule set: one module per rule.

Importing this package registers every rule with the global registry in
:mod:`repro.analysis.model`. A rule module exposes a module-level
``RULE`` built via ``model.register(Rule(...))`` -- adding a rule is
adding a module here and importing it below.
"""

from repro.analysis.rules import (  # noqa: F401 - imported for registration
    mor001_blocking_calls,
    mor002_unpaired_listeners,
    mor003_transient_state,
    mor004_adapter_churn,
    mor005_coalesced_guarded_writes,
    mor006_off_looper_capture,
    mor007_blocking_in_async,
)

ALL_RULE_MODULES = (
    mor001_blocking_calls,
    mor002_unpaired_listeners,
    mor003_transient_state,
    mor004_adapter_churn,
    mor005_coalesced_guarded_writes,
    mor006_off_looper_capture,
    mor007_blocking_in_async,
)
