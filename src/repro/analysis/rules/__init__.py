"""The ``morelint`` rule set: one module per rule.

Importing this package registers every rule with the global registry in
:mod:`repro.analysis.model`. A rule module exposes a module-level
``RULE`` built via ``model.register(Rule(...))`` -- adding a rule is
adding a module here and importing it below.

MOR001-MOR007 are syntactic (per-node pattern matches over the file
context); MOR008-MOR012 are flow- and project-aware, built on the
dataflow core (:mod:`repro.analysis.dataflow`) and the cross-module
index (:mod:`repro.analysis.project`).
"""

from repro.analysis.rules import (  # noqa: F401 - imported for registration
    mor001_blocking_calls,
    mor002_unpaired_listeners,
    mor003_transient_state,
    mor004_adapter_churn,
    mor005_coalesced_guarded_writes,
    mor006_off_looper_capture,
    mor007_blocking_in_async,
    mor008_use_after_halt,
    mor009_lease_pairing,
    mor010_coalesce_fence,
    mor011_lockset,
    mor012_policy_scatter,
)

ALL_RULE_MODULES = (
    mor001_blocking_calls,
    mor002_unpaired_listeners,
    mor003_transient_state,
    mor004_adapter_churn,
    mor005_coalesced_guarded_writes,
    mor006_off_looper_capture,
    mor007_blocking_in_async,
    mor008_use_after_halt,
    mor009_lease_pairing,
    mor010_coalesce_fence,
    mor011_lockset,
    mor012_policy_scatter,
)
