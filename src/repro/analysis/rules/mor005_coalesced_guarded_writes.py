"""MOR005: generic coalescing applied where the guard protocol rules.

Write coalescing collapses queued redundant writes to the newest payload
-- safe for idempotent application state, *unsafe* for protocol records.
Raw writes (``write_raw``) carry lease/lock records that must each
physically reach the tag unless the protocol itself says otherwise;
locking (``make_read_only``) and ``format`` change tag state, not
content. The reference layer already refuses to apply the generic tail
merge to raw writes -- passing ``coalesce=True`` at such a call site
signals the author expects a merge that will never (and must never)
happen, or worse, would reorder a guarded sequence if it did.

Writes through a lease-keeping object (receiver named ``*lease*`` /
``*lock*`` / ``*keeper*``) are judged the same way: a lease renewal has
its own merge rule (latest expiry wins, under the guard), not the
generic tail merge.

The *sanctioned* path is ``write_raw(..., merge_key=...)`` -- the
protocol merge hook, where the protocol layer itself declares two raw
writes equivalent-up-to-latest (a lease renewal's expiry). The hook is
only meaningful on raw writes: ``merge_key`` on a converted ``write`` /
``save_async`` is flagged, because those already have the generic
coalescing rule and a merge key there silently does nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.autofix import drop_keyword_edit, set_keyword_value_edit
from repro.analysis.context import FileContext, call_name, get_keyword, tail_name
from repro.analysis.model import Finding, Rule, Severity, register

_RAW_OR_LOCKED = frozenset({"write_raw", "read_raw", "make_read_only", "format"})
_COALESCIBLE = frozenset({"write", "save_async"})
_GUARDISH = ("lease", "lock", "keeper")

# The future-returning spellings of the same operations: a bare
# ``write_raw_future(ref, msg, ...)`` is the identical radio operation
# as ``ref.write_raw(msg, ...)`` and ``await ref.aio.write_raw(msg)``.
_FUTURE_SPELLINGS = {
    "write_raw_future": "write_raw",
    "read_raw_future": "read_raw",
    "lock_future": "make_read_only",
    "format_future": "format",
    "write_future": "write",
}


def recognize_raw_write(call: ast.Call) -> Tuple[Optional[str], str]:
    """One recognizer for every spelling of the tag-write API.

    Returns ``(canonical_method, receiver_expr)`` -- the canonical
    method name (``write_raw``/``write``/...) and the source-ish name
    of the tag reference it targets -- or ``(None, "")`` when the call
    is not part of the API. Handles ``ref.write_raw(...)``,
    ``ref.aio.write_raw(...)`` (same attribute shape) and the bare
    ``write_raw_future(ref, ...)`` family.
    """
    if isinstance(call.func, ast.Attribute):
        method = call.func.attr
        if method in _RAW_OR_LOCKED or method in _COALESCIBLE:
            return method, call_name(call.func.value)
        return None, ""
    name = tail_name(call.func)
    method = _FUTURE_SPELLINGS.get(name)
    if method is None:
        return None, ""
    receiver = call_name(call.args[0]) if call.args else ""
    return method, receiver


def check(context: FileContext) -> Iterator[Finding]:
    findings: List[Finding] = []
    for call in context.calls:
        method, receiver_name = recognize_raw_write(call)
        if method is None:
            continue
        keyword = get_keyword(call, "coalesce")
        if (
            keyword is not None
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
        ):
            if method in _RAW_OR_LOCKED:
                findings.append(
                    RULE.finding(
                        context,
                        call,
                        f"coalesce=True on {method}(): raw and locking "
                        "operations never take the generic tail merge -- "
                        "protocol writes that are equivalent-up-to-latest "
                        "use write_raw(merge_key=...) instead",
                        # Dropping the keyword is behaviour-preserving:
                        # the reference layer never honoured it here.
                        edits=drop_keyword_edit(context.source, call, "coalesce"),
                    )
                )
            elif method in _COALESCIBLE:
                receiver = receiver_name.lower()
                if any(mark in receiver for mark in _GUARDISH):
                    findings.append(
                        RULE.finding(
                            context,
                            call,
                            f"coalesce=True on {method}() through "
                            f"{receiver_name!r}: lease/lock "
                            "records must respect the guard protocol, not "
                            "the generic tail merge",
                            # save_async coalesces by default, so merely
                            # dropping the keyword would keep the merge:
                            # pin it off instead.
                            edits=set_keyword_value_edit(
                                context.source, call, "coalesce", "False"
                            ),
                        )
                    )
        if method != "write_raw" and get_keyword(call, "merge_key") is not None:
            if method in _COALESCIBLE or method in _RAW_OR_LOCKED:
                findings.append(
                    RULE.finding(
                        context,
                        call,
                        f"merge_key on {method}(): the protocol merge hook "
                        "only exists on write_raw() -- elsewhere the key is "
                        "silently ignored",
                    )
                )
    return iter(findings)


RULE = register(
    Rule(
        id="MOR005",
        name="coalesced-guarded-write",
        severity=Severity.ERROR,
        summary="generic coalescing (or a stray merge_key) on guarded writes",
        autofix_hint=(
            "drop coalesce=True; protocol writes that are equivalent-up-to-"
            "latest (lease renewals) merge via write_raw(merge_key=...)"
        ),
        check=check,
    )
)
