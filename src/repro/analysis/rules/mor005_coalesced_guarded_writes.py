"""MOR005: ``coalesce=True`` on writes that must respect the guard protocol.

Write coalescing collapses queued redundant writes to the newest payload
-- safe for idempotent application state, *unsafe* for protocol records.
Raw writes (``write_raw``) carry lease/lock records that must each
physically reach the tag (the lease guard protocol reads the current
holder before overwriting); locking (``make_read_only``) and ``format``
change tag state, not content. The reference layer already refuses to
coalesce raw writes internally -- passing ``coalesce=True`` at such a
call site signals the author expects a merge that will never (and must
never) happen, or worse, would reorder a guarded sequence if it did.

Writes through a lease-keeping object (receiver named ``*lease*`` /
``*lock*`` / ``*keeper*``) are judged the same way: a lease renewal has
its own merge rule (latest expiry wins, under the guard), not the
generic tail merge.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import FileContext, call_name, get_keyword, tail_name
from repro.analysis.model import Finding, Rule, Severity, register

_RAW_OR_LOCKED = frozenset({"write_raw", "read_raw", "make_read_only", "format"})
_COALESCIBLE = frozenset({"write", "save_async"})
_GUARDISH = ("lease", "lock", "keeper")


def check(context: FileContext) -> Iterator[Finding]:
    findings: List[Finding] = []
    for call in context.calls:
        if not isinstance(call.func, ast.Attribute):
            continue
        keyword = get_keyword(call, "coalesce")
        if keyword is None:
            continue
        if not (
            isinstance(keyword.value, ast.Constant) and keyword.value.value is True
        ):
            continue
        method = tail_name(call.func)
        if method in _RAW_OR_LOCKED:
            findings.append(
                RULE.finding(
                    context,
                    call,
                    f"coalesce=True on {method}(): raw and locking "
                    "operations never coalesce -- each must physically "
                    "reach the tag (lease guard protocol)",
                )
            )
        elif method in _COALESCIBLE:
            receiver = call_name(call.func.value).lower()
            if any(mark in receiver for mark in _GUARDISH):
                findings.append(
                    RULE.finding(
                        context,
                        call,
                        f"coalesce=True on {method}() through "
                        f"{call_name(call.func.value)!r}: lease/lock records "
                        "must respect the guard protocol, not the generic "
                        "tail merge",
                    )
                )
    return iter(findings)


RULE = register(
    Rule(
        id="MOR005",
        name="coalesced-guarded-write",
        severity=Severity.ERROR,
        summary="coalesce=True on raw/locked/lease writes",
        autofix_hint=(
            "drop coalesce=True; lease renewals collapse via the leasing "
            "layer's own latest-expiry rule, raw writes must all land"
        ),
        check=check,
    )
)
