"""MOR001: blocking call on the main looper.

Every MORENA listener runs on the activity's main looper (paper section
3.2) -- that is the whole point of the asynchronous reference API.
Calling ``time.sleep``, waiting on a future, or doing synchronous
socket/file I/O inside a listener body therefore freezes the UI *and*
every other listener of the device, silently re-introducing the
blocking-I/O failure mode the middleware exists to prevent.
``OperationFuture.result`` says it outright: "Never call this from the
activity's main thread".
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import FileContext, call_name, tail_name
from repro.analysis.model import Finding, Rule, Severity, register

# Bare or dotted call targets that always block.
_BLOCKING_NAMES = frozenset(
    {
        "time.sleep",
        "sleep",
        "wait_until",
        "open",
        "input",
        "urllib.request.urlopen",
        "urlopen",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

# Attribute calls that block regardless of the receiver.
_BLOCKING_ATTRS = frozenset(
    {
        "wait_for_count",  # EventLog
        "communicate",  # subprocess
    }
)

# Socket verbs block only when the receiver smells like a socket --
# ``thing.connect(wifi)`` is an application method, ``sock.connect`` is I/O.
_SOCKET_ATTRS = frozenset({"recv", "recvfrom", "accept", "connect", "sendall"})
_SOCKETISH = ("sock", "conn")

# Attribute calls that block when the receiver smells like a future or a
# thread ('.get()' alone would drown in dict lookups).
_FUTURE_ATTRS = frozenset({"get", "result"})
_FUTUREISH = ("future", "fut", "promise")
_THREAD_ATTRS = frozenset({"join"})
_THREADISH = ("thread", "worker", "looper")
# Condition/event style waits -- blocking whoever the receiver is.
_WAIT_ATTRS = frozenset({"wait", "wait_for", "wait_idle", "sync"})


def _receiver_text(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return call_name(node.func.value).lower()
    return ""


def is_blocking_call(call: ast.Call) -> bool:
    """Shared blocking-call matcher (also used by MOR007)."""
    dotted = call_name(call.func)
    if dotted in _BLOCKING_NAMES:
        return True
    if not isinstance(call.func, ast.Attribute):
        return False
    attr = tail_name(call.func)
    if attr in _BLOCKING_ATTRS or attr in _WAIT_ATTRS:
        return True
    receiver = _receiver_text(call)
    if attr in _SOCKET_ATTRS and any(mark in receiver for mark in _SOCKETISH):
        return True
    if attr in _FUTURE_ATTRS and (
        any(mark in receiver for mark in _FUTUREISH) or receiver.endswith("_future()")
    ):
        return True
    if attr in _THREAD_ATTRS and any(mark in receiver for mark in _THREADISH):
        return True
    return False


def check(context: FileContext) -> Iterator[Finding]:
    findings: List[Finding] = []
    for callback in context.looper_contexts:
        for node in callback.walk():
            if isinstance(node, ast.Call) and is_blocking_call(node):
                findings.append(
                    RULE.finding(
                        context,
                        node,
                        f"blocking call {call_name(node.func)!r} inside "
                        f"{callback.name!r}, which runs on the main looper; "
                        "this freezes the UI and every other listener",
                    )
                )
    return iter(findings)


RULE = register(
    Rule(
        id="MOR001",
        name="blocking-call-on-looper",
        severity=Severity.ERROR,
        summary="time.sleep / future waits / sync I/O inside a listener body",
        autofix_hint=(
            "use the asynchronous API (read/write/save_async with listeners) "
            "or move the blocking work off the looper and post the result back"
        ),
        check=check,
    )
)
