"""MOR008: using a reference after halting it, or a lease after release.

``TagReference.stop()`` tears the reference's event loop down; every
subsequent operation on it is dead code at best and a hang at worst
(the posted transaction never drains). Likewise a released lease is
gone: renewing or writing under it re-guards nothing.

This is the first *flow-sensitive* morelint rule: the dataflow core
tracks "halted"/"released" state per receiver along every path, so

* a halt inside one ``if`` branch taints only that branch -- re-binding
  the name or halting *after* the last use stays silent, and
* the halt may happen in a *different function*: ``retire(ref)`` whose
  body calls ``ref.stop()`` seeds the same state at the call site, via
  the project index's parameter-effect summaries.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.analysis.context import FileContext, tail_name
from repro.analysis.dataflow import ResourceAnalysis, receiver_key
from repro.analysis.dataflow.resources import dotted_name, token_kind, token_line
from repro.analysis.model import Finding, Rule, Severity, register
from repro.analysis.project import get_summary, index_for, is_lockish

_HALT_VERBS = frozenset({"stop", "halt"})
# Operations that require a live reference / lease.
_USE_VERBS = frozenset(
    {
        "read",
        "write",
        "read_raw",
        "write_raw",
        "make_read_only",
        "format",
        "save_async",
        "refresh_async",
        "broadcast",
        "renew",
        "write_guarded",
    }
)
_GUARDISH = ("lease", "lock", "keeper", "guard")


def _guardish(name: str) -> bool:
    lowered = name.lower()
    return is_lockish(lowered) or any(mark in lowered for mark in _GUARDISH)


def _classify_for(context: FileContext):
    index = index_for(context)
    local = get_summary(context)

    def classify(call: ast.Call) -> Iterable[Tuple[str, ...]]:
        if isinstance(call.func, ast.Attribute):
            verb = call.func.attr
            key = receiver_key(call)
            if not key:
                return
            if verb in _HALT_VERBS:
                yield ("seed", key, "halted")
                return
            if verb == "release" and _guardish(key):
                yield ("seed", key, "released")
                return
            if verb == "acquire":
                yield ("clear", key)
                return
            if verb in _USE_VERBS:
                yield ("use", key)
                return
            # ``self.retire(ref)`` -- a method of this class may halt
            # its argument; fall through to the effect lookup.
            if key != "self":
                return
            effect = index.function_effect(verb, local)
        else:
            name = tail_name(call.func)
            if not name:
                return
            effect = index.function_effect(name, local)
        if effect is None:
            return
        for position in effect.halts:
            if position < len(call.args):
                arg = dotted_name(call.args[position])
                if arg:
                    yield ("seed", arg, "halted")
        for position in effect.releases:
            if position < len(call.args):
                arg = dotted_name(call.args[position])
                if arg:
                    yield ("seed", arg, "released")

    return classify


def check(context: FileContext) -> Iterator[Finding]:
    analysis = ResourceAnalysis(_classify_for(context))
    findings: List[Finding] = []
    seen: set = set()
    for fn in ast.walk(context.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        result = analysis.run(fn)
        for use in result.uses:
            # Earliest seed per kind tells the cleanest story.
            lines: Dict[str, int] = {}
            for token in use.tokens:
                kind = token_kind(token)
                line = token_line(token)
                if kind not in lines or line < lines[kind]:
                    lines[kind] = line
            for kind in sorted(lines):
                at = (use.call.lineno, use.call.col_offset, use.key, kind)
                if at in seen:
                    continue
                seen.add(at)
                what = tail_name(use.call.func)
                if kind == "halted":
                    message = (
                        f"{use.key}.{what}() may run after {use.key} was "
                        f"halted at line {lines[kind]}; a stopped reference "
                        "never drains its transaction queue"
                    )
                else:
                    message = (
                        f"{use.key}.{what}() may run after {use.key} was "
                        f"released at line {lines[kind]}; a released lease "
                        "guards nothing -- re-acquire first"
                    )
                findings.append(RULE.finding(context, use.call, message))
    return iter(findings)


RULE = register(
    Rule(
        id="MOR008",
        name="use-after-halt",
        severity=Severity.ERROR,
        summary="operation on a halted reference or released lease (flow-sensitive)",
        autofix_hint=(
            "move the stop()/release() after the last use, or re-acquire "
            "before reusing the guard"
        ),
        check=check,
    )
)
