"""MOR003: unserializable state in a ``Thing`` without ``__transient__``.

Every public attribute of a ``Thing`` is serialized to JSON when the
thing is saved to a tag (paper section 2: GSON plus ``transient``).
Locks, threads, callables and open handles cannot survive that trip --
serialization either raises at the worst possible moment (inside an
asynchronous save) or, worse, writes garbage a *hostile* tag can feed
back (Trojan-of-Things). Such fields must be named in ``__transient__``
or stored under a ``_``-prefixed name.

The symmetric misuse is a ``__transient__`` entry naming no field at
all: a typo there silently serializes the field it meant to skip.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.autofix import transient_declaration_edit
from repro.analysis.context import FileContext, ThingClass, call_name, tail_name
from repro.analysis.model import Finding, Rule, Severity, register

# Constructor tails that produce state JSON cannot hold.
_UNSERIALIZABLE_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Barrier",
        "Thread",
        "Timer",
        "Queue",
        "LifoQueue",
        "PriorityQueue",
        "SimpleQueue",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "Popen",
        "socket",
    }
)


def _unserializable_reason(value: ast.AST) -> str:
    if isinstance(value, ast.Lambda):
        return "a lambda (callables do not serialize)"
    if isinstance(value, ast.Call):
        name = call_name(value.func)
        tail = tail_name(value.func)
        if tail in _UNSERIALIZABLE_FACTORIES:
            return f"{name}() (runtime state does not serialize)"
        if name == "open" or name.endswith(".open"):
            return f"{name}() (open handles do not serialize)"
    return ""


def _local_chain(
    thing: ThingClass, by_name: Dict[str, ThingClass]
) -> List[ThingClass]:
    """``thing`` plus its in-file ancestors, nearest first."""
    chain: List[ThingClass] = []
    seen: Set[str] = set()
    stack = [thing]
    while stack:
        current = stack.pop(0)
        if current.node.name in seen:
            continue
        seen.add(current.node.name)
        chain.append(current)
        for base in current.node.bases:
            base_name = tail_name(base)
            if base_name in by_name:
                stack.append(by_name[base_name])
    return chain


def check(context: FileContext) -> Iterator[Finding]:
    findings: List[Finding] = []
    by_name = {thing.node.name: thing for thing in context.thing_classes}
    for thing in context.thing_classes:
        chain = _local_chain(thing, by_name)
        effective_transients: Set[str] = set()
        known_fields: Set[str] = set()
        for ancestor in chain:
            effective_transients.update(ancestor.transients)
            known_fields.update(ancestor.fields)

        flagged: List[tuple] = []
        for field_name, node in sorted(thing.fields.items()):
            if field_name.startswith("_") or field_name in effective_transients:
                continue
            value = getattr(node, "value", None)
            if value is None:
                continue
            reason = _unserializable_reason(value)
            if reason:
                flagged.append((field_name, node, reason))
        if flagged:
            # One combined edit covering every flagged field of this
            # class, shared by all its findings: duplicate edits
            # collapse on application, so --fix rewrites the
            # declaration once. Runtime unions __transient__ across the
            # MRO, so inserting a subclass-local declaration is safe.
            edits = transient_declaration_edit(
                context.source,
                thing.node,
                thing.transient_node,
                thing.transients,
                [field_name for field_name, _, _ in flagged],
            )
            for field_name, node, reason in flagged:
                findings.append(
                    RULE.finding(
                        context,
                        node,
                        f"{thing.node.name}.{field_name} holds {reason} but "
                        "is not listed in __transient__; saving this thing "
                        "to a tag will fail or leak runtime state",
                        edits=edits,
                    )
                )

        # Typo detection: a declared transient that names no field. Only
        # the class's *own* declaration is judged -- inherited names are
        # the base's business (subclass unions are legitimate).
        for name in thing.transients:
            if name not in known_fields:
                findings.append(
                    RULE.finding(
                        context,
                        thing.transient_node or thing.node,
                        f"__transient__ entry {name!r} on {thing.node.name} "
                        "names no field; a typo here silently serializes "
                        "the field it meant to skip",
                        autofix_hint=(
                            "fix the name to match an assigned field, or "
                            "delete the stale entry"
                        ),
                    )
                )
    return iter(findings)


RULE = register(
    Rule(
        id="MOR003",
        name="unserializable-thing-state",
        severity=Severity.ERROR,
        summary="Thing fields holding locks/threads/handles outside __transient__",
        autofix_hint=(
            "add the field to __transient__ (and rebuild it after "
            "deserialization) or store it under a _-prefixed name"
        ),
        check=check,
    )
)
