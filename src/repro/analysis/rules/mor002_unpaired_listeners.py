"""MOR002: asynchronous call missing the failure half of its listener pair.

The paper's API deliberately splits success and failure into two
first-class listeners (section 2.2) and every asynchronous operation can
time out -- a tag write races the user pulling the phone away. A call
site that registers the success listener but no failure listener has
decided the happy path matters and the timeout path does not: the user
taps, nothing happens, and the application never learns why.

Thing-level calls (``save_async`` / ``refresh_async`` / ``broadcast`` /
``initialize`` / ``beam``) are the paper's headline pairs and report as
errors; reference-level calls (``read`` / ``write`` / ...) report as
warnings, because protocol layers sometimes observe failure elsewhere
(e.g. through the operation object). A call passing *neither* listener
is deliberate fire-and-forget and stays silent.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.autofix import add_failure_stub_edit
from repro.analysis.context import FileContext
from repro.analysis.model import Finding, Rule, Severity, register

# The keyword the failure half travels under, per method; everything
# else in ASYNC_PAIR_METHODS takes plain ``on_failed``.
_FAILURE_KEYWORD_EXCEPTIONS = {"initialize": "on_save_failed"}


def check(context: FileContext) -> Iterator[Finding]:
    findings: List[Finding] = []
    for site in context.async_calls:
        if not site.has_success or site.has_failure:
            continue
        severity = Severity.ERROR if site.thing_level else Severity.WARNING
        keyword = _FAILURE_KEYWORD_EXCEPTIONS.get(site.method, "on_failed")
        findings.append(
            RULE.finding(
                context,
                site.node,
                f"{site.method}() registers a success listener but no "
                "failure listener; the timeout path is silent",
                severity=severity,
                # The stub keeps behaviour identical while making the
                # ignored-timeout decision explicit and grep-able.
                edits=add_failure_stub_edit(context.source, site.node, keyword),
            )
        )
    return iter(findings)


RULE = register(
    Rule(
        id="MOR002",
        name="unpaired-listener",
        severity=Severity.ERROR,
        summary="success listener registered without its failure half",
        autofix_hint=(
            "pass on_failed=... alongside the success listener (different "
            "success listeners may share one failure listener)"
        ),
        check=check,
    )
)
