"""Cross-module facts for ``morelint``'s project-aware rules.

A :class:`FileSummary` is the *picklable* digest of one parsed file --
no AST nodes, just names, lines and effect tuples -- so the engine can
build summaries in worker processes and broadcast the merged
:class:`ProjectIndex` back out for the lint phase.

What the flow rules pull from here:

* **Parameter effects** (MOR008): ``def retire(ref): ref.stop()``
  summarizes as "halts parameter 0", so a caller's ``retire(r)`` seeds
  the same halted state a literal ``r.stop()`` would -- the lightweight
  call graph that lets use-after-halt cross function and module
  boundaries.
* **Class lock disciplines** (MOR011): which attributes a class (or,
  via the base-name hierarchy, its ancestors) writes while holding a
  lock -- so a subclass in another file writing the same attribute
  bare is a lockset violation.
* **Policy sites** (MOR012): every call site pinning a distribution-
  policy knob (``coalesce=`` / ``tx_policy=`` / retry knobs) to a
  literal, counted project-wide to detect scattering.

Resolution is name-based like the rest of morelint: a bare call
resolves to the same-file function first, then to a project-wide
function of that name when exactly one exists. Ambiguity resolves to
"no effect" -- silence over noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.context import FileContext, tail_name

# Receiver/attribute names that smell like a mutual-exclusion guard.
LOCKISH_MARKS = ("lock", "mutex", "monitor")

# Distribution-policy keywords that belong in a policy object when they
# recur across call sites (MOR012).
POLICY_KEYWORDS = frozenset(
    {"coalesce", "tx_policy", "retry", "retries", "retry_policy", "max_retries", "backoff"}
)

# Calls that *are* the consolidated policy object -- configuring one of
# these is the fix, not the smell.
_POLICY_CONSTRUCTORS = ("policy",)


def is_lockish(name: str) -> bool:
    lowered = name.lower()
    return any(mark in lowered for mark in LOCKISH_MARKS)


@dataclass(frozen=True)
class ParamEffect:
    """Which positional parameters a function halts / releases."""

    halts: Tuple[int, ...] = ()
    releases: Tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.halts or self.releases)


@dataclass(frozen=True)
class PolicySite:
    flag: str
    line: int
    function: str  # enclosing function qualname, or "<module>"


@dataclass
class ClassSummary:
    name: str
    bases: Tuple[str, ...]
    # attribute -> lock names it is written under somewhere in this class
    locked_attrs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


@dataclass
class FileSummary:
    path: str
    # "fn" or "Class.method" -> effect (only non-empty effects stored)
    param_effects: Dict[str, ParamEffect] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    policy_sites: List[PolicySite] = field(default_factory=list)


# -- extraction ----------------------------------------------------------------


def _own_body_walk(fn: ast.AST):
    """Nodes of ``fn``'s body, excluding nested function/lambda bodies."""
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _param_effect(fn: ast.AST, skip_self: bool) -> ParamEffect:
    args = fn.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    if skip_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    if not names:
        return ParamEffect()
    index = {name: i for i, name in enumerate(names)}
    halts: Set[int] = set()
    releases: Set[int] = set()
    for node in _own_body_walk(fn):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        receiver = node.func.value
        if not isinstance(receiver, ast.Name) or receiver.id not in index:
            continue
        verb = node.func.attr
        if verb in ("stop", "halt"):
            halts.add(index[receiver.id])
        elif verb == "release":
            releases.add(index[receiver.id])
    return ParamEffect(tuple(sorted(halts)), tuple(sorted(releases)))


def lock_names_held_at(context: FileContext, node: ast.AST) -> Tuple[str, ...]:
    """Names of lock-smelling ``with`` contexts enclosing ``node``."""
    held: List[str] = []
    current = context.parent(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):  # with lock.acquire_timeout(...)
                    expr = expr.func
                name = tail_name(expr)
                if name and is_lockish(name):
                    held.append(name)
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            break  # a lock held by an enclosing *function* is not ours
        current = context.parent(current)
    return tuple(held)


def _self_attr_writes(method: ast.AST):
    """(attr, node) for every ``self.attr`` assignment in ``method``."""
    for node in _own_body_walk(method):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, node


def _class_summary(context: FileContext, node: ast.ClassDef) -> ClassSummary:
    summary = ClassSummary(
        name=node.name, bases=tuple(tail_name(base) for base in node.bases)
    )
    locked: Dict[str, Set[str]] = {}
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for attr, write in _self_attr_writes(item):
            locks = lock_names_held_at(context, write)
            if locks:
                locked.setdefault(attr, set()).update(locks)
    summary.locked_attrs = {
        attr: tuple(sorted(names)) for attr, names in locked.items()
    }
    return summary


def _is_policy_constructor(call: ast.Call) -> bool:
    name = tail_name(call.func).lower()
    return any(mark in name for mark in _POLICY_CONSTRUCTORS)


def _enclosing_function_name(context: FileContext, node: ast.AST) -> str:
    fn = context.enclosing_function(node)
    if fn is None:
        return "<module>"
    if isinstance(fn, ast.Lambda):
        return f"<lambda:{fn.lineno}>"
    klass = context.enclosing_class(fn)
    return f"{klass.name}.{fn.name}" if klass is not None else fn.name


def _policy_sites(context: FileContext) -> List[PolicySite]:
    sites: List[PolicySite] = []
    for call in context.calls:
        if _is_policy_constructor(call):
            continue
        for keyword in call.keywords:
            if keyword.arg not in POLICY_KEYWORDS:
                continue
            # Only *literal* pins count: forwarding a parameter
            # (``coalesce=coalesce``) or an attribute of a policy
            # object is already parameterized.
            if not isinstance(keyword.value, ast.Constant):
                continue
            sites.append(
                PolicySite(
                    flag=keyword.arg,
                    line=call.lineno,
                    function=_enclosing_function_name(context, call),
                )
            )
    return sites


def summarize(context: FileContext) -> FileSummary:
    """Digest one parsed file into its picklable cross-module facts."""
    summary = FileSummary(path=context.path)
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ClassDef):
            summary.classes[node.name] = _class_summary(context, node)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    effect = _param_effect(item, skip_self=True)
                    if effect:
                        summary.param_effects[f"{node.name}.{item.name}"] = effect
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if context.enclosing_class(node) is None:
                effect = _param_effect(node, skip_self=False)
                if effect:
                    summary.param_effects.setdefault(node.name, effect)
    summary.policy_sites = _policy_sites(context)
    return summary


def get_summary(context: FileContext) -> FileSummary:
    """The file's own summary: from the project index when the engine
    attached one, otherwise computed (and cached) on the context."""
    project = getattr(context, "project", None)
    if project is not None:
        known = project.files.get(context.path)
        if known is not None:
            return known
    cached = getattr(context, "_local_summary", None)
    if cached is None:
        cached = summarize(context)
        context._local_summary = cached
    return cached


# -- the merged index ----------------------------------------------------------


class ProjectIndex:
    """Every file's summary plus merged cross-module resolution."""

    def __init__(self, summaries: List[FileSummary]) -> None:
        self.files: Dict[str, FileSummary] = {s.path: s for s in summaries}
        # tail name -> effects seen project-wide (for unique resolution)
        self._fn_effects: Dict[str, List[ParamEffect]] = {}
        self._classes: Dict[str, List[ClassSummary]] = {}
        for summary in summaries:
            for qualname, effect in summary.param_effects.items():
                tail = qualname.rsplit(".", 1)[-1]
                self._fn_effects.setdefault(tail, []).append(effect)
                if "." in qualname:
                    self._fn_effects.setdefault(qualname, []).append(effect)
            for name, klass in summary.classes.items():
                self._classes.setdefault(name, []).append(klass)

    def function_effect(
        self, name: str, local: Optional[FileSummary] = None
    ) -> Optional[ParamEffect]:
        """Effect of calling ``name``: same-file match first, then the
        unique project-wide match; ambiguity resolves to ``None``."""
        if local is not None and name in local.param_effects:
            return local.param_effects[name]
        candidates = self._fn_effects.get(name, [])
        if len(set(candidates)) == 1:
            return candidates[0]
        return None

    def class_locked_attrs(
        self, class_name: str, _seen: Optional[Set[str]] = None
    ) -> Dict[str, Tuple[str, ...]]:
        """Lock-guarded attributes of ``class_name`` merged over its
        transitive (name-resolved) base classes."""
        seen = _seen if _seen is not None else set()
        if class_name in seen:
            return {}
        seen.add(class_name)
        merged: Dict[str, Tuple[str, ...]] = {}
        for klass in self._classes.get(class_name, []):
            for attr, locks in klass.locked_attrs.items():
                merged.setdefault(attr, locks)
            for base in klass.bases:
                for attr, locks in self.class_locked_attrs(base, seen).items():
                    merged.setdefault(attr, locks)
        return merged

    def policy_scatter(self) -> Tuple[int, int, Dict[str, int]]:
        """(total sites, distinct functions, per-flag counts) project-wide."""
        functions: Set[Tuple[str, str]] = set()
        per_flag: Dict[str, int] = {}
        total = 0
        for summary in self.files.values():
            for site in summary.policy_sites:
                total += 1
                functions.add((summary.path, site.function))
                per_flag[site.flag] = per_flag.get(site.flag, 0) + 1
        return total, len(functions), per_flag


def index_for(context: FileContext) -> ProjectIndex:
    """The engine-attached project index, or a single-file index built
    from the context alone (the ``lint_source`` / unit-test path)."""
    project = getattr(context, "project", None)
    if project is not None:
        return project
    return ProjectIndex([get_summary(context)])
