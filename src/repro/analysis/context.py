"""Per-file analysis context shared by every ``morelint`` rule.

The context parses one Python source file and precomputes the facts the
rules keep asking for:

* **Looper contexts** -- function bodies that MORENA executes on the
  activity's main looper: overridden listener methods
  (``when_discovered``, ``on_beam_received``, ``on_tag_detected``, ...),
  ``signal`` overrides of ``Listener`` subclasses, and inline callables
  passed as success/failure listeners to the asynchronous API
  (``save_async``, ``write``, ``beam``, ...). Blocking inside one of
  these bodies blocks the whole UI (MOR001) and re-registering adapters
  there defeats the plan cache (MOR004).
* **Off-looper contexts** -- function bodies that explicitly run on
  *other* threads: ``threading.Thread`` targets, raw field listeners
  (``add_field_listener`` / ``add_tag_listener`` run on the radio
  thread), and negotiated-handover responders (run on the requesting
  device's thread). Touching the activity's mutable state there without
  going through the looper is a data race (MOR006).
* **Thing classes** -- classes transitively derived from ``Thing``
  (name-based, fixpoint within the file), with their ``__transient__``
  declarations and ``self.x = ...`` field assignments (MOR003).
* **Async contexts** -- every ``async def`` body in the file. A
  coroutine runs on an event loop by definition; a blocking call inside
  one stalls every other coroutine and reactor task on that loop
  (MOR007).

Resolution is intentionally name-based: ``morelint`` analyzes files in
isolation (no imports are executed), trading a sliver of precision for
the ability to lint any file, broken imports and all.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

# Inline suppression pragmas::
#
#     risky_call()  # morelint: disable=MOR001,MOR008
#     # morelint: disable-file=MOR012     (anywhere in the file)
#
# ``disable=all`` / ``disable-file=all`` silence every rule.
_PRAGMA_RE = re.compile(
    r"#\s*morelint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

# Methods MORENA invokes on the main looper when overridden.
LISTENER_METHODS = frozenset(
    {
        "when_discovered",
        "when_discovered_empty",
        "on_tag_detected",
        "on_tag_redetected",
        "on_empty_tag_detected",
        "on_tag_lost",
        "on_beam_received",
        "on_beam_received_from",
        "signal",  # Listener.signal overrides
    }
)

# The asynchronous calls that take a success/failure listener pair, and
# the keyword each half travels under. Positional listener passing also
# exists for the first two slots after any payload argument; see
# :meth:`FileContext._listener_values`.
SUCCESS_KEYWORDS = frozenset(
    {
        "on_saved",
        "on_read",
        "on_written",
        "on_success",
        "on_refreshed",
        "on_locked",
        "on_formatted",
        "on_discovered",
    }
)
FAILURE_KEYWORDS = frozenset({"on_failed", "on_failure", "on_save_failed"})
LISTENER_KEYWORDS = SUCCESS_KEYWORDS | FAILURE_KEYWORDS

# method name -> True when the first positional argument is a payload
# (the listeners start at slot 1), False when listeners start at slot 0.
ASYNC_PAIR_METHODS: Dict[str, bool] = {
    "save_async": False,
    "refresh_async": False,
    "broadcast": False,
    "initialize": True,  # EmptyRecord.initialize(thing, on_saved, on_save_failed)
    "beam": True,  # Beamer.beam(obj, on_success, on_failed)
    "read": False,
    "read_raw": False,
    "write": True,
    "write_raw": True,
    "make_read_only": False,
    "format": False,
}

# The thing-level half of the API: the paper's headline success+failure
# listener pairs. Reference-level calls degrade to warnings in MOR002.
THING_LEVEL_METHODS = frozenset(
    {"save_async", "refresh_async", "broadcast", "initialize", "beam"}
)

# Registrations whose callbacks run *off* the main looper.
OFF_LOOPER_REGISTRARS = frozenset(
    {
        "add_field_listener",
        "add_tag_listener",
        "set_handover_responder",
        "set_snep_get_provider",
    }
)


@dataclass(frozen=True)
class CallbackContext:
    """One function body together with the thread it runs on."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    kind: str  # "listener-method" | "listener-arg" | "thread-target"
    #          | "field-listener" | "responder" | "coroutine"
    name: str
    enclosing_class: Optional[str] = None

    @property
    def body(self) -> List[ast.AST]:
        if isinstance(self.node, ast.Lambda):
            return [self.node.body]
        return list(self.node.body)

    def walk(self) -> Iterator[ast.AST]:
        """Every node inside this body, *excluding* nested function
        bodies (a nested callable runs whenever *it* is scheduled)."""
        stack: List[ast.AST] = list(self.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # different execution context
            stack.extend(ast.iter_child_nodes(node))


@dataclass
class AsyncCallSite:
    """One call into the asynchronous listener-pair API."""

    node: ast.Call
    method: str
    has_success: bool
    has_failure: bool

    @property
    def thing_level(self) -> bool:
        return self.method in THING_LEVEL_METHODS


@dataclass
class ThingClass:
    """A class (transitively) derived from ``Thing`` in this file."""

    node: ast.ClassDef
    transients: Tuple[str, ...]
    transient_node: Optional[ast.AST]
    # field name -> first assignment node (``self.x = ...`` anywhere in
    # the class body, plus bare class-level annotations).
    fields: Dict[str, ast.AST] = field(default_factory=dict)


def call_name(node: ast.AST) -> str:
    """Dotted name of a call target: ``a.b.c(...)`` -> ``"a.b.c"``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        inner = call_name(node.func)
        parts.append(f"{inner}()" if inner else "()")
    return ".".join(reversed(parts))


def tail_name(node: ast.AST) -> str:
    """Last segment of a call target: ``a.b.c(...)`` -> ``"c"``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def get_keyword(node: ast.Call, name: str) -> Optional[ast.keyword]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword
    return None


def is_none(node: Optional[ast.AST]) -> bool:
    return node is None or (isinstance(node, ast.Constant) and node.value is None)


class FileContext:
    """Parsed source plus the precomputed rule inputs described above."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        # The engine attaches the cross-module ProjectIndex here before
        # running rules; single-file callers leave it None and rules
        # fall back to file-local facts (see repro.analysis.project).
        self.project = None
        self.line_pragmas: Dict[int, Set[str]] = {}
        self.file_pragmas: Set[str] = set()
        self._collect_pragmas()
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.calls: List[ast.Call] = [
            node for node in ast.walk(self.tree) if isinstance(node, ast.Call)
        ]
        self.looper_contexts: List[CallbackContext] = []
        self.off_looper_contexts: List[CallbackContext] = []
        self.async_contexts: List[CallbackContext] = []
        self.async_calls: List[AsyncCallSite] = []
        self.thing_classes: List[ThingClass] = []
        self._collect_listener_methods()
        self._collect_async_calls_and_inline_listeners()
        self._collect_off_looper_contexts()
        self._collect_async_contexts()
        self._collect_thing_classes()

    # -- pragmas --------------------------------------------------------------

    def _collect_pragmas(self) -> None:
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _PRAGMA_RE.search(line)
            if match is None:
                continue
            rules = {
                rule.strip().upper() if rule.strip().lower() != "all" else "all"
                for rule in match.group("rules").split(",")
            }
            if match.group("scope") == "disable-file":
                self.file_pragmas |= rules
            else:
                self.line_pragmas.setdefault(lineno, set()).update(rules)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether a finding of ``rule_id`` at ``line`` is pragma-silenced."""
        if "all" in self.file_pragmas or rule_id in self.file_pragmas:
            return True
        at_line = self.line_pragmas.get(line)
        return at_line is not None and ("all" in at_line or rule_id in at_line)

    # -- generic helpers ------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A class nested inside a method belongs to that class,
                # but a method's enclosing class is found by skipping
                # only function frames directly under the ClassDef.
                pass
            current = self._parents.get(current)
        return None

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return current
            current = self._parents.get(current)
        return None

    def resolve_callable(
        self, value: ast.AST, near: ast.AST
    ) -> Optional[ast.AST]:
        """Map a listener argument value to a function body, if local.

        ``lambda`` -> itself; a bare name -> the nearest enclosing-scope
        ``def`` of that name; ``self.method`` -> the method of the
        enclosing class. Anything else (imported callables, instances)
        resolves to ``None``.
        """
        if isinstance(value, ast.Lambda):
            return value
        if isinstance(value, ast.Name):
            scope: Optional[ast.AST] = self.enclosing_function(near)
            while scope is not None:
                found = _find_def(scope, value.id)
                if found is not None:
                    return found
                scope = self.enclosing_function(scope)
            return _find_def(self.tree, value.id)
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            klass = self.enclosing_class(near)
            if klass is not None:
                return _find_def(klass, value.attr)
        return None

    # -- collection passes ----------------------------------------------------

    def _collect_listener_methods(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name in LISTENER_METHODS
                ):
                    self.looper_contexts.append(
                        CallbackContext(
                            node=item,
                            kind="listener-method",
                            name=f"{node.name}.{item.name}",
                            enclosing_class=node.name,
                        )
                    )

    def _listener_values(
        self, call: ast.Call, method: str
    ) -> Tuple[List[ast.AST], bool, bool]:
        """The listener argument values of one async call, plus whether
        the success / failure half is present (non-None).

        Positional arguments only count when they *look* like callbacks
        (a lambda, or a name like ``on_saved`` / ``done_callback``) --
        several internal synchronous APIs share method names with the
        async layer (``port.make_read_only(tag)``) and must not have
        their payload argument mistaken for a success listener.
        """
        skip = 1 if ASYNC_PAIR_METHODS[method] else 0
        positional = call.args[skip : skip + 2]  # (success, failure) slots
        values: List[ast.AST] = [
            arg for arg in positional if _looks_like_listener(arg)
        ]
        has_success = len(positional) >= 1 and _looks_like_listener(positional[0])
        has_failure = len(positional) >= 2 and _looks_like_listener(positional[1])
        for keyword in call.keywords:
            if keyword.arg in LISTENER_KEYWORDS and not is_none(keyword.value):
                values.append(keyword.value)
                if keyword.arg in SUCCESS_KEYWORDS:
                    has_success = True
                else:
                    has_failure = True
        return values, has_success, has_failure

    def _collect_async_calls_and_inline_listeners(self) -> None:
        seen: Set[ast.AST] = set()
        for call in self.calls:
            method = tail_name(call.func)
            if method not in ASYNC_PAIR_METHODS:
                continue
            # Only attribute calls (obj.method) count -- a bare
            # ``format(...)`` is the builtin, not the tag API.
            if not isinstance(call.func, ast.Attribute):
                continue
            values, has_success, has_failure = self._listener_values(call, method)
            self.async_calls.append(
                AsyncCallSite(call, method, has_success, has_failure)
            )
            for value in values:
                resolved = self.resolve_callable(value, call)
                if resolved is None or resolved in seen:
                    continue
                seen.add(resolved)
                klass = self.enclosing_class(resolved)
                name = (
                    resolved.name
                    if isinstance(resolved, (ast.FunctionDef, ast.AsyncFunctionDef))
                    else f"<lambda:{value.lineno}>"
                )
                self.looper_contexts.append(
                    CallbackContext(
                        node=resolved,
                        kind="listener-arg",
                        name=name,
                        enclosing_class=klass.name if klass else None,
                    )
                )

    def _collect_off_looper_contexts(self) -> None:
        seen: Set[ast.AST] = set()

        def add(value: ast.AST, near: ast.AST, kind: str) -> None:
            resolved = self.resolve_callable(value, near)
            if resolved is None or resolved in seen:
                return
            seen.add(resolved)
            klass = self.enclosing_class(resolved)
            name = (
                resolved.name
                if isinstance(resolved, (ast.FunctionDef, ast.AsyncFunctionDef))
                else f"<lambda:{value.lineno}>"
            )
            self.off_looper_contexts.append(
                CallbackContext(
                    node=resolved,
                    kind=kind,
                    name=name,
                    enclosing_class=klass.name if klass else None,
                )
            )

        for call in self.calls:
            name = call_name(call.func)
            method = tail_name(call.func)
            if name.endswith("Thread") or name.endswith("threading.Thread"):
                target = get_keyword(call, "target")
                if target is not None and not is_none(target.value):
                    add(target.value, call, "thread-target")
            elif method in ("add_field_listener", "add_tag_listener"):
                for arg in call.args:
                    add(arg, call, "field-listener")
            elif method in ("set_handover_responder", "set_snep_get_provider"):
                for arg in call.args:
                    add(arg, call, "responder")

    def _collect_async_contexts(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            klass = self.enclosing_class(node)
            self.async_contexts.append(
                CallbackContext(
                    node=node,
                    kind="coroutine",
                    name=(
                        f"{klass.name}.{node.name}" if klass is not None else node.name
                    ),
                    enclosing_class=klass.name if klass else None,
                )
            )

    def _collect_thing_classes(self) -> None:
        by_name: Dict[str, ast.ClassDef] = {}
        bases: Dict[str, List[str]] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                by_name[node.name] = node
                bases[node.name] = [tail_name(base) for base in node.bases]
        thing_names: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, base_names in bases.items():
                if name in thing_names:
                    continue
                for base in base_names:
                    if base == "Thing" or base in thing_names:
                        thing_names.add(name)
                        changed = True
                        break
        for name in sorted(thing_names):
            node = by_name[name]
            transients, transient_node = _transient_declaration(node)
            thing = ThingClass(node, transients, transient_node)
            _collect_fields(node, thing)
            self.thing_classes.append(thing)


_LISTENERISH = ("listener", "callback", "handler")


def _looks_like_listener(node: Optional[ast.AST]) -> bool:
    """Heuristic: is this argument value plausibly a listener callable?"""
    if node is None or is_none(node):
        return False
    if isinstance(node, ast.Lambda):
        return True
    name = tail_name(node)
    if not name and isinstance(node, ast.Call):
        name = tail_name(node.func)  # Listener(...) / partial(...) factories
    lowered = name.lower()
    return lowered.startswith("on_") or any(
        mark in lowered for mark in _LISTENERISH
    )


def _find_def(scope: ast.AST, name: str) -> Optional[ast.AST]:
    """A ``def name`` directly inside ``scope``'s body (non-recursive
    into nested functions, one level of class bodies allowed)."""
    body = getattr(scope, "body", [])
    for item in body:
        if (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == name
        ):
            return item
    return None


def _transient_declaration(
    node: ast.ClassDef,
) -> Tuple[Tuple[str, ...], Optional[ast.AST]]:
    for item in node.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__transient__":
                names: List[str] = []
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.append(element.value)
                return tuple(names), item
    return (), None


def _collect_fields(node: ast.ClassDef, thing: ThingClass) -> None:
    # Class-level annotations (``member: str``) declare fields too.
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            if item.target.id != "__transient__":
                thing.fields.setdefault(item.target.id, item)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                sub.targets
                if isinstance(sub, ast.Assign)
                else [sub.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    thing.fields.setdefault(target.attr, sub)
