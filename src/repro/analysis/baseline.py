"""Committed finding baselines for ``morelint``.

A baseline file freezes the *currently known* findings so CI can fail
on **new** errors only: adopting a new rule on a legacy codebase must
not require fixing every historical finding first. Workflow::

    python -m repro.analysis.lint src --write-baseline        # adopt
    python -m repro.analysis.lint src --baseline .morelint-baseline.json

Fingerprints hash ``relpath|rule_id|message`` -- deliberately *not* the
line number, so reflowing a file does not resurrect baselined findings;
editing the offending call (which changes the message's receiver/line
references) does.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.model import Finding

DEFAULT_BASELINE = ".morelint-baseline.json"
_VERSION = 1


def fingerprint(finding: Finding, root: str = ".") -> str:
    relpath = os.path.relpath(finding.path, root).replace(os.sep, "/")
    blob = f"{relpath}|{finding.rule_id}|{finding.message}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def save(path: str, findings: Iterable[Finding], root: str = ".") -> int:
    """Write the baseline for ``findings``; returns the entry count."""
    entries: Dict[str, Dict[str, str]] = {}
    for finding in findings:
        entries[fingerprint(finding, root)] = {
            "rule": finding.rule_id,
            "path": os.path.relpath(finding.path, root).replace(os.sep, "/"),
            "message": finding.message,
        }
    payload = {"version": _VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def load(path: str) -> Set[str]:
    """The fingerprint set of a baseline file ({} when absent)."""
    if not os.path.exists(path):
        return set()
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return set(payload.get("findings", {}))


def partition(
    findings: Iterable[Finding], known: Set[str], root: str = "."
) -> Tuple[List[Finding], List[Finding]]:
    """Split into (new, baselined) against the ``known`` fingerprints."""
    fresh: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if fingerprint(finding, root) in known else fresh).append(finding)
    return fresh, old
