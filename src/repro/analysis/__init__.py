"""Correctness tooling for MORENA programs.

Two complementary halves, both grounded in the paper's contract that the
asynchronous tag-reference model keeps blocking I/O, concurrency and
serialization hazards out of application code:

* **morelint** -- a static misuse linter (stdlib ``ast``, no imports of
  the linted code). Run ``python -m repro.analysis.lint <paths>`` or
  ``python -m repro.cli lint <paths>``. Rules live one-per-module in
  :mod:`repro.analysis.rules`; see ``--list-rules``.
* **thread-affinity sanitizer** -- an opt-in runtime race detector
  (:mod:`repro.analysis.sanitizer`) that instruments ``Looper``,
  ``Reactor`` and ``TagReference`` to catch middleware threads mutating
  bound ``Thing`` state off the owning looper, and listeners executing
  off the main looper. Enable with ``MORENA_SANITIZER=1`` (``=strict``
  to raise at the violation point) -- the test suite's conftest installs
  it automatically when the variable is set.
"""

from repro.analysis.engine import collect_files, lint_paths, lint_source
from repro.analysis.model import Finding, Rule, Severity, all_rules

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "collect_files",
    "lint_paths",
    "lint_source",
]
