"""Machine-readable renderings of ``morelint`` findings.

Two formats besides the default text:

* ``json`` -- a flat list of finding dicts, stable keys, for ad-hoc
  tooling (``jq '.findings[] | select(.rule == "MOR009")'``).
* ``sarif`` -- SARIF 2.1.0, the interchange format code hosts ingest
  natively: CI uploads ``morelint.sarif`` and findings surface as
  annotations on the offending lines of a pull request.

Both renderers take the *post-baseline* finding split so consumers can
distinguish fresh findings from accepted debt (SARIF
``baselineState``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.model import Finding, Severity, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _finding_dict(finding: Finding, baselined: bool) -> Dict[str, object]:
    return {
        "rule": finding.rule_id,
        "severity": finding.severity.value,
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "message": finding.message,
        "fixable": finding.fixable,
        "baselined": baselined,
    }


def render_json(
    findings: Sequence[Finding], baselined: Optional[Set[int]] = None
) -> str:
    """``baselined`` holds indices into ``findings`` that are accepted."""
    marked = baselined or set()
    payload = {
        "tool": "morelint",
        "findings": [
            _finding_dict(finding, index in marked)
            for index, finding in enumerate(findings)
        ],
        "summary": {
            "errors": sum(
                1 for f in findings if f.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for f in findings if f.severity is Severity.WARNING
            ),
        },
    }
    return json.dumps(payload, indent=2) + "\n"


def _sarif_rules() -> List[Dict[str, object]]:
    rules = []
    for rule in all_rules():
        rules.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "help": {"text": rule.autofix_hint},
                "defaultConfiguration": {"level": _LEVELS[rule.severity]},
            }
        )
    return rules


def render_sarif(
    findings: Sequence[Finding], baselined: Optional[Set[int]] = None
) -> str:
    marked = baselined or set()
    rules = _sarif_rules()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for index, finding in enumerate(findings):
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column,
                        },
                    }
                }
            ],
            "baselineState": "unchanged" if index in marked else "new",
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "morelint",
                        "informationUri": (
                            "https://github.com/morena/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


RENDERERS = {"json": render_json, "sarif": render_sarif}
