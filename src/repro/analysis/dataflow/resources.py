"""Receiver-keyed resource tracking shared by the flow rules.

MOR008 (use-after-halt), MOR009 (lease pairing) and MOR010
(coalesce/fence ordering) are all the same analysis with different
vocabularies: calls *seed* an abstract state on a receiver ("halted",
"held", "coalesced"), other calls *clear* it (reacquire, release,
fence), rebinding the receiver kills it, and certain calls are *uses*
that must be reported when the state may hold. This module provides
that machine once, on top of the CFG + solver.

Tokens encode ``kind:line`` (the line that seeded the state) plus an
optional ``:exc`` suffix added when the token travelled an exception
edge -- so a report can say not just *that* a lease leaks but that it
leaks *on the exception path*.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.dataflow.cfg import CFG, Block, EXC, build_cfg, header_nodes
from repro.analysis.dataflow.solver import State, solve_forward

# One abstract operation a call performs on a receiver's state:
#   ("seed", key, kind) | ("clear", key) | ("use", key)
Op = Tuple[str, ...]
Classify = Callable[[ast.Call], Iterable[Op]]


# -- tokens --------------------------------------------------------------------


def make_token(kind: str, line: int) -> str:
    return f"{kind}:{line}"


def token_kind(token: str) -> str:
    return token.split(":", 1)[0]


def token_line(token: str) -> int:
    return int(token.split(":")[1])


def token_exceptional(token: str) -> bool:
    return token.endswith(":exc")


def _mark_exceptional(state: State, kind: str) -> State:
    if kind != EXC:
        return state
    out: Dict[str, FrozenSet[str]] = {}
    for key, tokens in state.items():
        out[key] = frozenset(
            token if token_exceptional(token) else f"{token}:exc"
            for token in tokens
        )
    return out


# -- AST helpers ---------------------------------------------------------------


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` -> ``"a.b.c"``; anything non-name-shaped -> ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def receiver_key(call: ast.Call) -> str:
    """Normalized receiver of an attribute call.

    The ``.aio`` await surface is a stateless view of its reference, so
    ``ref.aio.write_raw(...)`` tracks under the same key as
    ``ref.write_raw(...)``.
    """
    if not isinstance(call.func, ast.Attribute):
        return ""
    key = dotted_name(call.func.value)
    if key.endswith(".aio"):
        key = key[: -len(".aio")]
    return key


def stmt_calls(stmt: ast.AST) -> List[ast.Call]:
    """Calls evaluated *by this statement's header*, in source order.

    Nested function and lambda bodies are excluded: a callback passed
    here executes whenever it is scheduled, not now.
    """
    calls: List[ast.Call] = []
    for root in header_nodes(stmt):
        stack: List[ast.AST] = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # different execution context
            if isinstance(node, ast.Call):
                calls.append(node)
            stack.extend(reversed(list(ast.iter_child_nodes(node))))
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for element in target.elts:
            out.extend(_target_names(element))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    name = dotted_name(target)
    return [name] if name else []


def assigned_names(stmt: ast.AST) -> List[str]:
    """Dotted names this statement (re)binds -- their tracked state dies."""
    if isinstance(stmt, ast.Assign):
        out: List[str] = []
        for target in stmt.targets:
            out.extend(_target_names(target))
        return out
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return _target_names(stmt.target)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _target_names(stmt.target)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out = []
        for item in stmt.items:
            if item.optional_vars is not None:
                out.extend(_target_names(item.optional_vars))
        return out
    return []


def _kill(state: Dict[str, FrozenSet[str]], name: str) -> None:
    prefix = name + "."
    for key in [k for k in state if k == name or k.startswith(prefix)]:
        del state[key]


# -- the analysis --------------------------------------------------------------


@dataclass
class Use:
    """One use-site where a tracked state may hold."""

    call: ast.Call
    key: str
    tokens: FrozenSet[str]


@dataclass
class RunResult:
    cfg: CFG
    uses: List[Use] = field(default_factory=list)
    exit_state: State = field(default_factory=dict)


class ResourceAnalysis:
    """Path-sensitive receiver-state tracking over one function body.

    ``classify(call)`` yields the abstract operations of one call; the
    analysis solves the CFG to a fixpoint, then replays each block once
    against its fixpoint entry state to collect use-sites and the exit
    state. ``mark_exceptional`` turns on the ``:exc`` token suffix for
    state that crossed an exception edge.
    """

    def __init__(self, classify: Classify, mark_exceptional: bool = False) -> None:
        self._classify = classify
        self._edge_hook = _mark_exceptional if mark_exceptional else None

    def run(self, fn: ast.AST) -> RunResult:
        cfg = build_cfg(fn)
        in_states = solve_forward(
            cfg,
            self._transfer,
            edge_hook=self._edge_hook,
            exc_transfer=self._exc_transfer,
        )
        result = RunResult(cfg)
        for block in cfg.blocks:
            if block.id in in_states:
                self._transfer(block, in_states[block.id], record=result.uses)
        result.exit_state = in_states.get(cfg.exit.id, {})
        return result

    def _transfer(
        self,
        block: Block,
        state: State,
        record: Optional[List[Use]] = None,
        seeds: bool = True,
    ) -> State:
        stmt = block.stmt
        out: Dict[str, FrozenSet[str]] = dict(state)
        if stmt is None:
            return out
        for call in stmt_calls(stmt):
            for op in self._classify(call):
                verb, key = op[0], op[1]
                if not key:
                    continue
                if verb == "use":
                    tokens = out.get(key)
                    if tokens and record is not None:
                        record.append(Use(call, key, tokens))
                elif verb == "clear":
                    _kill(out, key)
                elif verb == "seed" and seeds:
                    token = make_token(op[2], call.lineno)
                    out[key] = out.get(key, frozenset()) | {token}
        for name in assigned_names(stmt):
            _kill(out, name)
        return out

    def _exc_transfer(self, block: Block, state: State) -> State:
        """Out-state along exception edges: clears apply, seeds do not
        (if the statement raised, the obligation was never created)."""
        return self._transfer(block, state, seeds=False)
