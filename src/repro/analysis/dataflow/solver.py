"""A generic forward worklist solver over :mod:`.cfg` graphs.

The lattice is fixed to the shape every flow rule here uses: a state is
``dict[key, frozenset[token]]`` -- receiver name to the set of abstract
facts that *may* hold for it -- and join is per-key set union. That
makes every transfer monotone by construction and the fixpoint finite
(keys and tokens are drawn from the program text), so the worklist
terminates without widening.

``edge_hook`` lets an analysis transform state as it travels an edge --
the resource rules use it to mark facts that crossed an ``"exc"`` edge,
so a leak can be reported as happening *on an exception path*.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional

from repro.analysis.dataflow.cfg import CFG, EXC, Block

State = Dict[str, FrozenSet[str]]
Transfer = Callable[[Block, State], State]
EdgeHook = Callable[[State, str], State]


def join(a: State, b: State) -> State:
    """Per-key union of two states (may-analysis)."""
    out = dict(a)
    for key, tokens in b.items():
        current = out.get(key)
        out[key] = tokens if current is None else current | tokens
    return out


def states_equal(a: State, b: State) -> bool:
    return a == b


def solve_forward(
    cfg: CFG,
    transfer: Transfer,
    initial: Optional[State] = None,
    edge_hook: Optional[EdgeHook] = None,
    exc_transfer: Optional[Transfer] = None,
) -> Dict[int, State]:
    """Fixpoint block-entry states, keyed by block id.

    ``transfer(block, in_state) -> out_state`` must not mutate its
    input. ``edge_hook(out_state, edge_kind) -> state`` transforms the
    state propagated along each outgoing edge (identity when omitted).

    ``exc_transfer``, when given, replaces ``transfer`` along a block's
    *exception* edges. The resource rules use it for optimistic
    exception semantics: if the statement raised, obligations it would
    have *created* (an acquire that failed) are assumed not created,
    while obligations it *discharges* still count -- the combination
    that keeps the canonical ``acquire(); try: ... finally: release()``
    idiom quiet without missing real exception-path leaks.
    """
    in_states: Dict[int, State] = {cfg.entry.id: dict(initial or {})}
    worklist = [cfg.entry]
    while worklist:
        block = worklist.pop()
        state = in_states.get(block.id, {})
        out = transfer(block, state)
        out_exc = exc_transfer(block, state) if exc_transfer is not None else out
        for successor, kind in block.succs:
            chosen = out_exc if kind == EXC else out
            propagated = edge_hook(chosen, kind) if edge_hook is not None else chosen
            known = in_states.get(successor.id)
            merged = propagated if known is None else join(known, propagated)
            if known is None or not states_equal(known, merged):
                in_states[successor.id] = merged
                worklist.append(successor)
    return in_states
