"""Per-function control-flow graphs for ``morelint``.

One *simple* statement per block keeps the solver's block-entry states
exactly the per-statement states the rules want, at a granularity cost
that is irrelevant for hand-written functions. Compound statements
contribute header blocks (holding the test / iterable / context
expression -- see :func:`header_nodes`) plus structural edges.

Edge kinds:

* ``"fall"`` -- ordinary fallthrough / branch edges;
* ``"back"`` -- a loop back-edge (body end or ``continue`` to header);
* ``"return"`` -- a ``return`` statement to the exit block;
* ``"exc"`` -- an exceptional edge: from a statement that can raise to
  the innermost enclosing handlers (and past non-catch-all handler
  lists to the next frame out, ultimately the exit block). ``finally``
  bodies are routed through on both the normal and exceptional paths.

The builder is deliberately conservative rather than exact: every
statement containing a call, ``raise`` or ``assert`` is treated as
able to raise. What matters to the rules is that no *feasible* path is
missing -- extra infeasible paths only cost a sliver of precision.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

FALL = "fall"
BACK = "back"
RETURN = "return"
EXC = "exc"


class Block:
    """One CFG node: at most one statement plus outgoing edges.

    For compound statements (``if``/``while``/``for``/``with``/
    ``match``) the block holds the whole AST node but *represents* only
    its header -- the parts :func:`header_nodes` returns. The bodies
    live in their own blocks.
    """

    __slots__ = ("id", "stmt", "succs", "label")

    def __init__(self, block_id: int, stmt: Optional[ast.AST] = None, label: str = ""):
        self.id = block_id
        self.stmt = stmt
        self.succs: List[Tuple["Block", str]] = []
        self.label = label  # "", "entry", "exit", "join", "loop", ...

    def edge(self, target: "Block", kind: str = FALL) -> None:
        pair = (target, kind)
        if pair not in self.succs:
            self.succs.append(pair)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = self.label or (type(self.stmt).__name__ if self.stmt else "")
        return f"Block({self.id}, {what}, ->{[b.id for b, _ in self.succs]})"


class CFG:
    """Entry/exit plus every block of one function body."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.entry = self.new_block(label="entry")
        self.exit = self.new_block(label="exit")

    def new_block(self, stmt: Optional[ast.AST] = None, label: str = "") -> Block:
        block = Block(len(self.blocks), stmt, label)
        self.blocks.append(block)
        return block

    def predecessors(self, block: Block) -> List[Tuple[Block, str]]:
        preds: List[Tuple[Block, str]] = []
        for other in self.blocks:
            for target, kind in other.succs:
                if target is block:
                    preds.append((other, kind))
        return preds


def header_nodes(stmt: ast.AST) -> List[ast.AST]:
    """The sub-nodes a compound statement's *header block* evaluates.

    Transfer functions walk these instead of the whole node, so a
    branch body's effects are not charged to the header.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: List[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
        return [stmt.subject]
    return [stmt]


def _expr_can_raise(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            return True
    return False


def _can_raise(stmt: ast.AST) -> bool:
    """Conservative: the header of ``stmt`` may raise."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return True  # __enter__ can raise
    for node in header_nodes(stmt):
        if _expr_can_raise(node):
            return True
    return False


def _catches_everything(handlers: Sequence[ast.ExceptHandler]) -> bool:
    for handler in handlers:
        if handler.type is None:
            return True
        name = handler.type
        if isinstance(name, ast.Name) and name.id in ("Exception", "BaseException"):
            return True
    return False


class _Builder:
    """Recursive statement-list walker building the CFG in one pass."""

    def __init__(self) -> None:
        self.cfg = CFG()
        # Innermost-first stack of loop frames: (header, after).
        self._loops: List[Tuple[Block, Block]] = []
        # Innermost-first stack of exception-target frames: the blocks
        # an exception raised *here* may transfer to. The implicit
        # outermost target is the exit block.
        self._exc_targets: List[List[Block]] = []

    # -- frame helpers -----------------------------------------------------

    def _exception_targets(self) -> List[Block]:
        if self._exc_targets:
            return self._exc_targets[-1]
        return [self.cfg.exit]

    def _wire_raise(self, block: Block) -> None:
        for target in self._exception_targets():
            block.edge(target, EXC)

    # -- statement sequencing ----------------------------------------------

    def seq(
        self, body: Sequence[ast.stmt], current: Optional[Block]
    ) -> Optional[Block]:
        """Build ``body`` starting from ``current``; returns the block
        control falls out of, or ``None`` when every path jumped away."""
        for stmt in body:
            if current is None:
                # Unreachable statements still get blocks (a rule may
                # anchor a finding there) but no incoming edges.
                current = self.cfg.new_block(label="unreachable")
            current = self.stmt(stmt, current)
        return current

    def stmt(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, ast.Return):
            block = self._simple(stmt, current)
            block.edge(self.cfg.exit, RETURN)
            return None
        if isinstance(stmt, ast.Raise):
            block = self._simple(stmt, current, wire_exc=False)
            self._wire_raise(block)
            return None
        if isinstance(stmt, ast.Break):
            block = self._simple(stmt, current, wire_exc=False)
            if self._loops:
                block.edge(self._loops[-1][1], FALL)
            return None
        if isinstance(stmt, ast.Continue):
            block = self._simple(stmt, current, wire_exc=False)
            if self._loops:
                block.edge(self._loops[-1][0], BACK)
            return None
        # Plain statement (expression, assignment, def, class, import...).
        return self._simple(stmt, current)

    def _simple(self, stmt: ast.stmt, current: Block, wire_exc: bool = True) -> Block:
        if current.stmt is None and not current.succs:
            block = current
            block.stmt = stmt
        else:
            block = self.cfg.new_block(stmt)
            current.edge(block, FALL)
        if wire_exc and _can_raise(stmt):
            self._wire_raise(block)
        return block

    def _header(self, stmt: ast.stmt, current: Block, label: str) -> Block:
        header = self.cfg.new_block(stmt, label=label)
        current.edge(header, FALL)
        if _can_raise(stmt):
            self._wire_raise(header)
        return header

    # -- compound statements -----------------------------------------------

    def _if(self, stmt: ast.If, current: Block) -> Optional[Block]:
        header = self._header(stmt, current, "if")
        join = self.cfg.new_block(label="join")
        then_entry = self.cfg.new_block(label="then")
        header.edge(then_entry, FALL)
        then_end = self.seq(stmt.body, then_entry)
        if then_end is not None:
            then_end.edge(join, FALL)
        if stmt.orelse:
            else_entry = self.cfg.new_block(label="else")
            header.edge(else_entry, FALL)
            else_end = self.seq(stmt.orelse, else_entry)
            if else_end is not None:
                else_end.edge(join, FALL)
        else:
            header.edge(join, FALL)
        return join if self.cfg.predecessors(join) else None

    def _loop(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        header = self._header(stmt, current, "loop")
        after = self.cfg.new_block(label="join")
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        if not infinite:
            header.edge(after, FALL)
        body_entry = self.cfg.new_block(label="loop-body")
        header.edge(body_entry, FALL)
        self._loops.append((header, after))
        body_end = self.seq(stmt.body, body_entry)
        self._loops.pop()
        if body_end is not None:
            body_end.edge(header, BACK)
        if stmt.orelse:
            return self.seq(stmt.orelse, after)
        return after if self.cfg.predecessors(after) else None

    def _with(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        header = self._header(stmt, current, "with")
        return self.seq(stmt.body, header)

    def _match(self, stmt: "ast.Match", current: Block) -> Optional[Block]:
        header = self._header(stmt, current, "match")
        join = self.cfg.new_block(label="join")
        header.edge(join, FALL)  # no case may match
        for case in stmt.cases:
            case_entry = self.cfg.new_block(label="case")
            header.edge(case_entry, FALL)
            case_end = self.seq(case.body, case_entry)
            if case_end is not None:
                case_end.edge(join, FALL)
        return join if self.cfg.predecessors(join) else None

    def _try(self, stmt: ast.Try, current: Block) -> Optional[Block]:
        after = self.cfg.new_block(label="join")
        handler_entries: List[Block] = [
            self.cfg.new_block(label="handler") for _ in stmt.handlers
        ]
        escape_targets = list(self._exception_targets())
        final_entry: Optional[Block] = None
        final_end: Optional[Block] = None
        if stmt.finalbody:
            final_entry = self.cfg.new_block(label="finally")
            final_end = self.seq(stmt.finalbody, final_entry)
            if final_end is not None:
                final_end.edge(after, FALL)
                # The same finally body also terminates exceptional
                # paths, re-raising outward afterwards.
                for target in escape_targets:
                    final_end.edge(target, EXC)

        # Exceptions raised in the body go to the handlers; when the
        # handler list cannot catch everything they also escape outward
        # (through the finally, when present).
        body_targets: List[Block] = list(handler_entries)
        if not stmt.handlers or not _catches_everything(stmt.handlers):
            if final_entry is not None:
                body_targets.append(final_entry)
            else:
                body_targets.extend(escape_targets)

        self._exc_targets.append(body_targets)
        try_entry = self.cfg.new_block(label="try")
        current.edge(try_entry, FALL)
        body_end = self.seq(stmt.body, try_entry)
        self._exc_targets.pop()

        # Handler and orelse bodies run outside the try frame: an
        # exception raised there escapes outward (through the finally).
        outward = [final_entry] if final_entry is not None else escape_targets
        self._exc_targets.append(outward)
        normal_exit = final_entry if final_entry is not None else after
        if body_end is not None and stmt.orelse:
            body_end = self.seq(stmt.orelse, body_end)
        if body_end is not None:
            body_end.edge(normal_exit, FALL)
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_end = self.seq(handler.body, entry)
            if handler_end is not None:
                handler_end.edge(normal_exit, FALL)
        self._exc_targets.pop()

        return after if self.cfg.predecessors(after) else None


def build_cfg(fn: ast.AST) -> CFG:
    """CFG of one ``def`` / ``async def`` body."""
    builder = _Builder()
    end = builder.seq(list(fn.body), builder.cfg.entry)
    if end is not None:
        end.edge(builder.cfg.exit, FALL)
    return builder.cfg
