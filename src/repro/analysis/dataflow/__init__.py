"""The flow-analysis core under ``morelint``'s flow-aware rules.

Three layers, each usable on its own:

* :mod:`repro.analysis.dataflow.cfg` -- per-function control-flow
  graphs: one statement per block, explicit edge kinds (branch, loop
  back-edge, return, exception), exception edges routed through
  ``except`` handlers and ``finally`` blocks.
* :mod:`repro.analysis.dataflow.solver` -- a generic forward worklist
  solver over those CFGs for monotone set-union lattices (reaching
  definitions, resource states), with an edge hook so analyses can tag
  state that travelled an exception edge.
* :mod:`repro.analysis.dataflow.resources` -- the shared
  receiver-keyed state machine the MOR008/MOR009/MOR010 rules
  instantiate: seed states at calls, kill them at rebinding, query
  them at uses, all path-sensitively.

Cross-*module* facts (class hierarchies, lock disciplines, parameter
effects of helpers) live in :mod:`repro.analysis.project`, which the
engine builds once per run and hands to every file's context.
"""

from repro.analysis.dataflow.cfg import (
    CFG,
    Block,
    EXC,
    FALL,
    RETURN,
    build_cfg,
)
from repro.analysis.dataflow.solver import solve_forward
from repro.analysis.dataflow.resources import (
    ResourceAnalysis,
    assigned_names,
    receiver_key,
    stmt_calls,
)

__all__ = [
    "CFG",
    "Block",
    "EXC",
    "FALL",
    "RETURN",
    "build_cfg",
    "solve_forward",
    "ResourceAnalysis",
    "assigned_names",
    "receiver_key",
    "stmt_calls",
]
