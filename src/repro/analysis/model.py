"""The data model of ``morelint``: severities, findings, rules, registry.

A *rule* is one module under :mod:`repro.analysis.rules` exposing a
module-level ``RULE`` object. Rules are pure functions from a parsed
:class:`~repro.analysis.context.FileContext` to an iterable of
:class:`Finding` instances -- they never mutate the context, so the
engine is free to run them in any order (or skip them via ``--select``).

Severities mirror how the middleware treats the misuse at runtime:

* ``ERROR`` -- the program violates a MORENA contract (blocking the
  looper, defeating the lease guard, leaking unserializable state onto a
  tag). The lint CLI exits non-zero; CI fails.
* ``WARNING`` -- legal but fragile (an asynchronous call whose failure
  half is missing). Reported, exit code unaffected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SourceEdit:
    """One mechanical text replacement in AST coordinates.

    ``line``/``end_line`` are 1-based, ``col``/``end_col`` are 0-based
    character offsets within the line -- exactly what ``ast`` reports,
    so rules can lift spans straight off the nodes they flag. A
    zero-width span (start == end) is an insertion. Only edits whose
    correctness is position-derivable belong here; judgement calls stay
    prose hints.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str


@dataclass(frozen=True)
class Finding:
    """One misuse at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    autofix_hint: str = ""
    # Mechanical fixes ``morelint --fix`` may apply. Empty for findings
    # whose resolution needs a human decision (most do).
    edits: Tuple[SourceEdit, ...] = ()

    @property
    def fixable(self) -> bool:
        return bool(self.edits)

    def format(self, show_hint: bool = True) -> str:
        text = (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity.value.upper()} {self.rule_id} {self.message}"
        )
        if show_hint and self.autofix_hint:
            text += f"\n    fix: {self.autofix_hint}"
        return text


# A rule's check callable: FileContext -> iterable of findings. Typed
# loosely to avoid the import cycle with context.py.
CheckFn = Callable[["object"], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, default severity, autofix hint, check."""

    id: str
    name: str
    severity: Severity
    summary: str
    autofix_hint: str
    check: CheckFn

    def finding(
        self,
        context,
        node,
        message: str,
        severity: Optional[Severity] = None,
        autofix_hint: Optional[str] = None,
        edits: Tuple[SourceEdit, ...] = (),
    ) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(
            rule_id=self.id,
            severity=self.severity if severity is None else severity,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            autofix_hint=self.autofix_hint if autofix_hint is None else autofix_hint,
            edits=edits,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the global registry (idempotent per id)."""
    existing = _REGISTRY.get(rule.id)
    if existing is not None and existing is not rule:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id. Imports the rule package on
    first use so ``python -m repro.analysis.lint`` needs no setup."""
    import repro.analysis.rules  # noqa: F401 - side effect: registration

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    import repro.analysis.rules  # noqa: F401 - side effect: registration

    return _REGISTRY[rule_id]
