"""The ``morelint`` command line.

::

    python -m repro.analysis.lint src examples benchmarks
    python -m repro.analysis.lint --select MOR001,MOR003 path/to/app.py
    python -m repro.analysis.lint --fix path/to/app.py
    python -m repro.analysis.lint src --format sarif --output morelint.sarif
    python -m repro.analysis.lint src --baseline .morelint-baseline.json
    python -m repro.analysis.lint --list-rules

Exit codes: ``0`` clean (warnings allowed), ``1`` at least one
**new** error-severity finding -- errors matched by ``--baseline`` are
accepted debt and reported without failing. ``--write-baseline``
freezes the current findings into the baseline file.

``--fix`` applies the mechanical edits fixable findings carry (see
:mod:`repro.analysis.autofix`), rewrites the files, then re-lints and
reports -- and exits on -- whatever remains.

``--format json|sarif`` renders machine-readable output; with
``--output FILE`` the rendering goes to the file and the text report
stays on stdout (CI uploads the SARIF while humans read the log).
Also reachable as ``python -m repro.cli lint ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Set

from repro.analysis import baseline as baseline_mod
from repro.analysis.autofix import fix_source
from repro.analysis.engine import lint_paths
from repro.analysis.formats import RENDERERS
from repro.analysis.model import Finding, Severity, all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="morelint",
        description="Misuse linter for MORENA programs.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit the autofix hint lines",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes in place, then re-lint the paths",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        help="write the json/sarif rendering to this file "
        "(text report still goes to stdout)",
    )
    parser.add_argument(
        "--baseline",
        help="baseline file of accepted findings; matched errors do "
        "not fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="freeze the current findings into the baseline file "
        f"(default {baseline_mod.DEFAULT_BASELINE}) and exit 0",
    )
    parser.add_argument(
        "--jobs",
        default="auto",
        help="worker processes for the analysis (N, or 'auto')",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        print(f"{rule.id}  {rule.severity.value:<7}  {rule.name}")
        print(f"        {rule.summary}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    if not args.paths:
        print("morelint: no paths given (try --help)", file=sys.stderr)
        return 2
    select = (
        [rule_id.strip() for rule_id in args.select.split(",") if rule_id.strip()]
        if args.select
        else None
    )
    findings = lint_paths(args.paths, select=select, jobs=args.jobs)
    if args.fix:
        fixed = _apply_fixes(findings)
        if fixed:
            findings = lint_paths(args.paths, select=select, jobs=args.jobs)
        print(f"morelint: applied {fixed} fix(es)")

    baseline_path = args.baseline or baseline_mod.DEFAULT_BASELINE
    if args.write_baseline:
        count = baseline_mod.save(baseline_path, findings)
        print(f"morelint: wrote {count} finding(s) to {baseline_path}")
        return 0
    known = baseline_mod.load(args.baseline) if args.baseline else set()
    baselined_indices: Set[int] = {
        index
        for index, finding in enumerate(findings)
        if baseline_mod.fingerprint(finding) in known
    }

    rendered = None
    if args.fmt != "text":
        rendered = RENDERERS[args.fmt](findings, baselined_indices)
    if rendered is not None and args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    if rendered is not None and not args.output:
        print(rendered, end="")
    else:
        for finding in findings:
            print(finding.format(show_hint=not args.no_hints))
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    new_errors = sum(
        1
        for index, f in enumerate(findings)
        if f.severity is Severity.ERROR and index not in baselined_indices
    )
    summary = (
        f"morelint: {errors} error(s), {warnings} warning(s) "
        f"across {len(args.paths)} path(s)"
    )
    if errors != new_errors:
        summary += f" ({errors - new_errors} baselined error(s) accepted)"
    # Keep stdout pure when it carries the machine rendering.
    machine_stdout = rendered is not None and not args.output
    print(summary, file=sys.stderr if machine_stdout else sys.stdout)
    return 1 if new_errors else 0


def _apply_fixes(findings: List[Finding]) -> int:
    """Rewrite each file with the edits its fixable findings carry.

    Returns the number of edits applied (duplicates collapsed). Files
    whose findings carry no edits are left untouched.
    """
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.fixable:
            by_path.setdefault(finding.path, []).append(finding)
    applied = 0
    for path, fixable in sorted(by_path.items()):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        rewritten, count = fix_source(source, fixable)
        if count and rewritten != source:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(rewritten)
            applied += count
    return applied


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
