"""The ``morelint`` command line.

::

    python -m repro.analysis.lint src examples benchmarks
    python -m repro.analysis.lint --select MOR001,MOR003 path/to/app.py
    python -m repro.analysis.lint --fix path/to/app.py
    python -m repro.analysis.lint --list-rules

Exit codes: ``0`` clean (warnings allowed), ``1`` at least one
error-severity finding -- the contract the CI lint gate relies on.
``--fix`` applies the mechanical edits fixable findings carry (see
:mod:`repro.analysis.autofix`), rewrites the files, then re-lints and
reports -- and exits on -- whatever remains.
Also reachable as ``python -m repro.cli lint ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.analysis.autofix import fix_source
from repro.analysis.engine import lint_paths
from repro.analysis.model import Finding, Severity, all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="morelint",
        description="Misuse linter for MORENA programs.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit the autofix hint lines",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes in place, then re-lint the paths",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        print(f"{rule.id}  {rule.severity.value:<7}  {rule.name}")
        print(f"        {rule.summary}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    if not args.paths:
        print("morelint: no paths given (try --help)", file=sys.stderr)
        return 2
    select = (
        [rule_id.strip() for rule_id in args.select.split(",") if rule_id.strip()]
        if args.select
        else None
    )
    findings = lint_paths(args.paths, select=select)
    if args.fix:
        fixed = _apply_fixes(findings)
        if fixed:
            findings = lint_paths(args.paths, select=select)
        print(f"morelint: applied {fixed} fix(es)")
    for finding in findings:
        print(finding.format(show_hint=not args.no_hints))
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    print(
        f"morelint: {errors} error(s), {warnings} warning(s) "
        f"across {len(args.paths)} path(s)"
    )
    return 1 if errors else 0


def _apply_fixes(findings: List[Finding]) -> int:
    """Rewrite each file with the edits its fixable findings carry.

    Returns the number of edits applied (duplicates collapsed). Files
    whose findings carry no edits are left untouched.
    """
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.fixable:
            by_path.setdefault(finding.path, []).append(finding)
    applied = 0
    for path, fixable in sorted(by_path.items()):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        rewritten, count = fix_source(source, fixable)
        if count and rewritten != source:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(rewritten)
            applied += count
    return applied


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
