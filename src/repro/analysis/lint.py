"""The ``morelint`` command line.

::

    python -m repro.analysis.lint src examples benchmarks
    python -m repro.analysis.lint --select MOR001,MOR003 path/to/app.py
    python -m repro.analysis.lint --list-rules

Exit codes: ``0`` clean (warnings allowed), ``1`` at least one
error-severity finding -- the contract the CI lint gate relies on.
Also reachable as ``python -m repro.cli lint ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.engine import lint_paths
from repro.analysis.model import Severity, all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="morelint",
        description="Misuse linter for MORENA programs.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit the autofix hint lines",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        print(f"{rule.id}  {rule.severity.value:<7}  {rule.name}")
        print(f"        {rule.summary}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    if not args.paths:
        print("morelint: no paths given (try --help)", file=sys.stderr)
        return 2
    select = (
        [rule_id.strip() for rule_id in args.select.split(",") if rule_id.strip()]
        if args.select
        else None
    )
    findings = lint_paths(args.paths, select=select)
    for finding in findings:
        print(finding.format(show_hint=not args.no_hints))
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    print(
        f"morelint: {errors} error(s), {warnings} warning(s) "
        f"across {len(args.paths)} path(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
