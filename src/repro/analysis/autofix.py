"""Mechanical fix application for ``morelint --fix``.

Rules attach :class:`~repro.analysis.model.SourceEdit` spans to findings
whose resolution is purely position-derivable -- dropping a keyword
argument, extending a ``__transient__`` declaration, stubbing a missing
failure listener. This module turns those spans into rewritten source.

The applier is deliberately conservative:

* edits are applied back-to-front so earlier spans stay valid;
* byte-identical duplicate edits collapse to one (several findings on
  one class may all carry the same class-level fix);
* overlapping edits are *skipped*, not guessed at -- a second ``--fix``
  run picks up whatever the first pass uncovered.

Builders live here rather than in the rule modules so the span
arithmetic (comma handling, indentation, docstring skipping) is written
once and tested once.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.model import Finding, SourceEdit


# -- span arithmetic -------------------------------------------------------------


def _line_starts(source: str) -> List[int]:
    starts = [0]
    for index, char in enumerate(source):
        if char == "\n":
            starts.append(index + 1)
    return starts


def _offset(starts: Sequence[int], line: int, col: int) -> int:
    """AST (1-based line, 0-based col) -> absolute character offset."""
    return starts[line - 1] + col


def apply_edits(source: str, edits: Iterable[SourceEdit]) -> Tuple[str, int]:
    """Apply ``edits`` to ``source``; returns ``(new_source, applied)``.

    Duplicates collapse, overlaps are skipped (see module docstring).
    """
    starts = _line_starts(source)
    spans = []
    for edit in set(edits):
        begin = _offset(starts, edit.line, edit.col)
        end = _offset(starts, edit.end_line, edit.end_col)
        spans.append((begin, end, edit.replacement))
    # Greedy selection front-to-back, wider span first on ties, so an
    # overlap drops the narrower edit (it is usually subsumed by the
    # wider rewrite). The survivors are applied back-to-front to keep
    # earlier offsets valid.
    spans.sort(key=lambda span: (span[0], -(span[1] - span[0])))
    kept = []
    last_end = -1
    for begin, end, replacement in spans:
        if begin < last_end:
            continue  # overlaps an edit already kept
        kept.append((begin, end, replacement))
        last_end = max(last_end, end)
    for begin, end, replacement in reversed(kept):
        source = source[:begin] + replacement + source[end:]
    return source, len(kept)


def fix_source(source: str, findings: Iterable[Finding]) -> Tuple[str, int]:
    """Apply every edit carried by ``findings`` to ``source``."""
    edits = [edit for finding in findings for edit in finding.edits]
    if not edits:
        return source, 0
    return apply_edits(source, edits)


# -- edit builders ---------------------------------------------------------------


def drop_keyword_edit(source: str, call: ast.Call, name: str) -> Tuple[SourceEdit, ...]:
    """Remove the ``name=...`` keyword argument from ``call``.

    The span swallows the separating comma: the preceding one when the
    keyword follows another argument, the trailing one when it leads.
    Returns ``()`` when the node lacks position info (pre-3.8 spans) --
    the finding then simply stays hint-only.
    """
    keyword = next((kw for kw in call.keywords if kw.arg == name), None)
    if keyword is None or keyword.value.end_lineno is None:
        return ()
    starts = _line_starts(source)
    value = keyword.value
    begin = _offset(starts, value.lineno, value.col_offset)
    begin = source.rindex(name, 0, begin)  # start of "name=value"
    end = _offset(starts, value.end_lineno, value.end_col_offset)
    # Prefer eating the preceding comma (", name=value"); fall back to
    # the trailing one ("name=value, ") when the keyword leads the list.
    before = begin
    while before > 0 and source[before - 1] in " \t\n":
        before -= 1
    if before > 0 and source[before - 1] == ",":
        begin = before - 1
    else:
        after = end
        while after < len(source) and source[after] in " \t\n":
            after += 1
        if after < len(source) and source[after] == ",":
            end = after + 1
            while end < len(source) and source[end] == " ":
                end += 1
    edit = _edit_from_offsets(source, starts, begin, end, "")
    return (edit,)


def set_keyword_value_edit(
    source: str, call: ast.Call, name: str, literal: str
) -> Tuple[SourceEdit, ...]:
    """Replace the value of the ``name=...`` keyword with ``literal``.

    For keywords whose *absence* means something other than ``False``
    (``save_async`` coalesces by default), dropping the argument would
    silently keep the flagged behaviour -- pinning the value is the
    honest mechanical fix.
    """
    keyword = next((kw for kw in call.keywords if kw.arg == name), None)
    if keyword is None or keyword.value.end_lineno is None:
        return ()
    starts = _line_starts(source)
    value = keyword.value
    begin = _offset(starts, value.lineno, value.col_offset)
    end = _offset(starts, value.end_lineno, value.end_col_offset)
    return (_edit_from_offsets(source, starts, begin, end, literal),)


def add_failure_stub_edit(
    source: str, call: ast.Call, keyword_name: str
) -> Tuple[SourceEdit, ...]:
    """Append ``keyword_name=lambda *args: None`` to ``call``.

    The stub makes the silent-timeout path explicit: it keeps the
    program behaviour identical while leaving a grep-able marker the
    author is expected to replace with real handling.
    """
    if call.end_lineno is None:
        return ()
    starts = _line_starts(source)
    end = _offset(starts, call.end_lineno, call.end_col_offset)
    close = end - 1
    if close < 0 or source[close] != ")":
        return ()
    insert_at = close
    before = close
    while before > 0 and source[before - 1] in " \t\n":
        before -= 1
    stub = f"{keyword_name}=lambda *args: None"
    if before > 0 and source[before - 1] == ",":
        text = f" {stub}"
    elif before > 0 and source[before - 1] == "(":
        text = stub
    else:
        text = f", {stub}"
    edit = _edit_from_offsets(source, starts, insert_at, insert_at, text)
    return (edit,)


def transient_declaration_edit(
    source: str,
    klass: ast.ClassDef,
    declaration: Optional[ast.AST],
    existing: Sequence[str],
    missing: Sequence[str],
) -> Tuple[SourceEdit, ...]:
    """Extend (or create) ``klass``'s ``__transient__`` declaration so it
    also names every field in ``missing``.

    With an existing declaration the value literal is rewritten in
    place, preserving its delimiter style. Without one, a new
    declaration is inserted as the first statement of the class body
    (after a docstring, matching its indentation). All missing fields
    land in one edit, so the several findings of one class carry
    byte-identical (hence collapsing) fixes.
    """
    names = list(existing) + [name for name in missing if name not in existing]
    if declaration is not None:
        value = getattr(declaration, "value", None)
        if value is None or value.end_lineno is None:
            return ()
        starts = _line_starts(source)
        begin = _offset(starts, value.lineno, value.col_offset)
        end = _offset(starts, value.end_lineno, value.end_col_offset)
        if isinstance(value, ast.List):
            literal = "[" + ", ".join(repr(name) for name in names) + "]"
        elif isinstance(value, ast.Set):
            literal = "{" + ", ".join(repr(name) for name in names) + "}"
        else:
            inner = ", ".join(repr(name) for name in names)
            if len(names) == 1:
                inner += ","
            literal = f"({inner})"
        return (_edit_from_offsets(source, starts, begin, end, literal),)
    # No declaration anywhere in this class: insert one at the top of
    # the body, after a docstring if present.
    body = klass.body
    anchor = body[0]
    if (
        isinstance(anchor, ast.Expr)
        and isinstance(anchor.value, ast.Constant)
        and isinstance(anchor.value.value, str)
        and len(body) > 1
    ):
        anchor = body[1]
    indent = " " * anchor.col_offset
    inner = ", ".join(repr(name) for name in names)
    if len(names) == 1:
        inner += ","
    line = f"{indent}__transient__ = ({inner})\n"
    return (SourceEdit(anchor.lineno, 0, anchor.lineno, 0, line),)


def _edit_from_offsets(
    source: str, starts: Sequence[int], begin: int, end: int, replacement: str
) -> SourceEdit:
    """Absolute offsets -> the AST-coordinate span ``SourceEdit`` wants."""

    def to_pos(offset: int) -> Tuple[int, int]:
        line = 1
        for index, start in enumerate(starts):
            if start <= offset:
                line = index + 1
            else:
                break
        return line, offset - starts[line - 1]

    line, col = to_pos(begin)
    end_line, end_col = to_pos(end)
    return SourceEdit(line, col, end_line, end_col, replacement)
