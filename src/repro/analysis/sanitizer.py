"""Runtime thread-affinity sanitizer for MORENA programs.

The paper's contract is a thread-affinity contract: listeners "are
always asynchronously scheduled for execution in the activity's main
thread", so bound :class:`~repro.things.thing.Thing` state is owned by
the device's main looper and nothing running on middleware threads
(reactor workers, looper pumps, reference/beamer event loops) may poke
it directly. ``morelint`` checks that statically; this module checks it
at run time, for the cases no source analysis can see (callbacks built
dynamically, third-party helpers, the middleware itself regressing).

When installed, the sanitizer patches:

* ``Looper._loop``, ``Reactor._worker_loop`` / ``_timer_loop``,
  ``TagReference._event_loop`` and ``Beamer._event_loop`` so every
  middleware thread registers itself on entry (threads started *before*
  installation are recognized by their names as a fallback);
* ``Thing.__setattr__`` so public-field writes to a *bound* Thing from
  a middleware thread that is not the owning looper's pump thread are
  recorded as :class:`AffinityViolation`; unbound Things stay freely
  mutable -- Gson legitimately revives them on reactor workers;
* ``TagReference._post_listener`` so every listener verifies, at the
  moment it executes, that it is running on the reference's main looper;
* ``AsyncioReactor._loop_runner`` so the asyncio backend's loop thread
  registers as middleware (event-**loop** affinity alongside looper
  affinity: a callback mutating a bound Thing from the loop thread is an
  off-looper mutation like any other middleware thread's);
* ``OperationFuture.result`` and ``Looper.sync`` so a *blocking* wait
  executed inside a running asyncio event loop — the reactor's or any
  user loop — is recorded as a ``blocking-on-loop`` violation: one
  stalled callback freezes every reference multiplexed on that loop.
  (``await future`` is the non-blocking spelling; morelint rule MOR007
  is the static twin of this check.)

External threads (a test's main thread, a user script) are deliberately
*not* flagged: the simulation's "UI thread" is whatever drives the
scenario, and mutating a Thing there then calling ``save_async`` is the
documented programming model.

Usage::

    from repro.analysis import sanitizer
    san = sanitizer.install()            # or install(strict=True)
    ...
    print(san.format_report())
    sanitizer.uninstall()

or set ``MORENA_SANITIZER=1`` (``=strict`` to raise at the violation
point) and let the test suite's conftest install it for the session.
"""

from __future__ import annotations

import asyncio
import os
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "AffinityViolation",
    "AffinityViolationError",
    "LocksetTracker",
    "ThreadAffinitySanitizer",
    "TrackedLock",
    "current",
    "install",
    "install_from_env",
    "uninstall",
]

# Marker set on every wrapper the sanitizer installs, so a second
# install (another sanitizer instance, a re-entrant test fixture) can
# recognize an already-patched entry point and refuse to wrap the
# wrapper -- double-wrapping would survive the first uninstall and leak
# patched behaviour into unsanitized runs.
_WRAPPER_MARK = "__morena_sanitizer_wrapper__"

# Thread-name fallbacks for middleware threads started before install().
_MIDDLEWARE_NAME_MARKS: Tuple[str, ...] = ("looper-", "tagref-", "beamer-")


def _in_running_event_loop() -> bool:
    """Whether the calling thread is currently inside a running asyncio loop."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return False
    return True


class AffinityViolationError(RuntimeError):
    """Raised at the violation point when the sanitizer runs strict."""


@dataclass(frozen=True)
class AffinityViolation:
    """One recorded breach of the thread-affinity contract."""

    kind: str  # "off-looper-mutation" | "listener-off-looper"
    #          | "blocking-on-loop" | "unlocked-shared-write"
    subject: str  # e.g. "WifiConfig.ssid" or the listener's repr
    thread_name: str  # the offending thread
    owner: str  # the looper (or event loop) that owns the subject
    location: str  # innermost user frame, "file:line"

    def __str__(self) -> str:
        if self.kind == "off-looper-mutation":
            return (
                f"{self.location}: thread {self.thread_name!r} mutated "
                f"{self.subject} but the field is owned by looper "
                f"{self.owner!r}; post the mutation to the looper instead"
            )
        if self.kind == "blocking-on-loop":
            return (
                f"{self.location}: {self.subject} blocked inside the running "
                f"event loop {self.owner!r} on thread {self.thread_name!r}; "
                f"await the future (or move the wait off the loop) instead"
            )
        if self.kind == "unlocked-shared-write":
            return (
                f"{self.location}: {self.subject} written by thread "
                f"{self.thread_name!r} with no lock consistently held "
                f"(discipline so far: {self.owner}); every thread writing "
                "a shared field must hold the same lock"
            )
        return (
            f"{self.location}: listener {self.subject} executed on thread "
            f"{self.thread_name!r} instead of its main looper {self.owner!r}"
        )


def _caller_location() -> str:
    """Innermost stack frame outside this module, as ``file:line``."""
    for frame in reversed(traceback.extract_stack()):
        if not frame.filename.endswith("sanitizer.py"):
            return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


def _is_wrapped(klass: type, attr: str) -> bool:
    return getattr(klass.__dict__.get(attr), _WRAPPER_MARK, False)


def _mark(wrapper: Any) -> Any:
    setattr(wrapper, _WRAPPER_MARK, True)
    return wrapper


# -- Eraser-style lockset tracking ---------------------------------------------


class TrackedLock:
    """A lock proxy that reports acquire/release to a tracker.

    Wraps anything with ``acquire``/``release`` (``threading.Lock``,
    ``RLock``, user monitors); usable exactly like the wrapped lock,
    context-manager protocol included.
    """

    def __init__(self, tracker: "LocksetTracker", name: str, inner: Any) -> None:
        self._tracker = tracker
        self._name = name
        self._inner = inner

    def acquire(self, *args: Any, **kwargs: Any) -> Any:
        got = self._inner.acquire(*args, **kwargs)
        if got is not False:  # acquire(blocking=False) may fail
            self._tracker._note_acquired(self._name)
        return got

    def release(self) -> None:
        self._tracker._note_released(self._name)
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __getattr__(self, name: str) -> Any:  # locked(), _is_owned(), ...
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"TrackedLock({self._name!r}, {self._inner!r})"


class LocksetTracker:
    """The dynamic mirror of morelint rule MOR011.

    Eraser's lockset algorithm over *watched* objects: ``watch(obj)``
    wraps the object's lock-smelling attributes in :class:`TrackedLock`
    and patches its type's ``__setattr__`` so every public-field write
    records the set of tracked locks the writing thread holds. Per
    field the tracker keeps the classic state machine:

    * **exclusive** -- only the first thread has written; no checking
      (initialization is thread-private).
    * **shared** -- a second thread wrote; from that write on, the
      field's *candidate lockset* is intersected with each writer's
      held set. An empty candidate set means no lock protects the
      field consistently: one ``unlocked-shared-write`` violation is
      recorded (once per field).

    Nothing is watched by default, so an installed sanitizer stays
    silent on lock-clean programs.
    """

    def __init__(self, record: Callable[[AffinityViolation], None]) -> None:
        self._record = record
        self._held = threading.local()
        self._lock = threading.Lock()
        # (id(obj), attr) -> {"owner": ident, "candidates": set|None,
        #                     "discipline": set, "reported": bool}
        self._fields: Dict[Tuple[int, str], Dict[str, Any]] = {}
        self._watched_ids: Dict[int, str] = {}  # id(obj) -> type name
        self._patched_types: List[Tuple[type, Any]] = []

    # -- per-thread held set -------------------------------------------------

    def _held_set(self) -> set:
        held = getattr(self._held, "names", None)
        if held is None:
            held = set()
            self._held.names = held
        return held

    def _note_acquired(self, name: str) -> None:
        self._held_set().add(name)

    def _note_released(self, name: str) -> None:
        self._held_set().discard(name)

    # -- watching ------------------------------------------------------------

    def watch(self, obj: Any) -> Any:
        """Track lock discipline for ``obj``'s public fields."""
        for name, value in list(vars(obj).items()):
            if isinstance(value, TrackedLock):
                continue
            if _lockish_name(name) and hasattr(value, "acquire") and hasattr(
                value, "release"
            ):
                object.__setattr__(obj, name, TrackedLock(self, name, value))
        klass = type(obj)
        if not _is_wrapped(klass, "__setattr__"):
            self._patch_type(klass)
        with self._lock:
            self._watched_ids[id(obj)] = klass.__name__
        return obj

    def _patch_type(self, klass: type) -> None:
        original = klass.__dict__.get("__setattr__")
        fallback = original if original is not None else object.__setattr__
        tracker = self

        def watched_setattr(target: Any, name: str, value: Any) -> None:
            fallback(target, name, value)
            if not name.startswith("_") and not isinstance(value, TrackedLock):
                tracker._note_write(target, name)

        klass.__setattr__ = _mark(watched_setattr)
        self._patched_types.append((klass, original))

    def unwatch_all(self) -> None:
        """Restore every patched ``__setattr__`` and forget all state."""
        for klass, original in reversed(self._patched_types):
            if original is None:
                try:
                    del klass.__setattr__
                except AttributeError:  # pragma: no cover - already gone
                    pass
            else:
                klass.__setattr__ = original
        self._patched_types.clear()
        with self._lock:
            self._watched_ids.clear()
            self._fields.clear()

    # -- the state machine ---------------------------------------------------

    def _note_write(self, target: Any, attr: str) -> None:
        with self._lock:
            type_name = self._watched_ids.get(id(target))
        if type_name is None:
            return
        ident = threading.current_thread().ident
        held = frozenset(self._held_set())
        key = (id(target), attr)
        violation: Optional[AffinityViolation] = None
        with self._lock:
            state = self._fields.get(key)
            if state is None:
                self._fields[key] = {
                    "owner": ident,
                    "candidates": None,
                    "discipline": set(held),
                    "reported": False,
                }
                return
            state["discipline"] |= held
            if state["candidates"] is None:
                if ident == state["owner"]:
                    return  # still exclusive to the first thread
                state["candidates"] = set(held)  # now shared: start refining
            else:
                state["candidates"] &= held
            if not state["candidates"] and not state["reported"]:
                state["reported"] = True
                discipline = (
                    ", ".join(sorted(state["discipline"])) or "no lock ever held"
                )
                violation = AffinityViolation(
                    kind="unlocked-shared-write",
                    subject=f"{type_name}.{attr}",
                    thread_name=threading.current_thread().name,
                    owner=discipline,
                    location=_caller_location(),
                )
        if violation is not None:
            self._record(violation)


def _lockish_name(name: str) -> bool:
    lowered = name.lower()
    return any(mark in lowered for mark in ("lock", "mutex", "monitor"))


class ThreadAffinitySanitizer:
    """Patches the middleware; collects :class:`AffinityViolation`."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.violations: List[AffinityViolation] = []
        self._lock = threading.Lock()
        self._middleware_idents: Dict[int, str] = {}  # ident -> role
        self._originals: List[Tuple[type, str, Any]] = []
        self._installed = False
        # Opt-in dynamic lockset checking (MOR011's runtime mirror):
        # nothing is watched until the test/program calls
        # ``san.lockset.watch(obj)``.
        self.lockset = LocksetTracker(self._record)

    # -- middleware-thread bookkeeping ---------------------------------------

    def register_current_thread(self, role: str) -> None:
        """Mark the calling thread as middleware (loops call this on entry)."""
        thread = threading.current_thread()
        with self._lock:
            self._middleware_idents[thread.ident] = role

    def is_middleware_thread(self) -> bool:
        thread = threading.current_thread()
        with self._lock:
            if thread.ident in self._middleware_idents:
                return True
        name = thread.name
        return any(name.startswith(mark) for mark in _MIDDLEWARE_NAME_MARKS) or (
            "-worker-" in name or name.endswith("-timer") or name.endswith("-aioloop")
        )

    # -- recording -----------------------------------------------------------

    def _record(self, violation: AffinityViolation) -> None:
        with self._lock:
            self.violations.append(violation)
        if self.strict:
            raise AffinityViolationError(str(violation))

    def drain(self, start: int = 0) -> List[AffinityViolation]:
        """Return and remove violations recorded at index >= ``start``."""
        with self._lock:
            drained = self.violations[start:]
            del self.violations[start:]
            return drained

    def format_report(self) -> str:
        with self._lock:
            violations = list(self.violations)
        if not violations:
            return "thread-affinity sanitizer: no violations"
        lines = [
            f"thread-affinity sanitizer: {len(violations)} violation(s)"
        ] + [f"  {violation}" for violation in violations]
        return "\n".join(lines)

    # -- patching ------------------------------------------------------------

    def install(self) -> None:
        if self._installed:
            return
        from repro.android.looper import Looper
        from repro.core.beam import Beamer
        from repro.core.futures import OperationFuture
        from repro.core.reference import TagReference
        from repro.core.scheduler import AsyncioReactor, Reactor
        from repro.things.thing import Thing

        self._patch_registering(Looper, "_loop", "looper")
        self._patch_registering(Reactor, "_worker_loop", "reactor-worker")
        self._patch_registering(Reactor, "_timer_loop", "reactor-timer")
        self._patch_registering(AsyncioReactor, "_loop_runner", "asyncio-loop")
        self._patch_registering(TagReference, "_event_loop", "reference")
        self._patch_registering(Beamer, "_event_loop", "beamer")
        self._patch_thing_setattr(Thing)
        self._patch_post_listener(TagReference)
        self._patch_blocking(OperationFuture, "result", "OperationFuture.result")
        self._patch_blocking(Looper, "sync", "Looper.sync")
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        self.lockset.unwatch_all()
        for klass, attr, original in reversed(self._originals):
            if original is None:
                try:
                    delattr(klass, attr)
                except AttributeError:  # pragma: no cover - already gone
                    pass
            else:
                setattr(klass, attr, original)
        self._originals.clear()
        self._installed = False

    def _save(self, klass: type, attr: str) -> Any:
        original = klass.__dict__.get(attr)
        self._originals.append((klass, attr, original))
        return getattr(klass, attr, None)

    def _patch_registering(self, klass: type, attr: str, role: str) -> None:
        if _is_wrapped(klass, attr):
            return
        original = self._save(klass, attr)
        sanitizer = self

        def runner(obj: Any, *args: Any, **kwargs: Any) -> Any:
            sanitizer.register_current_thread(role)
            return original(obj, *args, **kwargs)

        runner.__name__ = attr
        setattr(klass, attr, _mark(runner))

    def _patch_thing_setattr(self, thing_class: type) -> None:
        if _is_wrapped(thing_class, "__setattr__"):
            return
        # Thing does not define __setattr__, so the saved original is
        # None and uninstall() deletes the patch, restoring object's.
        self._save(thing_class, "__setattr__")
        sanitizer = self

        def checked_setattr(thing: Any, name: str, value: Any) -> None:
            if not name.startswith("_") and sanitizer.is_middleware_thread():
                owner = sanitizer.owner_of(thing)
                if owner is not None and not owner.is_current_thread:
                    object.__setattr__(thing, name, value)
                    sanitizer._record(
                        AffinityViolation(
                            kind="off-looper-mutation",
                            subject=f"{type(thing).__name__}.{name}",
                            thread_name=threading.current_thread().name,
                            owner=owner.name,
                            location=_caller_location(),
                        )
                    )
                    return
            object.__setattr__(thing, name, value)

        thing_class.__setattr__ = _mark(checked_setattr)

    def _patch_post_listener(self, reference_class: type) -> None:
        if _is_wrapped(reference_class, "_post_listener"):
            return
        original = self._save(reference_class, "_post_listener")
        sanitizer = self

        def checked_post(
            reference: Any, callback: Callable[..., None], *args: Any
        ) -> None:
            looper = reference.looper

            def guarded(*callback_args: Any) -> None:
                if not looper.is_current_thread:
                    sanitizer._record(
                        AffinityViolation(
                            kind="listener-off-looper",
                            subject=getattr(
                                callback, "__qualname__", repr(callback)
                            ),
                            thread_name=threading.current_thread().name,
                            owner=looper.name,
                            location=_caller_location(),
                        )
                    )
                callback(*callback_args)

            original(reference, guarded, *args)

        checked_post.__name__ = "_post_listener"
        reference_class._post_listener = _mark(checked_post)

    def _patch_blocking(self, klass: type, attr: str, subject: str) -> None:
        """Record a ``blocking-on-loop`` violation when ``klass.attr`` —
        a blocking wait — is entered with an asyncio event loop running
        on the calling thread. The wait still proceeds (record-only
        mode must not change behaviour)."""
        if _is_wrapped(klass, attr):
            return
        original = self._save(klass, attr)
        sanitizer = self

        def checked_wait(obj: Any, *args: Any, **kwargs: Any) -> Any:
            if _in_running_event_loop():
                loop_name = repr(asyncio.get_running_loop())
                sanitizer._record(
                    AffinityViolation(
                        kind="blocking-on-loop",
                        subject=subject,
                        thread_name=threading.current_thread().name,
                        owner=loop_name,
                        location=_caller_location(),
                    )
                )
            return original(obj, *args, **kwargs)

        checked_wait.__name__ = attr
        setattr(klass, attr, _mark(checked_wait))

    # -- ownership -----------------------------------------------------------

    @staticmethod
    def owner_of(thing: Any) -> Optional[Any]:
        """The looper owning ``thing``'s public fields, or ``None``.

        Only *bound* Things have an owner: binding is the moment a Thing
        becomes shared with the middleware (Gson freely builds and fills
        unbound instances on reactor workers while reviving reads).
        """
        if thing.__dict__.get("_reference") is None:
            return None
        activity = thing.__dict__.get("_activity")
        device = getattr(activity, "device", None)
        return getattr(device, "main_looper", None)


# -- module-level singleton ----------------------------------------------------

_active: Optional[ThreadAffinitySanitizer] = None


def current() -> Optional[ThreadAffinitySanitizer]:
    """The installed sanitizer, or ``None``."""
    return _active


def install(strict: bool = False) -> ThreadAffinitySanitizer:
    """Install (idempotent: returns the existing instance if active)."""
    global _active
    if _active is not None:
        return _active
    sanitizer = ThreadAffinitySanitizer(strict=strict)
    sanitizer.install()
    _active = sanitizer
    return sanitizer


def uninstall() -> None:
    global _active
    if _active is not None:
        _active.uninstall()
        _active = None


def install_from_env(
    variable: str = "MORENA_SANITIZER",
) -> Optional[ThreadAffinitySanitizer]:
    """Install according to ``MORENA_SANITIZER``: unset/``0``/``off`` ->
    no-op, ``strict`` -> strict mode, anything else truthy -> record-only."""
    value = os.environ.get(variable, "").strip().lower()
    if value in ("", "0", "off", "false", "no"):
        return None
    return install(strict=value == "strict")
