"""Runtime thread-affinity sanitizer for MORENA programs.

The paper's contract is a thread-affinity contract: listeners "are
always asynchronously scheduled for execution in the activity's main
thread", so bound :class:`~repro.things.thing.Thing` state is owned by
the device's main looper and nothing running on middleware threads
(reactor workers, looper pumps, reference/beamer event loops) may poke
it directly. ``morelint`` checks that statically; this module checks it
at run time, for the cases no source analysis can see (callbacks built
dynamically, third-party helpers, the middleware itself regressing).

When installed, the sanitizer patches:

* ``Looper._loop``, ``Reactor._worker_loop`` / ``_timer_loop``,
  ``TagReference._event_loop`` and ``Beamer._event_loop`` so every
  middleware thread registers itself on entry (threads started *before*
  installation are recognized by their names as a fallback);
* ``Thing.__setattr__`` so public-field writes to a *bound* Thing from
  a middleware thread that is not the owning looper's pump thread are
  recorded as :class:`AffinityViolation`; unbound Things stay freely
  mutable -- Gson legitimately revives them on reactor workers;
* ``TagReference._post_listener`` so every listener verifies, at the
  moment it executes, that it is running on the reference's main looper;
* ``AsyncioReactor._loop_runner`` so the asyncio backend's loop thread
  registers as middleware (event-**loop** affinity alongside looper
  affinity: a callback mutating a bound Thing from the loop thread is an
  off-looper mutation like any other middleware thread's);
* ``OperationFuture.result`` and ``Looper.sync`` so a *blocking* wait
  executed inside a running asyncio event loop — the reactor's or any
  user loop — is recorded as a ``blocking-on-loop`` violation: one
  stalled callback freezes every reference multiplexed on that loop.
  (``await future`` is the non-blocking spelling; morelint rule MOR007
  is the static twin of this check.)

External threads (a test's main thread, a user script) are deliberately
*not* flagged: the simulation's "UI thread" is whatever drives the
scenario, and mutating a Thing there then calling ``save_async`` is the
documented programming model.

Usage::

    from repro.analysis import sanitizer
    san = sanitizer.install()            # or install(strict=True)
    ...
    print(san.format_report())
    sanitizer.uninstall()

or set ``MORENA_SANITIZER=1`` (``=strict`` to raise at the violation
point) and let the test suite's conftest install it for the session.
"""

from __future__ import annotations

import asyncio
import os
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "AffinityViolation",
    "AffinityViolationError",
    "ThreadAffinitySanitizer",
    "current",
    "install",
    "install_from_env",
    "uninstall",
]

# Thread-name fallbacks for middleware threads started before install().
_MIDDLEWARE_NAME_MARKS: Tuple[str, ...] = ("looper-", "tagref-", "beamer-")


def _in_running_event_loop() -> bool:
    """Whether the calling thread is currently inside a running asyncio loop."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return False
    return True


class AffinityViolationError(RuntimeError):
    """Raised at the violation point when the sanitizer runs strict."""


@dataclass(frozen=True)
class AffinityViolation:
    """One recorded breach of the thread-affinity contract."""

    kind: str  # "off-looper-mutation" | "listener-off-looper" | "blocking-on-loop"
    subject: str  # e.g. "WifiConfig.ssid" or the listener's repr
    thread_name: str  # the offending thread
    owner: str  # the looper (or event loop) that owns the subject
    location: str  # innermost user frame, "file:line"

    def __str__(self) -> str:
        if self.kind == "off-looper-mutation":
            return (
                f"{self.location}: thread {self.thread_name!r} mutated "
                f"{self.subject} but the field is owned by looper "
                f"{self.owner!r}; post the mutation to the looper instead"
            )
        if self.kind == "blocking-on-loop":
            return (
                f"{self.location}: {self.subject} blocked inside the running "
                f"event loop {self.owner!r} on thread {self.thread_name!r}; "
                f"await the future (or move the wait off the loop) instead"
            )
        return (
            f"{self.location}: listener {self.subject} executed on thread "
            f"{self.thread_name!r} instead of its main looper {self.owner!r}"
        )


def _caller_location() -> str:
    """Innermost stack frame outside this module, as ``file:line``."""
    for frame in reversed(traceback.extract_stack()):
        if not frame.filename.endswith("sanitizer.py"):
            return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


class ThreadAffinitySanitizer:
    """Patches the middleware; collects :class:`AffinityViolation`."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.violations: List[AffinityViolation] = []
        self._lock = threading.Lock()
        self._middleware_idents: Dict[int, str] = {}  # ident -> role
        self._originals: List[Tuple[type, str, Any]] = []
        self._installed = False

    # -- middleware-thread bookkeeping ---------------------------------------

    def register_current_thread(self, role: str) -> None:
        """Mark the calling thread as middleware (loops call this on entry)."""
        thread = threading.current_thread()
        with self._lock:
            self._middleware_idents[thread.ident] = role

    def is_middleware_thread(self) -> bool:
        thread = threading.current_thread()
        with self._lock:
            if thread.ident in self._middleware_idents:
                return True
        name = thread.name
        return any(name.startswith(mark) for mark in _MIDDLEWARE_NAME_MARKS) or (
            "-worker-" in name or name.endswith("-timer") or name.endswith("-aioloop")
        )

    # -- recording -----------------------------------------------------------

    def _record(self, violation: AffinityViolation) -> None:
        with self._lock:
            self.violations.append(violation)
        if self.strict:
            raise AffinityViolationError(str(violation))

    def drain(self, start: int = 0) -> List[AffinityViolation]:
        """Return and remove violations recorded at index >= ``start``."""
        with self._lock:
            drained = self.violations[start:]
            del self.violations[start:]
            return drained

    def format_report(self) -> str:
        with self._lock:
            violations = list(self.violations)
        if not violations:
            return "thread-affinity sanitizer: no violations"
        lines = [
            f"thread-affinity sanitizer: {len(violations)} violation(s)"
        ] + [f"  {violation}" for violation in violations]
        return "\n".join(lines)

    # -- patching ------------------------------------------------------------

    def install(self) -> None:
        if self._installed:
            return
        from repro.android.looper import Looper
        from repro.core.beam import Beamer
        from repro.core.futures import OperationFuture
        from repro.core.reference import TagReference
        from repro.core.scheduler import AsyncioReactor, Reactor
        from repro.things.thing import Thing

        self._patch_registering(Looper, "_loop", "looper")
        self._patch_registering(Reactor, "_worker_loop", "reactor-worker")
        self._patch_registering(Reactor, "_timer_loop", "reactor-timer")
        self._patch_registering(AsyncioReactor, "_loop_runner", "asyncio-loop")
        self._patch_registering(TagReference, "_event_loop", "reference")
        self._patch_registering(Beamer, "_event_loop", "beamer")
        self._patch_thing_setattr(Thing)
        self._patch_post_listener(TagReference)
        self._patch_blocking(OperationFuture, "result", "OperationFuture.result")
        self._patch_blocking(Looper, "sync", "Looper.sync")
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        for klass, attr, original in reversed(self._originals):
            if original is None:
                try:
                    delattr(klass, attr)
                except AttributeError:  # pragma: no cover - already gone
                    pass
            else:
                setattr(klass, attr, original)
        self._originals.clear()
        self._installed = False

    def _save(self, klass: type, attr: str) -> Any:
        original = klass.__dict__.get(attr)
        self._originals.append((klass, attr, original))
        return getattr(klass, attr, None)

    def _patch_registering(self, klass: type, attr: str, role: str) -> None:
        original = self._save(klass, attr)
        sanitizer = self

        def runner(obj: Any, *args: Any, **kwargs: Any) -> Any:
            sanitizer.register_current_thread(role)
            return original(obj, *args, **kwargs)

        runner.__name__ = attr
        setattr(klass, attr, runner)

    def _patch_thing_setattr(self, thing_class: type) -> None:
        # Thing does not define __setattr__, so the saved original is
        # None and uninstall() deletes the patch, restoring object's.
        self._save(thing_class, "__setattr__")
        sanitizer = self

        def checked_setattr(thing: Any, name: str, value: Any) -> None:
            if not name.startswith("_") and sanitizer.is_middleware_thread():
                owner = sanitizer.owner_of(thing)
                if owner is not None and not owner.is_current_thread:
                    object.__setattr__(thing, name, value)
                    sanitizer._record(
                        AffinityViolation(
                            kind="off-looper-mutation",
                            subject=f"{type(thing).__name__}.{name}",
                            thread_name=threading.current_thread().name,
                            owner=owner.name,
                            location=_caller_location(),
                        )
                    )
                    return
            object.__setattr__(thing, name, value)

        thing_class.__setattr__ = checked_setattr

    def _patch_post_listener(self, reference_class: type) -> None:
        original = self._save(reference_class, "_post_listener")
        sanitizer = self

        def checked_post(
            reference: Any, callback: Callable[..., None], *args: Any
        ) -> None:
            looper = reference.looper

            def guarded(*callback_args: Any) -> None:
                if not looper.is_current_thread:
                    sanitizer._record(
                        AffinityViolation(
                            kind="listener-off-looper",
                            subject=getattr(
                                callback, "__qualname__", repr(callback)
                            ),
                            thread_name=threading.current_thread().name,
                            owner=looper.name,
                            location=_caller_location(),
                        )
                    )
                callback(*callback_args)

            original(reference, guarded, *args)

        checked_post.__name__ = "_post_listener"
        reference_class._post_listener = checked_post

    def _patch_blocking(self, klass: type, attr: str, subject: str) -> None:
        """Record a ``blocking-on-loop`` violation when ``klass.attr`` —
        a blocking wait — is entered with an asyncio event loop running
        on the calling thread. The wait still proceeds (record-only
        mode must not change behaviour)."""
        original = self._save(klass, attr)
        sanitizer = self

        def checked_wait(obj: Any, *args: Any, **kwargs: Any) -> Any:
            if _in_running_event_loop():
                loop_name = repr(asyncio.get_running_loop())
                sanitizer._record(
                    AffinityViolation(
                        kind="blocking-on-loop",
                        subject=subject,
                        thread_name=threading.current_thread().name,
                        owner=loop_name,
                        location=_caller_location(),
                    )
                )
            return original(obj, *args, **kwargs)

        checked_wait.__name__ = attr
        setattr(klass, attr, checked_wait)

    # -- ownership -----------------------------------------------------------

    @staticmethod
    def owner_of(thing: Any) -> Optional[Any]:
        """The looper owning ``thing``'s public fields, or ``None``.

        Only *bound* Things have an owner: binding is the moment a Thing
        becomes shared with the middleware (Gson freely builds and fills
        unbound instances on reactor workers while reviving reads).
        """
        if thing.__dict__.get("_reference") is None:
            return None
        activity = thing.__dict__.get("_activity")
        device = getattr(activity, "device", None)
        return getattr(device, "main_looper", None)


# -- module-level singleton ----------------------------------------------------

_active: Optional[ThreadAffinitySanitizer] = None


def current() -> Optional[ThreadAffinitySanitizer]:
    """The installed sanitizer, or ``None``."""
    return _active


def install(strict: bool = False) -> ThreadAffinitySanitizer:
    """Install (idempotent: returns the existing instance if active)."""
    global _active
    if _active is not None:
        return _active
    sanitizer = ThreadAffinitySanitizer(strict=strict)
    sanitizer.install()
    _active = sanitizer
    return sanitizer


def uninstall() -> None:
    global _active
    if _active is not None:
        _active.uninstall()
        _active = None


def install_from_env(
    variable: str = "MORENA_SANITIZER",
) -> Optional[ThreadAffinitySanitizer]:
    """Install according to ``MORENA_SANITIZER``: unset/``0``/``off`` ->
    no-op, ``strict`` -> strict mode, anything else truthy -> record-only."""
    value = os.environ.get(variable, "").strip().lower()
    if value in ("", "0", "off", "false", "no"):
        return None
    return install(strict=value == "strict")
