"""Region annotation grammar for RFID-subproblem LoC accounting.

The five categories are exactly the subproblems of the paper's Figure 2:

1. ``event-handling``  -- being notified of detected tags / received beams
2. ``data-conversion`` -- converting application data to/from NDEF
3. ``failure-handling``-- detecting, reporting and retrying failed I/O
4. ``read-write``      -- the read/write/beam operations themselves
5. ``concurrency``     -- threads and hand-offs that keep the UI responsive

Annotated source brackets code with comment markers::

    # @rfid: read-write
    ndef.write_ndef_message(message)
    # @rfid: end

Regions must not nest, every opener needs a closer, and markers
themselves are comments (never counted). Docstrings are not allowed
inside regions -- the counter counts any non-blank, non-comment line.
"""

from __future__ import annotations

import enum
import re
from typing import List, Optional, Tuple

from repro.errors import ReproError


class AnnotationError(ReproError):
    """Malformed region markers in an annotated source file."""


class RfidCategory(enum.Enum):
    EVENT_HANDLING = "event-handling"
    DATA_CONVERSION = "data-conversion"
    FAILURE_HANDLING = "failure-handling"
    READ_WRITE = "read-write"
    CONCURRENCY = "concurrency"


CATEGORIES: Tuple[RfidCategory, ...] = tuple(RfidCategory)

_MARKER_RE = re.compile(r"#\s*@rfid:\s*(?P<label>[a-z-]+)\s*$")


def parse_regions(source: str) -> List[Tuple[RfidCategory, int, int]]:
    """Extract ``(category, start_line, end_line)`` regions (1-based, exclusive
    of the marker lines). Raises :class:`AnnotationError` on bad nesting."""
    regions: List[Tuple[RfidCategory, int, int]] = []
    open_category: Optional[RfidCategory] = None
    open_line = 0
    for number, line in enumerate(source.splitlines(), start=1):
        match = _MARKER_RE.search(line)
        if not match:
            continue
        label = match.group("label")
        if label == "end":
            if open_category is None:
                raise AnnotationError(f"line {number}: '@rfid: end' without an open region")
            regions.append((open_category, open_line + 1, number - 1))
            open_category = None
        else:
            if open_category is not None:
                raise AnnotationError(
                    f"line {number}: region '{label}' opened inside "
                    f"'{open_category.value}' (regions must not nest)"
                )
            try:
                open_category = RfidCategory(label)
            except ValueError:
                known = ", ".join(c.value for c in CATEGORIES)
                raise AnnotationError(
                    f"line {number}: unknown category '{label}' (known: {known})"
                ) from None
            open_line = number
    if open_category is not None:
        raise AnnotationError(
            f"region '{open_category.value}' opened at line {open_line} never closed"
        )
    return regions
