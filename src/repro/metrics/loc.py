"""Counting and comparing annotated RFID lines of code (Figure 2)."""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from types import ModuleType
from typing import Dict, Iterable, List

from repro.metrics.annotations import CATEGORIES, RfidCategory, parse_regions


@dataclass
class LocCount:
    """RFID LoC of one implementation, split by subproblem."""

    name: str
    by_category: Dict[RfidCategory, int] = field(
        default_factory=lambda: {category: 0 for category in CATEGORIES}
    )

    @property
    def total(self) -> int:
        return sum(self.by_category.values())

    def percentage(self, category: RfidCategory) -> float:
        """Share of ``category`` in the total, in percent (Figure 2 right)."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.by_category[category] / self.total

    def percentages(self) -> Dict[RfidCategory, float]:
        return {category: self.percentage(category) for category in CATEGORIES}

    def merged_with(self, other: "LocCount", name: str) -> "LocCount":
        merged = LocCount(name=name)
        for category in CATEGORIES:
            merged.by_category[category] = (
                self.by_category[category] + other.by_category[category]
            )
        return merged


def _is_code_line(line: str) -> bool:
    stripped = line.strip()
    return bool(stripped) and not stripped.startswith("#")


def count_source(source: str, name: str = "source") -> LocCount:
    """Count annotated RFID lines in one source text."""
    count = LocCount(name=name)
    lines = source.splitlines()
    for category, start, end in parse_regions(source):
        for number in range(start, end + 1):
            if _is_code_line(lines[number - 1]):
                count.by_category[category] += 1
    return count


def count_module(module: ModuleType, name: str = "") -> LocCount:
    """Count annotated RFID lines in an imported module's source."""
    source = inspect.getsource(module)
    return count_source(source, name=name or module.__name__)


def count_modules(modules: Iterable[ModuleType], name: str) -> LocCount:
    total = LocCount(name=name)
    for module in modules:
        partial = count_module(module)
        total = total.merged_with(partial, name)
    return total


@dataclass
class LocComparison:
    """Handcrafted vs MORENA, the two panels of Figure 2."""

    handcrafted: LocCount
    morena: LocCount

    @property
    def reduction_factor(self) -> float:
        """How many times less RFID code the MORENA version needs."""
        if self.morena.total == 0:
            return float("inf")
        return self.handcrafted.total / self.morena.total

    def rows(self) -> List[tuple]:
        """(category, handcrafted LoC, MORENA LoC) rows for the left panel."""
        return [
            (
                category.value,
                self.handcrafted.by_category[category],
                self.morena.by_category[category],
            )
            for category in CATEGORIES
        ]

    def percentage_rows(self) -> List[tuple]:
        """(category, handcrafted %, MORENA %) rows for the right panel."""
        return [
            (
                category.value,
                self.handcrafted.percentage(category),
                self.morena.percentage(category),
            )
            for category in CATEGORIES
        ]

    def format_table(self) -> str:
        """A printable rendition of both Figure 2 panels."""
        width = max(len(category.value) for category in CATEGORIES)
        lines = [
            "Figure 2 (left): RFID lines of code per subproblem",
            f"{'subproblem':<{width}}  handcrafted  MORENA",
        ]
        for label, hand, morena in self.rows():
            lines.append(f"{label:<{width}}  {hand:>11}  {morena:>6}")
        lines.append(
            f"{'TOTAL':<{width}}  {self.handcrafted.total:>11}  {self.morena.total:>6}"
            f"   (reduction x{self.reduction_factor:.1f})"
        )
        lines.append("")
        lines.append("Figure 2 (right): share of each subproblem (%)")
        lines.append(f"{'subproblem':<{width}}  handcrafted  MORENA")
        for label, hand, morena in self.percentage_rows():
            lines.append(f"{label:<{width}}  {hand:>10.1f}%  {morena:>5.1f}%")
        return "\n".join(lines)


def compare_implementations(
    handcrafted_modules: Iterable[ModuleType],
    morena_modules: Iterable[ModuleType],
) -> LocComparison:
    """Count both implementations and pair them up for Figure 2."""
    return LocComparison(
        handcrafted=count_modules(handcrafted_modules, "handcrafted"),
        morena=count_modules(morena_modules, "morena"),
    )
