"""Head-of-line blocking and fairness metrics for cross-tag scheduling.

The per-port transaction scheduler shares one radio across co-present
tags; whether it does so *fairly* is a measurable property, not a vibe.
This module provides the three instruments the fairness benches report:

* :func:`jains_index` — Jain's fairness index over per-tag allocations:
  ``(Σx)² / (n · Σx²)``, 1.0 for perfectly equal shares, ``1/n`` when a
  single flow takes everything. The classic summary for "did the hot
  tag starve its neighbours".
* :func:`percentile` — nearest-rank percentile over a small sample (the
  bench populations are tags, not requests; linear interpolation over
  eight tags would imply precision the data doesn't have).
* :class:`LatencySummary` — p50/p99/min/max/mean of a latency sample,
  as a dict ready for ``BENCH_*.json`` rows.

Pure functions over sequences; no scheduler imports (the benches join
scheduler telemetry to these instruments themselves).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def jains_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n · Σx²)`` over ``allocations``.

    Defined for non-negative allocations; an empty sample or an
    all-zero sample (nobody got anything — trivially "fair") is 1.0.
    """
    n = len(allocations)
    if n == 0:
        return 1.0
    total = float(sum(allocations))
    squares = float(sum(x * x for x in allocations))
    if squares == 0.0:
        return 1.0
    return (total * total) / (n * squares)


def percentile(sample: Sequence[float], p: float) -> float:
    """Nearest-rank percentile ``p`` (0..100) of ``sample``.

    Raises ``ValueError`` on an empty sample — a missing latency
    population is a bench bug, not a zero.
    """
    if not sample:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(sample)
    if p == 0.0:
        return ordered[0]
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[rank - 1]


class LatencySummary:
    """p50/p99 summary of one latency sample (seconds).

    Summaries are **mergeable**: each instance retains its (sorted)
    sample, so ``a.merge(b)`` (or ``a + b``) recomputes exact
    percentiles over the union — no approximation, no histogram bins.
    That is the property the fleet gateway's sharded telemetry relies
    on: every ingestion shard keeps its own bounded latency sample and
    a global snapshot is a cheap merge of N small summaries instead of
    a stop-the-world scan over one giant guarded buffer.
    """

    __slots__ = ("count", "p50", "p99", "min", "max", "mean", "sample")

    def __init__(self, sample: Sequence[float]) -> None:
        self.count = len(sample)
        self.sample: Tuple[float, ...] = tuple(sorted(sample))
        if self.count == 0:
            self.p50: Optional[float] = None
            self.p99: Optional[float] = None
            self.min: Optional[float] = None
            self.max: Optional[float] = None
            self.mean: Optional[float] = None
        else:
            ordered = self.sample
            self.p50 = percentile(ordered, 50.0)
            self.p99 = percentile(ordered, 99.0)
            self.min = ordered[0]
            self.max = ordered[-1]
            self.mean = sum(ordered) / self.count

    def merge(self, other: "LatencySummary") -> "LatencySummary":
        """A new summary over the union of both samples (exact)."""
        if not isinstance(other, LatencySummary):
            raise TypeError(f"cannot merge LatencySummary with {type(other).__name__}")
        if other.count == 0:
            return LatencySummary(self.sample)
        if self.count == 0:
            return LatencySummary(other.sample)
        return LatencySummary(self.sample + other.sample)

    def __add__(self, other: "LatencySummary") -> "LatencySummary":
        return self.merge(other)

    @classmethod
    def merged(cls, summaries: Iterable["LatencySummary"]) -> "LatencySummary":
        """Merge many shard summaries into one (empty-safe)."""
        parts: List[float] = []
        for summary in summaries:
            parts.extend(summary.sample)
        return cls(parts)

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "p50_seconds": self.p50,
            "p99_seconds": self.p99,
            "min_seconds": self.min,
            "max_seconds": self.max,
            "mean_seconds": self.mean,
        }

    def __repr__(self) -> str:
        if self.count == 0:
            return "LatencySummary(empty)"
        return (
            f"LatencySummary(n={self.count}, p50={self.p50:.4f}s, "
            f"p99={self.p99:.4f}s)"
        )
