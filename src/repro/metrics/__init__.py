"""The paper's evaluation instruments.

Two families:

* **Lines-of-code accounting** (Section 4 of the paper): the
  handcrafted and MORENA implementations of the WiFi-sharing
  application carry machine-readable region annotations
  (``# @rfid: <category>`` ... ``# @rfid: end``) and this package
  counts them, replacing the paper's by-hand tally with an auditable
  one.
* **Fairness/head-of-line metrics** (:mod:`repro.metrics.fairness`):
  Jain's index, nearest-rank percentiles and latency summaries the
  cross-tag scheduling benches report.
"""

from repro.metrics.annotations import CATEGORIES, RfidCategory
from repro.metrics.fairness import LatencySummary, jains_index, percentile
from repro.metrics.loc import (
    LocComparison,
    LocCount,
    compare_implementations,
    count_module,
    count_source,
)

__all__ = [
    "RfidCategory",
    "CATEGORIES",
    "LocCount",
    "LocComparison",
    "count_source",
    "count_module",
    "compare_implementations",
    "jains_index",
    "percentile",
    "LatencySummary",
]
