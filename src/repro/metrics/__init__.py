"""The paper's evaluation instrument: lines-of-code accounting.

Section 4 compares the handcrafted and MORENA implementations of the
WiFi-sharing application by counting the lines of code dedicated to five
RFID subproblems. Here the two implementations carry machine-readable
region annotations (``# @rfid: <category>`` ... ``# @rfid: end``) and
this package counts them, replacing the paper's by-hand tally with an
auditable one.
"""

from repro.metrics.annotations import CATEGORIES, RfidCategory
from repro.metrics.loc import (
    LocComparison,
    LocCount,
    compare_implementations,
    count_module,
    count_source,
)

__all__ = [
    "RfidCategory",
    "CATEGORIES",
    "LocCount",
    "LocComparison",
    "count_source",
    "count_module",
    "compare_implementations",
]
