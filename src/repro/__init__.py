"""MORENA reproduction: NFC-enabled applications as distributed OO programs.

A from-scratch Python reproduction of *"MORENA: A Middleware for
Programming NFC-Enabled Android Applications as Distributed
Object-Oriented Programs"* (Lombide Carreton, Pinte, De Meuter --
Middleware 2012), including every substrate the paper depends on:

* :mod:`repro.ndef` -- the NFC Data Exchange Format binary codec;
* :mod:`repro.tags` -- simulated Type-2 tag hardware (page memory, TLVs);
* :mod:`repro.radio` -- the radio field where failure is the rule;
* :mod:`repro.android` -- loopers, activities, intents and the blocking
  NFC tech API of the Android platform;
* :mod:`repro.gson` -- GSON-style JSON object mapping;
* :mod:`repro.core` -- MORENA's tag references, discoverers and Beam
  (paper section 3);
* :mod:`repro.things` -- MORENA's thing layer (paper section 2);
* :mod:`repro.leasing` -- the paper's future-work leasing protocol;
* :mod:`repro.apps` / :mod:`repro.baseline` -- the WiFi-sharing
  evaluation application in MORENA and handcrafted versions;
* :mod:`repro.metrics` / :mod:`repro.harness` -- the Figure 2 LoC
  accounting and the behavioural experiment harness.

Quickstart::

    from repro.harness import Scenario
    from repro.apps.wifi import WifiConfig, WifiJoinerActivity

    with Scenario() as scenario:
        phone = scenario.add_phone("alice")
        app = scenario.start(phone, WifiJoinerActivity, scenario.wifi_registry)
        tag = scenario.add_tag()
        app.share_with_tag(WifiConfig(app, "corpnet", "s3cret"))
        scenario.put(tag, phone)
"""

__version__ = "1.0.0"

from repro import errors
from repro.clock import Clock, ManualClock, SystemClock

__all__ = ["errors", "Clock", "ManualClock", "SystemClock", "__version__"]
