"""Small concurrency helpers used across the simulation and the tests.

Nothing here is MORENA-specific; these are the latches, boxes and
condition-wait helpers that keep multi-threaded tests free of ``sleep()``
polling loops.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, List, Optional, TypeVar

T = TypeVar("T")


class CountDownLatch:
    """A latch that opens after ``count`` calls to :meth:`count_down`."""

    def __init__(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError("latch count must be >= 0")
        self._count = count
        self._cond = threading.Condition()

    @property
    def count(self) -> int:
        with self._cond:
            return self._count

    def count_down(self) -> None:
        with self._cond:
            if self._count > 0:
                self._count -= 1
                if self._count == 0:
                    self._cond.notify_all()

    def await_(self, timeout: Optional[float] = None) -> bool:
        """Block until the latch opens. Returns ``False`` on timeout."""
        with self._cond:
            if self._count == 0:
                return True
            return self._cond.wait_for(lambda: self._count == 0, timeout)


class ResultBox(Generic[T]):
    """A one-shot thread-safe box for handing a value between threads."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._set = False
        self._value: Optional[T] = None

    def put(self, value: T) -> None:
        with self._cond:
            if self._set:
                raise RuntimeError("ResultBox already filled")
            self._value = value
            self._set = True
            self._cond.notify_all()

    def is_set(self) -> bool:
        with self._cond:
            return self._set

    def get(self, timeout: Optional[float] = None) -> T:
        with self._cond:
            if not self._cond.wait_for(lambda: self._set, timeout):
                raise TimeoutError("ResultBox.get timed out")
            return self._value  # type: ignore[return-value]


class EventLog:
    """An append-only, thread-safe event trace with condition waits.

    Tests use this to record listener invocations and then wait for a
    particular event (or count of events) without sleeping.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._events: List[Any] = []

    def append(self, event: Any) -> None:
        with self._cond:
            self._events.append(event)
            self._cond.notify_all()

    def snapshot(self) -> List[Any]:
        with self._cond:
            return list(self._events)

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def wait_for_count(self, count: int, timeout: float = 5.0) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: len(self._events) >= count, timeout)

    def wait_for(
        self, predicate: Callable[[List[Any]], bool], timeout: float = 5.0
    ) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: predicate(list(self._events)), timeout)

    def clear(self) -> None:
        with self._cond:
            self._events.clear()


def wait_until(
    predicate: Callable[[], bool],
    timeout: float = 5.0,
    interval: float = 0.002,
) -> bool:
    """Poll ``predicate`` until true or ``timeout`` real seconds elapse.

    Last-resort helper for conditions that have no condition variable to
    hook; the poll interval is small enough for tests.
    """
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class AtomicCounter:
    """A thread-safe monotonically increasing counter."""

    def __init__(self, start: int = 0) -> None:
        self._value = start
        self._lock = threading.Lock()

    def increment(self) -> int:
        with self._lock:
            self._value += 1
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value
