"""WiFi Simple Config (WSC) credentials in NDEF.

The paper's application stores WiFi credentials in an ad-hoc JSON record.
The standards-track equivalent -- what routers print on their NFC
stickers -- is a WSC *Credential* attribute inside a
``application/vnd.wfa.wsc`` MIME record. This module implements the
TLV attribute format (2-byte type, 2-byte length, value; all big endian)
for the attributes the WiFi-sharing use case needs, so the reproduction
can read and write interoperable tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import NdefDecodeError, NdefEncodeError
from repro.ndef.mime import mime_record, record_mime_type
from repro.ndef.record import NdefRecord

WSC_MIME_TYPE = "application/vnd.wfa.wsc"

# WSC attribute types.
ATTR_CREDENTIAL = 0x100E
ATTR_NETWORK_INDEX = 0x1026
ATTR_SSID = 0x1045
ATTR_AUTH_TYPE = 0x1003
ATTR_ENCRYPTION_TYPE = 0x100F
ATTR_NETWORK_KEY = 0x1027
ATTR_MAC_ADDRESS = 0x1020

AUTH_TYPES = {
    "open": 0x0001,
    "wpa-personal": 0x0002,
    "wpa2-personal": 0x0020,
    "wpa2-enterprise": 0x0010,
}
ENCRYPTION_TYPES = {
    "none": 0x0001,
    "tkip": 0x0004,
    "aes": 0x0008,
}

_AUTH_NAMES = {value: name for name, value in AUTH_TYPES.items()}
_ENCRYPTION_NAMES = {value: name for name, value in ENCRYPTION_TYPES.items()}


def encode_attribute(attr_type: int, value: bytes) -> bytes:
    if len(value) > 0xFFFF:
        raise NdefEncodeError("WSC attribute value exceeds 65535 bytes")
    return attr_type.to_bytes(2, "big") + len(value).to_bytes(2, "big") + value


def iter_attributes(data: bytes) -> Iterator[Tuple[int, bytes]]:
    """Decode a TLV attribute stream; raises on truncation."""
    offset = 0
    while offset < len(data):
        if offset + 4 > len(data):
            raise NdefDecodeError("truncated WSC attribute header")
        attr_type = int.from_bytes(data[offset : offset + 2], "big")
        length = int.from_bytes(data[offset + 2 : offset + 4], "big")
        offset += 4
        if offset + length > len(data):
            raise NdefDecodeError("truncated WSC attribute value")
        yield attr_type, data[offset : offset + length]
        offset += length


@dataclass(frozen=True)
class WifiCredential:
    """One WSC credential: the payload of a router's NFC sticker."""

    ssid: str
    key: str
    auth: str = "wpa2-personal"
    encryption: str = "aes"

    def to_record(self) -> NdefRecord:
        """Encode as an ``application/vnd.wfa.wsc`` MIME record."""
        if self.auth not in AUTH_TYPES:
            known = ", ".join(sorted(AUTH_TYPES))
            raise NdefEncodeError(f"unknown auth type {self.auth!r}; known: {known}")
        if self.encryption not in ENCRYPTION_TYPES:
            known = ", ".join(sorted(ENCRYPTION_TYPES))
            raise NdefEncodeError(
                f"unknown encryption type {self.encryption!r}; known: {known}"
            )
        inner = b"".join(
            [
                encode_attribute(ATTR_NETWORK_INDEX, b"\x01"),
                encode_attribute(ATTR_SSID, self.ssid.encode("utf-8")),
                encode_attribute(
                    ATTR_AUTH_TYPE, AUTH_TYPES[self.auth].to_bytes(2, "big")
                ),
                encode_attribute(
                    ATTR_ENCRYPTION_TYPE,
                    ENCRYPTION_TYPES[self.encryption].to_bytes(2, "big"),
                ),
                encode_attribute(ATTR_NETWORK_KEY, self.key.encode("utf-8")),
            ]
        )
        payload = encode_attribute(ATTR_CREDENTIAL, inner)
        return mime_record(WSC_MIME_TYPE, payload)

    @staticmethod
    def from_record(record: NdefRecord) -> "WifiCredential":
        if record_mime_type(record) != WSC_MIME_TYPE:
            raise NdefDecodeError("record is not a WSC record")
        credential: Dict[int, bytes] = {}
        for attr_type, value in iter_attributes(record.payload):
            if attr_type == ATTR_CREDENTIAL:
                for inner_type, inner_value in iter_attributes(value):
                    credential[inner_type] = inner_value
                break
        else:
            raise NdefDecodeError("WSC record holds no Credential attribute")
        if ATTR_SSID not in credential:
            raise NdefDecodeError("WSC credential lacks an SSID")
        auth_code = int.from_bytes(credential.get(ATTR_AUTH_TYPE, b"\x00\x20"), "big")
        enc_code = int.from_bytes(
            credential.get(ATTR_ENCRYPTION_TYPE, b"\x00\x08"), "big"
        )
        return WifiCredential(
            ssid=credential[ATTR_SSID].decode("utf-8"),
            key=credential.get(ATTR_NETWORK_KEY, b"").decode("utf-8"),
            auth=_AUTH_NAMES.get(auth_code, "wpa2-personal"),
            encryption=_ENCRYPTION_NAMES.get(enc_code, "aes"),
        )
