"""MIME-typed NDEF records.

MORENA applications define one MIME type per application (the paper's WiFi
example uses a text type) and filter discovered tags on it. These helpers
build and inspect MIME records, including the RFC-2045-ish validation that
Android performs on the type string.
"""

from __future__ import annotations

import re

from repro.errors import NdefEncodeError
from repro.ndef.record import NdefRecord, Tnf

# token / token, per RFC 2045 (no parameters; Android normalizes to lowercase).
_MIME_RE = re.compile(
    r"^[a-z0-9!#$&^_.+-]+/[a-z0-9!#$&^_.+-]+$"
)


def normalize_mime_type(mime_type: str) -> str:
    """Lowercase and validate a MIME type string.

    Raises :class:`NdefEncodeError` if the string is not a valid
    ``type/subtype`` token pair.
    """
    normalized = mime_type.strip().lower()
    if not _MIME_RE.match(normalized):
        raise NdefEncodeError(f"invalid MIME type: {mime_type!r}")
    return normalized


def mime_record(mime_type: str, payload: bytes, record_id: bytes = b"") -> NdefRecord:
    """Build a ``TNF_MIME_MEDIA`` record carrying ``payload``."""
    normalized = normalize_mime_type(mime_type)
    return NdefRecord(Tnf.MIME_MEDIA, normalized.encode("ascii"), record_id, payload)


def text_plain_record(text: str, record_id: bytes = b"") -> NdefRecord:
    """Build a ``text/plain`` MIME record holding UTF-8 text."""
    return mime_record("text/plain", text.encode("utf-8"), record_id)


def record_mime_type(record: NdefRecord) -> str:
    """Return the MIME type of a ``TNF_MIME_MEDIA`` record, or ``""``."""
    if record.tnf != Tnf.MIME_MEDIA:
        return ""
    try:
        return record.type.decode("ascii").lower()
    except UnicodeDecodeError:
        return ""


def message_mime_type(message) -> str:
    """MIME type of a message: the type of its first MIME record, or ``""``.

    This mirrors how Android's intent dispatch derives the data type of an
    ``ACTION_NDEF_DISCOVERED`` intent from the first record of the message.
    """
    for record in message:
        mime = record_mime_type(record)
        if mime:
            return mime
    return ""
