"""NDEF messages: framed, ordered sequences of records.

Handles message-level framing (the MB flag on the first wire record, ME on
the last) and reassembly of chunked records (CF flag + UNCHANGED TNF) into
logical :class:`~repro.ndef.record.NdefRecord` instances.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import NdefDecodeError, NdefEncodeError, NdefValidationError
from repro.ndef.record import (
    ENCODE_STATS,
    NdefRecord,
    RawRecord,
    Tnf,
    iter_raw_records,
)


class NdefMessage:
    """An immutable, ordered collection of NDEF records.

    Mirrors ``android.nfc.NdefMessage``: construct from records or decode
    from bytes, encode with :meth:`to_bytes`.
    """

    __slots__ = ("_records", "_encoded", "_byte_length")

    def __init__(self, records: Iterable[NdefRecord]) -> None:
        record_list = list(records)
        if not record_list:
            raise NdefEncodeError("an NDEF message must contain at least one record")
        for record in record_list:
            if not isinstance(record, NdefRecord):
                raise TypeError(f"expected NdefRecord, got {type(record).__name__}")
        self._records: tuple = tuple(record_list)
        # Messages are immutable: encoded bytes and size are memoized so
        # retry attempts and re-taps never re-encode (benign race: two
        # threads may compute the same value once each).
        self._encoded: bytes = None  # type: ignore[assignment]
        self._byte_length: int = None  # type: ignore[assignment]

    # -- accessors -----------------------------------------------------------

    @property
    def records(self) -> Sequence[NdefRecord]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[NdefRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> NdefRecord:
        return self._records[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NdefMessage):
            return NotImplemented
        return self._records == other._records

    def __hash__(self) -> int:
        return hash(self._records)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{r.tnf.name}:{r.type!r}({len(r.payload)}B)" for r in self._records
        )
        return f"NdefMessage([{inner}])"

    # -- sizing --------------------------------------------------------------

    @property
    def byte_length(self) -> int:
        """Encoded size in bytes (unchunked encoding, memoized)."""
        size = self._byte_length
        if size is None:
            size = sum(len(record) for record in self._records)
            self._byte_length = size
        return size

    # -- codec ---------------------------------------------------------------

    @staticmethod
    def empty() -> "NdefMessage":
        """A message holding the single canonical empty record."""
        return NdefMessage([NdefRecord.empty()])

    @property
    def is_empty(self) -> bool:
        return len(self._records) == 1 and self._records[0].is_empty

    def to_bytes(self) -> bytes:
        data = self._encoded
        if data is not None:
            ENCODE_STATS.hit()
            return data
        ENCODE_STATS.miss()
        out = bytearray()
        last = len(self._records) - 1
        for index, record in enumerate(self._records):
            # Composed from the record-level cache, so a record shared
            # between messages is encoded once per flag variant.
            out += record.to_bytes(
                message_begin=index == 0, message_end=index == last
            )
        data = bytes(out)
        self._encoded = data
        return data

    @staticmethod
    def from_bytes(data: bytes) -> "NdefMessage":
        """Decode bytes into a message, reassembling chunked records.

        Raises :class:`NdefDecodeError` on any framing violation: missing
        MB on the first record, missing ME on the last, records after ME,
        bad chunk sequences, truncation.
        """
        raw_records = list(iter_raw_records(data))
        records = _reassemble(raw_records)
        return NdefMessage(records)


def _reassemble(raw_records: List[RawRecord]) -> List[NdefRecord]:
    if not raw_records:
        raise NdefDecodeError("no records decoded")
    if not raw_records[0].message_begin:
        raise NdefDecodeError("first record does not set the MB flag")
    for raw in raw_records[1:]:
        if raw.message_begin:
            raise NdefDecodeError(
                f"record at byte {raw.offset} sets MB but is not first"
            )
    if not raw_records[-1].message_end:
        raise NdefDecodeError("last record does not set the ME flag")
    for raw in raw_records[:-1]:
        if raw.message_end:
            raise NdefDecodeError(
                f"record at byte {raw.offset} sets ME but is not last"
            )

    records: List[NdefRecord] = []
    pending: Optional[RawRecord] = None
    pending_payload = bytearray()
    for raw in raw_records:
        if pending is None:
            if raw.tnf == Tnf.UNCHANGED:
                raise NdefDecodeError(
                    f"record at byte {raw.offset} uses UNCHANGED outside a chunk"
                )
            if raw.chunk_flag:
                pending = raw
                pending_payload = bytearray(raw.payload)
            else:
                records.append(
                    _build_record(raw, raw.payload)
                )
        else:
            if raw.tnf != Tnf.UNCHANGED:
                raise NdefDecodeError(
                    f"chunk at byte {raw.offset} must use UNCHANGED TNF"
                )
            if raw.type or raw.id:
                raise NdefDecodeError(
                    f"chunk at byte {raw.offset} must not carry type or id"
                )
            pending_payload += raw.payload
            if not raw.chunk_flag:
                records.append(_build_record(pending, bytes(pending_payload)))
                pending = None
                pending_payload = bytearray()
    if pending is not None:
        raise NdefDecodeError("message ended inside a chunked record")
    return records


def _build_record(raw: RawRecord, payload: bytes) -> NdefRecord:
    """A logical record from wire fields, as a *decode* concern.

    A record that parses structurally but violates the record-level
    rules (EMPTY with a payload, WELL_KNOWN without a type, ...) is
    malformed input, not an API-misuse bug -- hostile bytes must
    surface as :class:`NdefDecodeError`, never leak the constructor's
    :class:`NdefValidationError`.
    """
    try:
        return NdefRecord(Tnf(raw.tnf), raw.type, raw.id, payload)
    except NdefValidationError as exc:
        raise NdefDecodeError(
            f"record at byte {raw.offset} violates NDEF rules: {exc}"
        ) from exc
