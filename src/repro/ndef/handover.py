"""NFC Forum Connection Handover (static handover).

A router's NFC sticker is a *static handover* tag: a Handover Select
record (``Hs``) listing Alternative Carrier records (``ac``), each
pointing -- by record id -- at a carrier configuration record elsewhere
in the same message (for WiFi: the WSC record of
:mod:`repro.ndef.wsc`). This module implements the subset needed to
build and parse such tags:

* ``Hs`` record: version byte + an embedded NDEF message of ``ac``
  records;
* ``ac`` record: carrier power state, carrier data reference (the id of
  the carrier record), auxiliary references (unused here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import NdefDecodeError, NdefEncodeError
from repro.ndef.message import NdefMessage
from repro.ndef.record import NdefRecord, Tnf

RTD_HANDOVER_SELECT = b"Hs"
RTD_HANDOVER_REQUEST = b"Hr"
RTD_COLLISION_RESOLUTION = b"cr"
RTD_ALTERNATIVE_CARRIER = b"ac"

HANDOVER_VERSION = 0x12  # 1.2

# Carrier power states.
CPS_INACTIVE = 0x00
CPS_ACTIVE = 0x01
CPS_ACTIVATING = 0x02
CPS_UNKNOWN = 0x03


@dataclass(frozen=True)
class AlternativeCarrier:
    """One ``ac`` record: a pointer to a carrier configuration record."""

    carrier_reference: bytes  # the id of the carrier record
    power_state: int = CPS_ACTIVE

    def to_record(self) -> NdefRecord:
        if not 0 <= self.power_state <= 0x03:
            raise NdefEncodeError("carrier power state is two bits")
        if not 0 < len(self.carrier_reference) <= 0xFF:
            raise NdefEncodeError("carrier reference must be 1..255 bytes")
        payload = (
            bytes([self.power_state, len(self.carrier_reference)])
            + self.carrier_reference
            + b"\x00"  # auxiliary data reference count: none
        )
        return NdefRecord(Tnf.WELL_KNOWN, RTD_ALTERNATIVE_CARRIER, b"", payload)

    @staticmethod
    def from_record(record: NdefRecord) -> "AlternativeCarrier":
        if record.tnf != Tnf.WELL_KNOWN or record.type != RTD_ALTERNATIVE_CARRIER:
            raise NdefDecodeError("record is not an Alternative Carrier record")
        payload = record.payload
        if len(payload) < 2:
            raise NdefDecodeError("ac record payload too short")
        power_state = payload[0] & 0x03
        ref_length = payload[1]
        if len(payload) < 2 + ref_length + 1:
            raise NdefDecodeError("ac record reference truncated")
        return AlternativeCarrier(
            carrier_reference=payload[2 : 2 + ref_length],
            power_state=power_state,
        )


def build_handover_select(
    carriers: List[Tuple[NdefRecord, int]],
) -> NdefMessage:
    """Build a static-handover message.

    ``carriers`` pairs each carrier configuration record (which must have
    a non-empty ``id``) with its power state. The result is an NDEF
    message: the ``Hs`` record first, then the carrier records -- ready
    to be written onto a tag.
    """
    if not carriers:
        raise NdefEncodeError("a handover select needs at least one carrier")
    ac_records: List[NdefRecord] = []
    carrier_records: List[NdefRecord] = []
    for record, power_state in carriers:
        if not record.id:
            raise NdefEncodeError(
                "carrier records need an id for the ac record to reference"
            )
        ac_records.append(
            AlternativeCarrier(
                carrier_reference=record.id, power_state=power_state
            ).to_record()
        )
        carrier_records.append(record)
    hs_payload = bytes([HANDOVER_VERSION]) + NdefMessage(ac_records).to_bytes()
    hs_record = NdefRecord(Tnf.WELL_KNOWN, RTD_HANDOVER_SELECT, b"", hs_payload)
    return NdefMessage([hs_record] + carrier_records)


def build_handover_request(
    requested_mime_types: List[str],
    random_number: int = 0,
) -> NdefMessage:
    """Build a *negotiated-handover* request message.

    The requester announces which carrier types it can use; in this
    reproduction the announcement is a list of MIME types carried in
    empty-payload carrier records (one per type, ids ``0``, ``1``, ...),
    each referenced by an ``ac`` record inside the ``Hr`` record. The
    mandatory collision-resolution record carries ``random_number``.
    """
    if not requested_mime_types:
        raise NdefEncodeError("a handover request needs at least one carrier type")
    if not 0 <= random_number <= 0xFFFF:
        raise NdefEncodeError("collision-resolution number is 16 bits")
    from repro.ndef.mime import mime_record

    inner_records: List[NdefRecord] = [
        NdefRecord(
            Tnf.WELL_KNOWN,
            RTD_COLLISION_RESOLUTION,
            b"",
            random_number.to_bytes(2, "big"),
        )
    ]
    carrier_records: List[NdefRecord] = []
    for index, mime_type in enumerate(requested_mime_types):
        reference = str(index).encode("ascii")
        carrier_records.append(mime_record(mime_type, b"", record_id=reference))
        inner_records.append(
            AlternativeCarrier(
                carrier_reference=reference, power_state=CPS_ACTIVE
            ).to_record()
        )
    hr_payload = bytes([HANDOVER_VERSION]) + NdefMessage(inner_records).to_bytes()
    hr_record = NdefRecord(Tnf.WELL_KNOWN, RTD_HANDOVER_REQUEST, b"", hr_payload)
    return NdefMessage([hr_record] + carrier_records)


@dataclass(frozen=True)
class ParsedHandoverRequest:
    """The decoded content of a handover-request message."""

    version: int
    random_number: int
    requested_mime_types: List[str]


def parse_handover_request(message: NdefMessage) -> ParsedHandoverRequest:
    """Parse a handover-request message built by :func:`build_handover_request`."""
    from repro.ndef.mime import record_mime_type

    if not len(message) or message[0].type != RTD_HANDOVER_REQUEST:
        raise NdefDecodeError(
            "message does not start with a Handover Request record"
        )
    hr_record = message[0]
    if not hr_record.payload:
        raise NdefDecodeError("Hr record payload is empty")
    version = hr_record.payload[0]
    inner = NdefMessage.from_bytes(hr_record.payload[1:])
    random_number: Optional[int] = None
    references: List[bytes] = []
    for record in inner:
        if record.type == RTD_COLLISION_RESOLUTION and len(record.payload) >= 2:
            random_number = int.from_bytes(record.payload[:2], "big")
        elif record.type == RTD_ALTERNATIVE_CARRIER:
            references.append(AlternativeCarrier.from_record(record).carrier_reference)
    if random_number is None:
        raise NdefDecodeError("handover request lacks collision resolution")
    by_id = {record.id: record for record in list(message)[1:] if record.id}
    mime_types = []
    for reference in references:
        record = by_id.get(reference)
        if record is not None:
            mime_types.append(record_mime_type(record))
    return ParsedHandoverRequest(
        version=version,
        random_number=random_number,
        requested_mime_types=mime_types,
    )


@dataclass(frozen=True)
class ParsedHandover:
    """The decoded content of a static-handover message."""

    version: int
    carriers: List[Tuple[AlternativeCarrier, Optional[NdefRecord]]]

    def carrier_records(self) -> List[NdefRecord]:
        return [record for _, record in self.carriers if record is not None]


def parse_handover_select(message: NdefMessage) -> ParsedHandover:
    """Parse a handover-select message; resolves carrier references by id."""
    if not len(message) or message[0].type != RTD_HANDOVER_SELECT:
        raise NdefDecodeError("message does not start with a Handover Select record")
    hs_record = message[0]
    if not hs_record.payload:
        raise NdefDecodeError("Hs record payload is empty")
    version = hs_record.payload[0]
    inner = NdefMessage.from_bytes(hs_record.payload[1:])
    by_id = {record.id: record for record in list(message)[1:] if record.id}
    carriers: List[Tuple[AlternativeCarrier, Optional[NdefRecord]]] = []
    for record in inner:
        carrier = AlternativeCarrier.from_record(record)
        carriers.append((carrier, by_id.get(carrier.carrier_reference)))
    return ParsedHandover(version=version, carriers=carriers)
