"""Semantic validation of NDEF records and messages.

The codec in :mod:`repro.ndef.record` enforces structural rules at
construction time; this module provides an explicit validation pass that
returns a list of human-readable problems instead of raising, plus strict
wrappers that raise :class:`NdefValidationError`. The tag layer runs the
strict check before committing a message to tag memory.
"""

from __future__ import annotations

from typing import List

from repro.errors import NdefValidationError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import _MIME_RE
from repro.ndef.record import NdefRecord, Tnf
from repro.ndef.rtd import (
    RTD_SMART_POSTER,
    RTD_TEXT,
    RTD_URI,
    SmartPosterRecord,
    TextRecord,
    UriRecord,
)


def record_problems(record: NdefRecord) -> List[str]:
    """Return the list of semantic problems in ``record`` (empty if clean)."""
    problems: List[str] = []
    if record.tnf == Tnf.MIME_MEDIA:
        try:
            type_string = record.type.decode("ascii")
        except UnicodeDecodeError:
            problems.append("MIME type is not ASCII")
        else:
            if not _MIME_RE.match(type_string.lower()):
                problems.append(f"MIME type {type_string!r} is not token/token")
    elif record.tnf == Tnf.ABSOLUTE_URI:
        try:
            record.type.decode("utf-8")
        except UnicodeDecodeError:
            problems.append("absolute URI type is not valid UTF-8")
    elif record.tnf == Tnf.WELL_KNOWN:
        problems.extend(_well_known_problems(record))
    return problems


def _well_known_problems(record: NdefRecord) -> List[str]:
    decoders = {
        RTD_TEXT: TextRecord.from_record,
        RTD_URI: UriRecord.from_record,
        RTD_SMART_POSTER: SmartPosterRecord.from_record,
    }
    decoder = decoders.get(record.type)
    if decoder is None:
        return []
    try:
        decoder(record)
    except Exception as exc:  # noqa: BLE001 - collecting problems, not failing
        return [f"malformed {record.type.decode('ascii', 'replace')} record: {exc}"]
    return []


def message_problems(message: NdefMessage) -> List[str]:
    """Return semantic problems across all records of ``message``."""
    problems: List[str] = []
    for index, record in enumerate(message):
        for problem in record_problems(record):
            problems.append(f"record {index}: {problem}")
    return problems


def validate_record(record: NdefRecord) -> None:
    """Raise :class:`NdefValidationError` if ``record`` has semantic problems."""
    problems = record_problems(record)
    if problems:
        raise NdefValidationError("; ".join(problems))


def validate_message(message: NdefMessage) -> None:
    """Raise :class:`NdefValidationError` if ``message`` has semantic problems."""
    problems = message_problems(message)
    if problems:
        raise NdefValidationError("; ".join(problems))
