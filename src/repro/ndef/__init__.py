"""NFC Data Exchange Format (NDEF) codec.

A from-scratch implementation of the NFC Forum NDEF specification: records
with their TNF/flag header byte, short and normal payload-length forms,
optional ID fields, record chunking, and the well-known record type
definitions (RTD Text, RTD URI, Smart Poster) that the MORENA layers and
demo applications use.

Public entry points::

    from repro.ndef import NdefMessage, NdefRecord, Tnf
    from repro.ndef import TextRecord, UriRecord, SmartPosterRecord, mime_record

    msg = NdefMessage([mime_record("application/x-wifi", b"...")])
    raw = msg.to_bytes()
    again = NdefMessage.from_bytes(raw)
"""

from repro.ndef.record import (
    ENCODE_STATS,
    FLAG_CF,
    FLAG_IL,
    FLAG_MB,
    FLAG_ME,
    FLAG_SR,
    EncodeStats,
    NdefRecord,
    Tnf,
)
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record, text_plain_record
from repro.ndef.rtd import (
    RTD_SMART_POSTER,
    RTD_TEXT,
    RTD_URI,
    SmartPosterRecord,
    TextRecord,
    UriRecord,
)
from repro.ndef.external import (
    AAR_TYPE,
    ExternalRecord,
    aar_package,
    aar_record,
    with_aar,
)
from repro.ndef.handover import (
    AlternativeCarrier,
    build_handover_request,
    build_handover_select,
    parse_handover_request,
    parse_handover_select,
)
from repro.ndef.validation import validate_message, validate_record
from repro.ndef.wsc import WSC_MIME_TYPE, WifiCredential

__all__ = [
    "NdefRecord",
    "NdefMessage",
    "Tnf",
    "ENCODE_STATS",
    "EncodeStats",
    "FLAG_MB",
    "FLAG_ME",
    "FLAG_CF",
    "FLAG_SR",
    "FLAG_IL",
    "TextRecord",
    "UriRecord",
    "SmartPosterRecord",
    "RTD_TEXT",
    "RTD_URI",
    "RTD_SMART_POSTER",
    "mime_record",
    "text_plain_record",
    "ExternalRecord",
    "AAR_TYPE",
    "aar_record",
    "aar_package",
    "with_aar",
    "validate_message",
    "validate_record",
    "WifiCredential",
    "WSC_MIME_TYPE",
    "AlternativeCarrier",
    "build_handover_select",
    "parse_handover_select",
    "build_handover_request",
    "parse_handover_request",
]
