"""Well-known record type definitions (NFC Forum RTDs).

Implements the three RTDs the demo applications and examples use:

* **RTD Text** (type ``T``) -- status byte (encoding + language length),
  language code, text.
* **RTD URI** (type ``U``) -- one prefix-abbreviation byte followed by the
  URI remainder.
* **Smart Poster** (type ``Sp``) -- a nested NDEF message combining a URI
  record with title/action records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import NdefDecodeError, NdefEncodeError
from repro.ndef.message import NdefMessage
from repro.ndef.record import NdefRecord, Tnf

RTD_TEXT = b"T"
RTD_URI = b"U"
RTD_SMART_POSTER = b"Sp"

_TEXT_UTF16_FLAG = 0x80
_TEXT_LANG_MASK = 0x3F

# NFC Forum URI RTD abbreviation table (identifier code -> prefix).
URI_PREFIXES = (
    "",
    "http://www.",
    "https://www.",
    "http://",
    "https://",
    "tel:",
    "mailto:",
    "ftp://anonymous:anonymous@",
    "ftp://ftp.",
    "ftps://",
    "sftp://",
    "smb://",
    "nfs://",
    "ftp://",
    "dav://",
    "news:",
    "telnet://",
    "imap:",
    "rtsp://",
    "urn:",
    "pop:",
    "sip:",
    "sips:",
    "tftp:",
    "btspp://",
    "btl2cap://",
    "btgoep://",
    "tcpobex://",
    "irdaobex://",
    "file://",
    "urn:epc:id:",
    "urn:epc:tag:",
    "urn:epc:pat:",
    "urn:epc:raw:",
    "urn:epc:",
    "urn:nfc:",
)


@dataclass(frozen=True)
class TextRecord:
    """A decoded RTD Text record."""

    text: str
    language: str = "en"
    utf16: bool = False

    def to_record(self) -> NdefRecord:
        lang_bytes = self.language.encode("ascii")
        if not 0 < len(lang_bytes) <= _TEXT_LANG_MASK:
            raise NdefEncodeError("language code must be 1..63 ASCII bytes")
        status = len(lang_bytes)
        if self.utf16:
            status |= _TEXT_UTF16_FLAG
            body = self.text.encode("utf-16-be")
        else:
            body = self.text.encode("utf-8")
        payload = bytes([status]) + lang_bytes + body
        return NdefRecord(Tnf.WELL_KNOWN, RTD_TEXT, b"", payload)

    @staticmethod
    def from_record(record: NdefRecord) -> "TextRecord":
        if record.tnf != Tnf.WELL_KNOWN or record.type != RTD_TEXT:
            raise NdefDecodeError("record is not an RTD Text record")
        if not record.payload:
            raise NdefDecodeError("RTD Text payload is empty")
        status = record.payload[0]
        lang_length = status & _TEXT_LANG_MASK
        utf16 = bool(status & _TEXT_UTF16_FLAG)
        if 1 + lang_length > len(record.payload):
            raise NdefDecodeError("RTD Text language code is truncated")
        try:
            language = record.payload[1 : 1 + lang_length].decode("ascii")
        except UnicodeDecodeError as exc:
            raise NdefDecodeError("RTD Text language code is not ASCII") from exc
        body = record.payload[1 + lang_length :]
        try:
            text = body.decode("utf-16-be" if utf16 else "utf-8")
        except UnicodeDecodeError as exc:
            raise NdefDecodeError(
                f"RTD Text body is not valid {'UTF-16' if utf16 else 'UTF-8'}"
            ) from exc
        return TextRecord(text=text, language=language, utf16=utf16)


@dataclass(frozen=True)
class UriRecord:
    """A decoded RTD URI record."""

    uri: str

    def to_record(self) -> NdefRecord:
        code, remainder = _abbreviate_uri(self.uri)
        payload = bytes([code]) + remainder.encode("utf-8")
        return NdefRecord(Tnf.WELL_KNOWN, RTD_URI, b"", payload)

    @staticmethod
    def from_record(record: NdefRecord) -> "UriRecord":
        if record.tnf != Tnf.WELL_KNOWN or record.type != RTD_URI:
            raise NdefDecodeError("record is not an RTD URI record")
        if not record.payload:
            raise NdefDecodeError("RTD URI payload is empty")
        code = record.payload[0]
        if code >= len(URI_PREFIXES):
            raise NdefDecodeError(f"RTD URI identifier code 0x{code:02x} is reserved")
        try:
            remainder = record.payload[1:].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise NdefDecodeError("RTD URI remainder is not valid UTF-8") from exc
        return UriRecord(uri=URI_PREFIXES[code] + remainder)


def _abbreviate_uri(uri: str) -> tuple:
    """Pick the longest matching abbreviation prefix for ``uri``."""
    best_code = 0
    best_length = 0
    for code, prefix in enumerate(URI_PREFIXES):
        if code == 0:
            continue
        if uri.startswith(prefix) and len(prefix) > best_length:
            best_code = code
            best_length = len(prefix)
    return best_code, uri[best_length:]


@dataclass(frozen=True)
class SmartPosterRecord:
    """A decoded Smart Poster: a URI plus optional localized titles.

    ``titles`` maps language codes to title strings. ``action`` is the
    recommended-action byte (0 = do the action, 1 = save, 2 = open for
    editing) or ``None`` when absent.
    """

    uri: str
    titles: Optional[dict] = None
    action: Optional[int] = None

    def to_record(self) -> NdefRecord:
        inner: List[NdefRecord] = [UriRecord(self.uri).to_record()]
        for language, title in (self.titles or {}).items():
            inner.append(TextRecord(title, language=language).to_record())
        if self.action is not None:
            if not 0 <= self.action <= 255:
                raise NdefEncodeError("smart poster action must fit one byte")
            inner.append(
                NdefRecord(Tnf.WELL_KNOWN, b"act", b"", bytes([self.action]))
            )
        payload = NdefMessage(inner).to_bytes()
        return NdefRecord(Tnf.WELL_KNOWN, RTD_SMART_POSTER, b"", payload)

    @staticmethod
    def from_record(record: NdefRecord) -> "SmartPosterRecord":
        if record.tnf != Tnf.WELL_KNOWN or record.type != RTD_SMART_POSTER:
            raise NdefDecodeError("record is not a Smart Poster record")
        inner = NdefMessage.from_bytes(record.payload)
        uri: Optional[str] = None
        titles: dict = {}
        action: Optional[int] = None
        for sub in inner:
            if sub.tnf != Tnf.WELL_KNOWN:
                continue
            if sub.type == RTD_URI:
                if uri is not None:
                    raise NdefDecodeError("smart poster contains two URI records")
                uri = UriRecord.from_record(sub).uri
            elif sub.type == RTD_TEXT:
                text = TextRecord.from_record(sub)
                titles[text.language] = text.text
            elif sub.type == b"act" and sub.payload:
                action = sub.payload[0]
        if uri is None:
            raise NdefDecodeError("smart poster lacks the mandatory URI record")
        return SmartPosterRecord(uri=uri, titles=titles or None, action=action)
