"""NDEF records: the unit of the NFC Data Exchange Format.

An NDEF record on the wire is::

    [header byte][type length][payload length (1 or 4 bytes)]
    [id length (optional)][type][id][payload]

The header byte packs five flags and the 3-bit Type Name Format (TNF):

====  ======================================================================
bit   meaning
====  ======================================================================
0x80  MB  message begin -- set on the first record of a message
0x40  ME  message end   -- set on the last record of a message
0x20  CF  chunk flag    -- set on every chunk of a chunked record but the last
0x10  SR  short record  -- payload length is 1 byte instead of 4
0x08  IL  id length present
0x07  TNF type name format
====  ======================================================================

This module implements encoding and decoding of single records, including
the record-level validity rules of the specification (empty records carry
nothing, unknown-type records carry no type, unchanged TNF only appears in
middle chunks, ...). Message-level framing (MB/ME placement, chunk
reassembly) lives in :mod:`repro.ndef.message`.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.errors import NdefDecodeError, NdefEncodeError, NdefValidationError

FLAG_MB = 0x80
FLAG_ME = 0x40
FLAG_CF = 0x20
FLAG_SR = 0x10
FLAG_IL = 0x08
TNF_MASK = 0x07

MAX_TYPE_LENGTH = 0xFF
MAX_ID_LENGTH = 0xFF
MAX_SHORT_PAYLOAD = 0xFF
MAX_PAYLOAD_LENGTH = 0xFFFFFFFF


class EncodeStats:
    """Process-wide encode-cache telemetry for records and messages.

    Bumped from every thread that encodes (reactor workers, beamer and
    looper threads, benches), so the counters are guarded by a lock --
    ``hit()``/``miss()`` are the increments, ``hits``/``misses`` and
    ``snapshot()`` the consistent reads.
    """

    __slots__ = ("_lock", "_hits", "_misses")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def hit(self) -> None:
        with self._lock:
            self._hits += 1

    def miss(self) -> None:
        with self._lock:
            self._misses += 1

    def reset(self) -> None:
        with self._lock:
            self._hits = 0
            self._misses = 0

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def snapshot(self) -> Tuple[int, int]:
        """(hits, misses) read atomically -- use when comparing both."""
        with self._lock:
            return self._hits, self._misses

    @property
    def hit_ratio(self) -> float:
        hits, misses = self.snapshot()
        total = hits + misses
        return hits / total if total else 0.0

    def __repr__(self) -> str:
        hits, misses = self.snapshot()
        return f"EncodeStats(hits={hits}, misses={misses})"


#: Shared by :meth:`NdefRecord.to_bytes` and ``NdefMessage.to_bytes``.
ENCODE_STATS = EncodeStats()


class Tnf(enum.IntEnum):
    """Type Name Format values (NDEF specification section 3.2.6)."""

    EMPTY = 0x00
    WELL_KNOWN = 0x01
    MIME_MEDIA = 0x02
    ABSOLUTE_URI = 0x03
    EXTERNAL = 0x04
    UNKNOWN = 0x05
    UNCHANGED = 0x06
    RESERVED = 0x07


@dataclass(frozen=True)
class NdefRecord:
    """One NDEF record (logical, i.e. after chunk reassembly).

    Instances are immutable and validated at construction time. ``type``
    and ``id`` and ``payload`` are raw bytes; well-known helpers in
    :mod:`repro.ndef.rtd` construct them for the common record types.
    """

    tnf: Tnf
    type: bytes = b""
    id: bytes = b""
    payload: bytes = b""

    def __post_init__(self) -> None:
        object.__setattr__(self, "tnf", Tnf(self.tnf))
        object.__setattr__(self, "type", bytes(self.type))
        object.__setattr__(self, "id", bytes(self.id))
        object.__setattr__(self, "payload", bytes(self.payload))
        self._validate()

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def empty() -> "NdefRecord":
        """The canonical empty record (what a freshly formatted tag holds)."""
        return NdefRecord(Tnf.EMPTY)

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        if len(self.type) > MAX_TYPE_LENGTH:
            raise NdefValidationError("record type exceeds 255 bytes")
        if len(self.id) > MAX_ID_LENGTH:
            raise NdefValidationError("record id exceeds 255 bytes")
        if len(self.payload) > MAX_PAYLOAD_LENGTH:
            raise NdefValidationError("record payload exceeds 2**32 - 1 bytes")
        if self.tnf == Tnf.EMPTY:
            if self.type or self.id or self.payload:
                raise NdefValidationError(
                    "EMPTY records must have empty type, id and payload"
                )
        elif self.tnf == Tnf.UNKNOWN:
            if self.type:
                raise NdefValidationError("UNKNOWN records must not carry a type")
        elif self.tnf == Tnf.UNCHANGED:
            raise NdefValidationError(
                "UNCHANGED is only valid inside chunked records on the wire"
            )
        elif self.tnf == Tnf.RESERVED:
            raise NdefValidationError("RESERVED TNF must not be used")
        elif not self.type and self.tnf in (
            Tnf.WELL_KNOWN,
            Tnf.MIME_MEDIA,
            Tnf.ABSOLUTE_URI,
            Tnf.EXTERNAL,
        ):
            raise NdefValidationError(f"TNF {self.tnf.name} requires a non-empty type")

    @property
    def is_empty(self) -> bool:
        return self.tnf == Tnf.EMPTY

    # -- encoding ------------------------------------------------------------

    def to_bytes(self, message_begin: bool = True, message_end: bool = True) -> bytes:
        """Encode this record with the given MB/ME flag placement.

        Records are immutable, so the encoded bytes are memoized per
        MB/ME variant: retries, re-taps and repeated framing of the same
        record pay the encode cost exactly once.
        """
        cache = self.__dict__.get("_encoded")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_encoded", cache)
        key = (message_begin, message_end)
        data = cache.get(key)
        if data is not None:
            ENCODE_STATS.hit()
            return data
        ENCODE_STATS.miss()
        data = encode_record_raw(
            tnf=self.tnf,
            type_=self.type,
            id_=self.id,
            payload=self.payload,
            message_begin=message_begin,
            message_end=message_end,
            chunk_flag=False,
        )
        cache[key] = data
        return data

    def to_chunks(
        self,
        chunk_size: int,
        message_begin: bool = True,
        message_end: bool = True,
    ) -> bytes:
        """Encode this record as a chunked record with ``chunk_size`` payload chunks.

        The first chunk carries the real TNF and type; subsequent chunks use
        TNF ``UNCHANGED`` with an empty type, per the specification. Used by
        tests to exercise the decoder's reassembly path and by the radio
        layer to model partial transfers.
        """
        if chunk_size <= 0:
            raise NdefEncodeError("chunk_size must be positive")
        if self.tnf == Tnf.EMPTY:
            raise NdefEncodeError("EMPTY records cannot be chunked")
        if not self.payload:
            # range(0, 0, chunk_size) yields nothing: a zero-length
            # payload must still encode as one valid (empty) chunk
            # instead of emitting zero records.
            pieces: List[bytes] = [b""]
        else:
            pieces = [
                self.payload[i : i + chunk_size]
                for i in range(0, len(self.payload), chunk_size)
            ]
        if len(pieces) == 1:
            return self.to_bytes(message_begin, message_end)
        out = bytearray()
        last_index = len(pieces) - 1
        for index, piece in enumerate(pieces):
            first = index == 0
            last = index == last_index
            out += encode_record_raw(
                tnf=self.tnf if first else Tnf.UNCHANGED,
                type_=self.type if first else b"",
                id_=self.id if first else b"",
                payload=piece,
                message_begin=message_begin and first,
                message_end=message_end and last,
                chunk_flag=not last,
            )
        return bytes(out)

    def __len__(self) -> int:
        """Encoded size in bytes (unchunked, flags irrelevant to size)."""
        short = len(self.payload) <= MAX_SHORT_PAYLOAD
        size = 2 + (1 if short else 4) + len(self.type) + len(self.payload)
        if self.id:
            size += 1 + len(self.id)
        return size


def encode_record_raw(
    tnf: int,
    type_: bytes,
    id_: bytes,
    payload: bytes,
    message_begin: bool,
    message_end: bool,
    chunk_flag: bool,
) -> bytes:
    """Encode one on-the-wire record (possibly a chunk) to bytes."""
    if len(type_) > MAX_TYPE_LENGTH:
        raise NdefEncodeError("type too long")
    if len(id_) > MAX_ID_LENGTH:
        raise NdefEncodeError("id too long")
    if len(payload) > MAX_PAYLOAD_LENGTH:
        raise NdefEncodeError("payload too long")
    short = len(payload) <= MAX_SHORT_PAYLOAD
    header = int(tnf) & TNF_MASK
    if message_begin:
        header |= FLAG_MB
    if message_end:
        header |= FLAG_ME
    if chunk_flag:
        header |= FLAG_CF
    if short:
        header |= FLAG_SR
    if id_:
        header |= FLAG_IL
    out = bytearray()
    out.append(header)
    out.append(len(type_))
    if short:
        out.append(len(payload))
    else:
        out += len(payload).to_bytes(4, "big")
    if id_:
        out.append(len(id_))
    out += type_
    out += id_
    out += payload
    return bytes(out)


@dataclass
class RawRecord:
    """A decoded on-the-wire record before chunk reassembly."""

    tnf: int
    type: bytes
    id: bytes
    payload: bytes
    message_begin: bool
    message_end: bool
    chunk_flag: bool
    offset: int = field(default=0)


def iter_raw_records(data: bytes) -> Iterator[RawRecord]:
    """Decode the raw (possibly chunked) records of an NDEF byte sequence.

    Raises :class:`NdefDecodeError` on truncation or malformed headers.
    """
    view = memoryview(data)
    offset = 0
    total = len(view)
    if total == 0:
        raise NdefDecodeError("empty byte sequence is not an NDEF message")
    while offset < total:
        record, offset = _decode_one(view, offset)
        yield record


def _decode_one(view: memoryview, offset: int) -> Tuple[RawRecord, int]:
    start = offset
    total = len(view)

    def need(count: int) -> None:
        if offset + count > total:
            raise NdefDecodeError(
                f"truncated NDEF record at byte {start}: "
                f"need {count} more bytes at offset {offset}, have {total - offset}"
            )

    need(2)
    header = view[offset]
    tnf = header & TNF_MASK
    if tnf == Tnf.RESERVED:
        raise NdefDecodeError(f"record at byte {start} uses reserved TNF 0x07")
    type_length = view[offset + 1]
    offset += 2
    if header & FLAG_SR:
        need(1)
        payload_length = view[offset]
        offset += 1
    else:
        need(4)
        payload_length = int.from_bytes(view[offset : offset + 4], "big")
        offset += 4
    id_length = 0
    if header & FLAG_IL:
        need(1)
        id_length = view[offset]
        offset += 1
    need(type_length)
    type_ = bytes(view[offset : offset + type_length])
    offset += type_length
    need(id_length)
    id_ = bytes(view[offset : offset + id_length])
    offset += id_length
    need(payload_length)
    payload = bytes(view[offset : offset + payload_length])
    offset += payload_length
    record = RawRecord(
        tnf=tnf,
        type=type_,
        id=id_,
        payload=payload,
        message_begin=bool(header & FLAG_MB),
        message_end=bool(header & FLAG_ME),
        chunk_flag=bool(header & FLAG_CF),
        offset=start,
    )
    return record, offset
