"""NFC Forum external type records and Android Application Records.

External types (TNF 0x04) carry a domain-qualified type name of the form
``example.com:mytype`` (RTD specification: lowercase domain + ':' + local
name). Android builds its **Android Application Record** (AAR) on top of
them: an ``android.com:pkg`` record whose payload is a package name,
appended to a message so that scanning the tag launches (or installs)
that application. MORENA applications can append an AAR so their tags
open the right app on stock phones.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import NdefDecodeError, NdefEncodeError
from repro.ndef.message import NdefMessage
from repro.ndef.record import NdefRecord, Tnf

# domain ':' local-name, both lowercase, per the NFC Forum RTD spec.
_EXTERNAL_TYPE_RE = re.compile(
    r"^[a-z0-9.\-]+:[a-z0-9.\-_$*+()!]+$"
)

AAR_TYPE = "android.com:pkg"

_PACKAGE_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*(\.[a-zA-Z_][a-zA-Z0-9_]*)+$")


@dataclass(frozen=True)
class ExternalRecord:
    """A decoded external-type record."""

    type_name: str
    payload: bytes = b""

    def to_record(self) -> NdefRecord:
        normalized = self.type_name.strip().lower()
        if not _EXTERNAL_TYPE_RE.match(normalized):
            raise NdefEncodeError(
                f"invalid external type {self.type_name!r}; expected "
                "'domain:name', e.g. 'example.com:mytype'"
            )
        return NdefRecord(
            Tnf.EXTERNAL, normalized.encode("ascii"), b"", self.payload
        )

    @staticmethod
    def from_record(record: NdefRecord) -> "ExternalRecord":
        if record.tnf != Tnf.EXTERNAL:
            raise NdefDecodeError("record is not an external-type record")
        try:
            type_name = record.type.decode("ascii")
        except UnicodeDecodeError as exc:
            raise NdefDecodeError("external type name is not ASCII") from exc
        return ExternalRecord(type_name=type_name, payload=record.payload)


def aar_record(package_name: str) -> NdefRecord:
    """Build an Android Application Record for ``package_name``."""
    if not _PACKAGE_RE.match(package_name):
        raise NdefEncodeError(f"invalid Android package name: {package_name!r}")
    return ExternalRecord(AAR_TYPE, package_name.encode("utf-8")).to_record()


def aar_package(message: NdefMessage) -> str:
    """Return the package named by the message's AAR, or ``""``.

    Android uses the *first* AAR in the message; so do we.
    """
    for record in message:
        if record.tnf == Tnf.EXTERNAL and record.type == AAR_TYPE.encode("ascii"):
            try:
                return record.payload.decode("utf-8")
            except UnicodeDecodeError:
                return ""
    return ""


def with_aar(message: NdefMessage, package_name: str) -> NdefMessage:
    """Append an AAR to ``message`` (replacing any existing one)."""
    aar_bytes = AAR_TYPE.encode("ascii")
    records = [
        record
        for record in message
        if not (record.tnf == Tnf.EXTERNAL and record.type == aar_bytes)
    ]
    records.append(aar_record(package_name))
    return NdefMessage(records)
