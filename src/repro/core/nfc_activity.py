"""``NFCActivity``: the single point where MORENA touches intents.

The Android NFC API couples every RFID event to the activity
architecture; MORENA confines that coupling to this one base class.
An ``NFCActivity`` owns the activity's :class:`TagReferenceFactory`,
collects the registered :class:`~repro.core.discovery.TagDiscoverer` and
:class:`~repro.core.beam.BeamReceivedListener` objects, derives the
foreground-dispatch intent filters from them, and routes every incoming
NFC intent to the right handler. Application code built on MORENA never
sees an intent again (paper section 3.1: "Once a TagDiscoverer is
instantiated, the programmer must no longer worry about activities").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.android.activity import Activity
from repro.android.intents import (
    ACTION_NDEF_DISCOVERED,
    ACTION_TECH_DISCOVERED,
    EXTRA_BEAM_SENDER,
    EXTRA_NDEF_MESSAGES,
    EXTRA_TAG,
    Intent,
    IntentFilter,
)
from repro.core.factory import TagReferenceFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.beam import Beamer, BeamReceivedListener
    from repro.core.discovery import TagDiscoverer


class NFCActivity(Activity):
    """Base class for every MORENA application activity."""

    def __init__(self, device) -> None:
        super().__init__(device)
        self._reference_factory = TagReferenceFactory(self)
        self._discoverers: List["TagDiscoverer"] = []
        self._beam_listeners: List["BeamReceivedListener"] = []
        self._beamers: List["Beamer"] = []

    @property
    def reference_factory(self) -> TagReferenceFactory:
        return self._reference_factory

    # -- registration (called from the component constructors) ------------------

    def _register_discoverer(self, discoverer: "TagDiscoverer") -> None:
        self._discoverers.append(discoverer)
        self._refresh_filters()

    def _register_beam_listener(self, listener: "BeamReceivedListener") -> None:
        self._beam_listeners.append(listener)
        self._refresh_filters()

    def _register_beamer(self, beamer: "Beamer") -> None:
        self._beamers.append(beamer)

    def _refresh_filters(self) -> None:
        filters: List[IntentFilter] = []
        accept_empty = False
        for discoverer in self._discoverers:
            filters.append(
                IntentFilter(ACTION_NDEF_DISCOVERED, discoverer.mime_type)
            )
            accept_empty = accept_empty or discoverer.accept_empty
        for listener in self._beam_listeners:
            filters.append(IntentFilter(ACTION_NDEF_DISCOVERED, listener.mime_type))
        if accept_empty:
            filters.append(IntentFilter(ACTION_TECH_DISCOVERED))
        self.enable_foreground_dispatch(filters)

    # -- intent routing --------------------------------------------------------------

    def on_new_intent(self, intent: Intent) -> None:
        if intent.is_beam:
            self._route_beam(intent)
        else:
            self._route_tag(intent)

    def _route_beam(self, intent: Intent) -> None:
        messages = intent.get_extra(EXTRA_NDEF_MESSAGES) or []
        if not messages:
            return
        sender = intent.get_extra(EXTRA_BEAM_SENDER, "")
        for listener in list(self._beam_listeners):
            listener._handle_beam(intent.mime_type, messages[0], sender)  # noqa: SLF001

    def _route_tag(self, intent: Intent) -> None:
        tag = intent.get_extra(EXTRA_TAG)
        if tag is None:
            return
        if intent.action == ACTION_NDEF_DISCOVERED:
            for discoverer in list(self._discoverers):
                discoverer._handle_tag(intent.mime_type, tag)  # noqa: SLF001
        elif intent.action == ACTION_TECH_DISCOVERED:
            # Empty or unformatted tag: only discoverers that opted in.
            for discoverer in list(self._discoverers):
                if discoverer.accept_empty:
                    discoverer._handle_empty_tag(tag)  # noqa: SLF001

    # -- teardown ----------------------------------------------------------------------

    def on_destroy(self) -> None:
        for beamer in self._beamers:
            beamer.stop()
        self._reference_factory.stop_all()
        super().on_destroy()
