"""Futures over the listener interface.

The paper's API is listener-pairs because that is what 2012 Android
idiomatically offered. Python callers often prefer a future: one object
that can be waited on, chained, or composed. ``OperationFuture`` adapts
any of the asynchronous calls without changing their semantics --
the underlying operation still lives in the reference's ordered queue,
still retries, still times out; the future merely observes its fate.

::

    future = read_future(ref)
    value = future.result(timeout=2.0)          # blocking style

    write_future(ref, "new").then(
        lambda ref: print("saved")
    )                                           # chaining style

Listeners registered through a future run on the activity's main thread,
exactly like plain MORENA listeners.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Generator, List, Optional

from repro.core.operations import Operation, OperationOutcome
from repro.core.reference import TagReference
from repro.errors import MorenaError


class OperationTimeoutError(MorenaError):
    """The awaited operation settled as TIMED_OUT (or FAILED/CANCELLED)."""


class OperationFuture:
    """The eventual outcome of one asynchronous tag operation."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._settled = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["OperationFuture"], None]] = []
        self.operation: Optional[Operation] = None

    # -- completion (wired to the MORENA listeners) -------------------------------

    def _succeed(self, value: Any) -> None:
        self._settle(value=value)

    def _fail(self, error: BaseException) -> None:
        self._settle(error=error)

    def _settle(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        with self._cond:
            if self._settled:
                return
            self._settled = True
            self._value = value
            self._error = error
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self._cond.notify_all()
        for callback in callbacks:
            callback(self)

    # -- observation -----------------------------------------------------------------

    @property
    def done(self) -> bool:
        with self._cond:
            return self._settled

    @property
    def succeeded(self) -> bool:
        with self._cond:
            return self._settled and self._error is None

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until settled; return the value or raise the failure.

        Never call this from the activity's main thread -- the listeners
        that settle the future run there (the same rule as ``Looper.sync``).
        """
        with self._cond:
            if not self._cond.wait_for(lambda: self._settled, timeout):
                raise TimeoutError("operation future not settled in time")
            if self._error is not None:
                raise self._error
            return self._value

    def add_done_callback(self, callback: Callable[["OperationFuture"], None]) -> None:
        """Run ``callback(future)`` once settled (immediately if already)."""
        with self._cond:
            if not self._settled:
                self._callbacks.append(callback)
                return
        callback(self)

    def __await__(self) -> Generator[Any, None, Any]:
        """``await future`` from any coroutine, on either reactor backend.

        Bridges to an :class:`asyncio.Future` on the *awaiting* loop via
        ``call_soon_threadsafe``, so the settling thread (a looper, a
        reactor worker, or the asyncio reactor's own loop) never matters.
        Failures raise exactly what :meth:`result` would raise.
        """
        loop = asyncio.get_running_loop()
        bridged: "asyncio.Future[Any]" = loop.create_future()

        def transfer(settled: "OperationFuture") -> None:
            def resolve() -> None:
                if bridged.cancelled():
                    return
                if settled._error is not None:  # noqa: SLF001 - same class
                    bridged.set_exception(settled._error)  # noqa: SLF001
                else:
                    bridged.set_result(settled._value)  # noqa: SLF001

            if loop.is_closed():
                return
            try:
                loop.call_soon_threadsafe(resolve)
            except RuntimeError:
                pass  # awaiting loop shut down before settlement

        self.add_done_callback(transfer)
        return bridged.__await__()

    def then(self, on_value: Callable[[Any], Any]) -> "OperationFuture":
        """Chain: a new future resolving to ``on_value(value)``.

        Failures propagate unchanged; an exception inside ``on_value``
        fails the chained future.
        """
        chained = OperationFuture()

        def forward(settled: "OperationFuture") -> None:
            if settled._error is not None:  # noqa: SLF001 - same class
                chained._fail(settled._error)  # noqa: SLF001
                return
            try:
                chained._succeed(on_value(settled._value))  # noqa: SLF001
            except BaseException as exc:  # noqa: BLE001 - routed to future
                chained._fail(exc)

        self.add_done_callback(forward)
        return chained


def _failure_error(future: OperationFuture) -> OperationTimeoutError:
    operation = future.operation
    outcome = operation.outcome.value if operation else "unknown"
    cause = operation.error if operation else None
    error = OperationTimeoutError(f"tag operation settled as {outcome}")
    if cause is not None:
        error.__cause__ = cause
    return error


def read_future(reference: TagReference, timeout: Optional[float] = None) -> OperationFuture:
    """Asynchronous read as a future resolving to the converted value."""
    future = OperationFuture()
    future.operation = reference.read(
        on_read=lambda ref: future._succeed(ref.cached),  # noqa: SLF001
        on_failed=lambda ref: future._fail(_failure_error(future)),  # noqa: SLF001
        timeout=timeout,
    )
    return future


def write_future(
    reference: TagReference,
    value: Any,
    timeout: Optional[float] = None,
    coalesce: Optional[bool] = None,
) -> OperationFuture:
    """Asynchronous write as a future resolving to the reference."""
    future = OperationFuture()
    future.operation = reference.write(
        value,
        on_written=lambda ref: future._succeed(ref),  # noqa: SLF001
        on_failed=lambda ref: future._fail(_failure_error(future)),  # noqa: SLF001
        timeout=timeout,
        coalesce=coalesce,
    )
    return future


def lock_future(reference: TagReference, timeout: Optional[float] = None) -> OperationFuture:
    """Asynchronous make-read-only as a future resolving to the reference."""
    future = OperationFuture()
    future.operation = reference.make_read_only(
        on_locked=lambda ref: future._succeed(ref),  # noqa: SLF001
        on_failed=lambda ref: future._fail(_failure_error(future)),  # noqa: SLF001
        timeout=timeout,
    )
    return future


def read_raw_future(
    reference: TagReference, timeout: Optional[float] = None
) -> OperationFuture:
    """Asynchronous raw read as a future resolving to the cached message."""
    future = OperationFuture()
    future.operation = reference.read_raw(
        on_read=lambda ref: future._succeed(ref.cached_message),  # noqa: SLF001
        on_failed=lambda ref: future._fail(_failure_error(future)),  # noqa: SLF001
        timeout=timeout,
    )
    return future


def write_raw_future(
    reference: TagReference,
    message: Any,
    timeout: Optional[float] = None,
    merge_key: Optional[str] = None,
    message_factory: Optional[Any] = None,
) -> OperationFuture:
    """Asynchronous raw write as a future resolving to the reference.

    ``merge_key``/``message_factory`` pass straight through to
    :meth:`TagReference.write_raw` -- the protocol merge hook works
    identically on the future surface.
    """
    future = OperationFuture()
    future.operation = reference.write_raw(
        message,
        on_written=lambda ref: future._succeed(ref),  # noqa: SLF001
        on_failed=lambda ref: future._fail(_failure_error(future)),  # noqa: SLF001
        timeout=timeout,
        merge_key=merge_key,
        message_factory=message_factory,
    )
    return future


def format_future(
    reference: TagReference, timeout: Optional[float] = None
) -> OperationFuture:
    """Asynchronous NDEF format as a future resolving to the reference."""
    future = OperationFuture()
    future.operation = reference.format(
        on_formatted=lambda ref: future._succeed(ref),  # noqa: SLF001
        on_failed=lambda ref: future._fail(_failure_error(future)),  # noqa: SLF001
        timeout=timeout,
    )
    return future
