"""Asynchronous Beam: phone-to-phone NDEF pushes, MORENA style.

Paper section 3.3. Beaming is *undirected* -- there is no reference to
push through; instead a :class:`Beamer` object encapsulates the write
converter and queues beam operations with the same decoupled-in-time
semantics as tag writes: a beam scheduled while no peer phone is near is
silently retried until a peer appears or the timeout passes. Reception is
handled by :class:`BeamReceivedListener`, which converts the received
NDEF message with its read converter and applies an optional
``check_condition`` predicate before invoking ``on_beam_received``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Optional

from repro.core.listeners import ListenerLike, as_callback
from repro.core.nfc_activity import NFCActivity
from repro.core.operations import Operation, OperationKind, OperationOutcome
from repro.core.converters import (
    NdefMessageToObjectConverter,
    ObjectToNdefMessageConverter,
)
from repro.errors import (
    BeamError,
    ConverterError,
    MorenaError,
    RadioError,
    ReferenceStoppedError,
)
from repro.ndef.message import NdefMessage
from repro.ndef.mime import normalize_mime_type
from repro.radio.events import FieldEvent, PeerEntered

DEFAULT_BEAM_TIMEOUT_SECONDS = 5.0
_WAIT_SLICE_SECONDS = 0.01
_RETRY_INTERVAL_SECONDS = 0.02


class Beamer:
    """Queues and retries undirected beam pushes for one activity."""

    def __init__(
        self,
        activity: NFCActivity,
        write_converter: ObjectToNdefMessageConverter,
        default_timeout: float = DEFAULT_BEAM_TIMEOUT_SECONDS,
    ) -> None:
        if not isinstance(activity, NFCActivity):
            raise TypeError("Beamer requires an NFCActivity")
        self._activity = activity
        self._adapter = activity.device.nfc_adapter
        self._port = self._adapter.port
        self._looper = activity.device.main_looper
        self._clock = activity.device.environment.clock
        self._write_converter = write_converter
        self._default_timeout = default_timeout

        self._cond = threading.Condition()
        self._queue: Deque[Operation] = deque()
        self._stopped = False

        self.attempts = 0
        self.successes = 0
        self.timeouts = 0

        self._port.add_field_listener(self._on_field_event)
        activity._register_beamer(self)  # noqa: SLF001 - by-design handshake
        self._thread = threading.Thread(
            target=self._event_loop,
            name=f"beamer-{activity.device.name}",
            daemon=True,
        )
        self._thread.start()

    # -- the asynchronous interface -------------------------------------------------

    def beam(
        self,
        obj: Any,
        on_success: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> Operation:
        """Schedule an undirected asynchronous push of ``obj``.

        ``obj`` is converted immediately with the write converter. The
        push is attempted whenever a peer phone is in Beam range; on
        delivery ``on_success()`` runs on the main thread, on timeout
        ``on_failed()`` does.
        """
        effective = self._default_timeout if timeout is None else timeout
        if effective <= 0:
            raise MorenaError("beam timeout must be positive")
        now = self._clock.now()
        operation = Operation(
            kind=OperationKind.WRITE,
            deadline=now + effective,
            enqueued_at=now,
            on_success=as_callback(on_success),
            on_failure=as_callback(on_failed),
            original_object=obj,
        )
        try:
            operation.payload = self._convert_payload(obj)
        except ConverterError as exc:
            operation.outcome = OperationOutcome.FAILED
            operation.error = exc
            self._post(operation.on_failure)
            return operation
        with self._cond:
            if self._stopped:
                raise ReferenceStoppedError("this Beamer has been stopped")
            self._queue.append(operation)
            self._cond.notify_all()
        return operation

    def _convert_payload(self, obj: Any) -> NdefMessage:
        """Turn ``obj`` into the NDEF message to push.

        Runs once per :meth:`beam` call, on the caller's thread (the
        retry loop re-pushes the same message). Subclasses may cache --
        see :class:`repro.things.beamer.ThingBeamer`.
        """
        return self._write_converter.convert(obj)

    @property
    def pending_count(self) -> int:
        with self._cond:
            return len(self._queue)

    # -- lifecycle --------------------------------------------------------------------

    def stop(self, join_timeout: float = 5.0) -> None:
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            cancelled = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        for operation in cancelled:
            operation.outcome = OperationOutcome.CANCELLED
        self._port.remove_field_listener(self._on_field_event)
        if threading.current_thread() is not self._thread:
            self._thread.join(join_timeout)

    # -- internals ----------------------------------------------------------------------

    def _on_field_event(self, event: FieldEvent) -> None:
        if isinstance(event, PeerEntered):
            with self._cond:
                self._cond.notify_all()

    def _event_loop(self) -> None:
        while True:
            head: Optional[Operation] = None
            with self._cond:
                if self._stopped:
                    return
                self._expire_locked()
                if not self._queue:
                    self._cond.wait()
                    continue
                if not self._port.environment.peers_of(self._port):
                    self._cond.wait(_WAIT_SLICE_SECONDS)
                    continue
                head = self._queue[0]
            succeeded = self._attempt(head)
            with self._cond:
                if self._stopped:
                    return
                if succeeded:
                    if self._queue and self._queue[0] is head:
                        self._queue.popleft()
                    self.successes += 1
                else:
                    self._cond.wait(_RETRY_INTERVAL_SECONDS)
                    continue
            head.outcome = OperationOutcome.SUCCEEDED
            self._post(head.on_success)

    def _expire_locked(self) -> None:
        now = self._clock.now()
        index = 0
        while index < len(self._queue):
            operation = self._queue[index]
            if operation.deadline <= now:
                del self._queue[index]
                self.timeouts += 1
                operation.outcome = OperationOutcome.TIMED_OUT
                self._post(operation.on_failure)
            else:
                index += 1

    def _attempt(self, operation: Operation) -> bool:
        operation.attempts += 1
        self.attempts += 1
        try:
            self._adapter.push_now(operation.payload)
            return True
        except (BeamError, RadioError) as exc:
            operation.error = exc
            return False

    def _post(self, callback) -> None:
        try:
            self._looper.post(lambda: callback())
        except Exception:  # noqa: BLE001 - looper quit during shutdown
            pass


class BeamReceivedListener:
    """Receives beamed objects of one MIME type, converted and filtered."""

    def __init__(
        self,
        activity: NFCActivity,
        mime_type: str,
        read_converter: NdefMessageToObjectConverter,
    ) -> None:
        if not isinstance(activity, NFCActivity):
            raise TypeError("BeamReceivedListener requires an NFCActivity")
        self._activity = activity
        self.mime_type = normalize_mime_type(mime_type)
        self.read_converter = read_converter
        activity._register_beam_listener(self)  # noqa: SLF001

    @property
    def activity(self) -> NFCActivity:
        return self._activity

    # -- overridable callbacks (run on the main thread) ------------------------------

    def on_beam_received(self, obj: Any) -> None:
        """A beamed object of our MIME type arrived."""

    def on_beam_received_from(self, obj: Any, sender: str) -> None:
        """Like :meth:`on_beam_received`, with the sender's device name.

        Extension over the paper (useful in multi-phone simulations);
        the default implementation ignores the sender.
        """
        self.on_beam_received(obj)

    def check_condition(self, obj: Any) -> bool:
        """Fine-grained filter on the received object (section 3.4)."""
        return True

    # -- intent plumbing -----------------------------------------------------------------

    def _handle_beam(self, mime_type: str, message: NdefMessage, sender: str) -> None:
        if mime_type != self.mime_type:
            return
        try:
            obj = self.read_converter.convert(message)
        except ConverterError:
            return
        if not self.check_condition(obj):
            return
        self.on_beam_received_from(obj, sender)
