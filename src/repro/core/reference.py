"""The tag reference: MORENA's far reference to an RFID tag.

Paper section 3.2. A tag reference

* is the **only** reference to its tag within one activity (enforced by
  :class:`~repro.core.factory.TagReferenceFactory`);
* offers an exclusively **asynchronous** interface (``read`` / ``write`` /
  ``make_read_only``), each operation carrying an optional success and
  failure listener and a timeout;
* keeps a **queue** of pending operations and a **private event loop**
  with its own *logical* thread of control that repeatedly tries to
  process the first operation in the queue: a failed attempt leaves the
  operation queued (decoupling in time -- no error surfaces), success
  removes it and fires the success listener, and passing its timeout
  removes it and fires the failure listener. By default the event loop
  is a :class:`~repro.core.scheduler.ReactorTask` multiplexed onto the
  device's shared bounded worker pool (see :mod:`repro.core.scheduler`);
  pass ``threaded=True`` for the paper-literal one-OS-thread-per-
  reference mode;
* guarantees that an operation is **never processed before previously
  scheduled operations** were processed (or timed out);
* schedules all listeners on the **activity's main thread**, so the
  programmer never manages concurrency;
* caches the last content seen on the tag for synchronous access
  (with the staleness caveat the paper spells out);
* reports connectivity changes to registered observers.

Transient radio failures (tag lost, out of field, torn/corrupt data) are
retried silently. Permanent failures (message exceeds tag capacity, tag is
read-only or worn out, the converter rejected the object) settle the
operation immediately with its failure listener -- retrying cannot fix
those.

Write coalescing (opt-in via ``coalesce_writes=True`` or per-operation
``coalesce=...``; ``Thing.save_async`` opts in by default): while a tag
is out of range, consecutive coalescible writes at the queue tail
collapse to the newest payload, so one tap window performs one physical
write instead of N redundant ones. Every superseded write settles its
success listener in FIFO order when the surviving write lands -- the tag
then holds a state at least as new as the one each write captured. Only
*adjacent* coalescible writes merge: a queued read, format, lock or raw
write is a fence (the paper's in-order guarantee that a read observes
the preceding write is preserved), and raw writes themselves never
coalesce through this generic tail merge. Symmetrically, consecutive
pending reads of the same rawness share one physical read and fan out
its result (read dedup).

Protocol merge hook (``write_raw(..., merge_key=...)``): protocol
layers whose records are *replacement* state -- a lease renewal, where
only the latest expiry matters -- may opt two tail-adjacent unsent raw
writes carrying the same ``merge_key`` into collapsing to the newest
message. The merge happens inside the queue lock (the protocol never
touches the queue's privates), settles the superseded write's listener
in FIFO order when the survivor lands, and adopts the survivor's
deadline via the reactor's timer heap. Everything else -- a different
or absent merge key, a read, a lock, a format, an in-flight attempt --
remains a fence, so a guarded data write or a release never merges
with a renewal on either side.

Cancellation semantics (unified, see DESIGN.md decision 8):
application-initiated cancellation (:meth:`TagReference.cancel`,
:meth:`TagReference.cancel_all`) is **silent** -- the caller initiated
it and needs no callback; no listener ever fires for those operations.
Lifecycle teardown (:meth:`TagReference.stop`) is silent by default but
fires the **failure listeners** of pending operations when called with
``notify_pending=True``, because at teardown the application may need
to flush callbacks that would otherwise wait forever. In every case a
cancelled operation settles as ``CANCELLED`` exactly once, even when
its radio attempt was in flight (and even if that attempt succeeds on
the air -- the honest race of a distributed cancel).
"""

from __future__ import annotations

import threading
from typing import (
    Any,
    Callable,
    List,
    NamedTuple,
    Optional,
    TYPE_CHECKING,
)

from repro.clock import Clock
from repro.core.converters import (
    NdefMessageToObjectConverter,
    ObjectToNdefMessageConverter,
)
from repro.core.listeners import ListenerLike, as_callback
from repro.core.operations import Operation, OperationKind, OperationOutcome
from repro.core.scheduler import Reactor, ReactorTask
from repro.errors import (
    ConverterError,
    LooperError,
    MorenaError,
    NdefError,
    NotInFieldError,
    RadioError,
    ReferenceStoppedError,
    TagCapacityError,
    TagFormatError,
    TagLostError,
    TagReadOnlyError,
    TagWornOutError,
)
from repro.ndef.message import NdefMessage
from repro.radio.events import FieldEvent, TagEntered, TagLeft

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.looper import Looper
    from repro.android.nfc.tech import Tag
    from repro.core.nfc_activity import NFCActivity
    from repro.radio.port import TagSession
    from repro.radio.txscheduler import PortTransactionScheduler

DEFAULT_TIMEOUT_SECONDS = 5.0
DEFAULT_RETRY_INTERVAL_SECONDS = 0.02

# Real-time slice the legacy threaded event loop waits between deadline
# checks; small so that ManualClock simulations observe advances promptly.
_WAIT_SLICE_SECONDS = 0.01

# How many queued operations one reactor quantum may process back-to-back
# before yielding its worker. Within a burst, latency between consecutive
# operations (e.g. a pipelined format -> write) matches the dedicated-
# thread mode; the cap keeps one busy reference from hogging a worker.
_STEP_BURST_OPS = 64

_TRANSIENT_ERRORS = (TagLostError, NotInFieldError, TagFormatError)
_PERMANENT_ERRORS = (
    TagCapacityError,
    TagReadOnlyError,
    TagWornOutError,
    ConverterError,
    NdefError,
)

ConnectivityListener = Callable[["TagReference", bool], None]


class BatchView(NamedTuple):
    """One reference's queue state as seen by the per-port transaction
    scheduler's drain loop (see :mod:`repro.radio.txscheduler`).

    ``ready`` is the head operation if it may execute right now (tag
    presence is the scheduler's concern); ``head_id`` is the smallest
    pending ``op_id`` including superseded writes; ``fence_id`` is the
    smallest pending fence ``op_id`` (``None`` if no fence is queued);
    ``wake_at`` is when a backed-off head becomes ready again;
    ``depth`` is the logical queue depth (superseded writes included),
    the backlog signal the deficit-weighted cross-tag policy credits by.
    """

    ready: Optional[Operation]
    head_id: Optional[int]
    fence_id: Optional[int]
    wake_at: Optional[float]
    depth: int


_EMPTY_BATCH_VIEW = BatchView(None, None, None, None, 0)


class _NoWaitCondition:
    """Lock-only stand-in for ``threading.Condition`` on reactor-mode
    references.

    Only the legacy threaded event loop ever ``wait()``s on a
    reference's condition; reactor-mode logical loops park on the
    reactor's timer heap instead. A full Condition carries an extra
    RLock plus an (empty, but allocated) waiter deque per reference —
    dead weight at 100k idle references — so reactor mode keeps just
    the mutex and turns the notify side into a no-op.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()

    def __enter__(self) -> bool:
        return self._lock.__enter__()

    def __exit__(self, *exc_info: Any) -> Any:
        return self._lock.__exit__(*exc_info)

    def notify(self, n: int = 1) -> None:
        pass  # nothing ever waits

    def notify_all(self) -> None:
        pass  # nothing ever waits

    def wait(self, timeout: Optional[float] = None) -> bool:
        raise RuntimeError(
            "reactor-mode references have no waiters; "
            "wait() belongs to the threaded event loop"
        )


class TagReference:
    """First-class remote reference to one RFID tag.

    Do not instantiate directly in application code; obtain references
    from a :class:`~repro.core.discovery.TagDiscoverer` (or, in tests,
    from a :class:`~repro.core.factory.TagReferenceFactory`).
    """

    # Slotted: an idle reference is the unit the asyncio backend scales
    # by (100k per process), and the instance dict would be its single
    # largest allocation. ``__weakref__`` is kept for diagnostics.
    __slots__ = (
        "__weakref__",
        "_tag",
        "_activity",
        "_looper",
        "_port",
        "_clock",
        "_read_converter",
        "_write_converter",
        "_default_timeout",
        "_retry_interval",
        "_coalesce_writes",
        "_cond",
        "_queue",
        "_stopped",
        "_cached_object",
        "_cached_message",
        "_has_cache",
        "_connected",
        "_connectivity_listeners",
        "_telemetry_listeners",
        "attempts",
        "successes",
        "timeouts",
        "permanent_failures",
        "coalesced_writes",
        "deduped_reads",
        "protocol_merges",
        "_thread",
        "_task",
        "_batch",
        "_batch_backoff_until",
    )

    def __init__(
        self,
        tag: "Tag",
        activity: "NFCActivity",
        read_converter: NdefMessageToObjectConverter,
        write_converter: ObjectToNdefMessageConverter,
        default_timeout: float = DEFAULT_TIMEOUT_SECONDS,
        retry_interval: float = DEFAULT_RETRY_INTERVAL_SECONDS,
        threaded: bool = False,
        reactor: Optional[Reactor] = None,
        coalesce_writes: bool = False,
        batched: Optional[bool] = None,
    ) -> None:
        self._tag = tag
        self._activity = activity
        self._looper = activity.device.main_looper
        self._port = tag.port
        self._clock: Clock = activity.device.environment.clock
        self._read_converter = read_converter
        self._write_converter = write_converter
        self._default_timeout = default_timeout
        self._retry_interval = retry_interval
        self._coalesce_writes = coalesce_writes

        # Threaded loops block on the condition; reactor-mode loops only
        # ever lock it (they park on the reactor's timer heap instead),
        # so they get the slim lock-only variant.
        self._cond = threading.Condition() if threaded else _NoWaitCondition()
        # A plain list: queues are short (pending ops per reference), the
        # rare pop(0) shift is noise next to a radio round-trip, and a
        # list's empty footprint is a tenth of a deque's — which matters
        # at 100k idle references each holding a (near-)empty queue.
        self._queue: List[Operation] = []
        self._stopped = False
        self._cached_object: Any = None
        self._cached_message: Optional[NdefMessage] = None
        self._has_cache = False
        # Usually created upon discovery (i.e. in the field), but a
        # reference can also be created for an already-departed tag --
        # query the field so the first connectivity transition a
        # listener sees is never against a stale initial state.
        self._connected = self._port.environment.tag_in_field(
            tag.simulated, self._port
        )
        self._connectivity_listeners: List[ConnectivityListener] = []
        # Lazily created (None until the first add): at 100k idle
        # references an empty list per instance is real memory.
        self._telemetry_listeners: Optional[List[Callable[..., None]]] = None

        # Statistics, exposed for tests and benchmarks.
        self.attempts = 0
        self.successes = 0
        self.timeouts = 0
        self.permanent_failures = 0
        self.coalesced_writes = 0  # writes superseded by a newer payload
        self.deduped_reads = 0  # reads settled by another read's attempt
        self.protocol_merges = 0  # raw writes absorbed via merge_key

        self._port.add_tag_listener(tag.simulated, self._on_field_event)
        self._thread: Optional[threading.Thread] = None
        self._task: Optional[ReactorTask] = None
        # Batched radio execution (reactor mode only): the device's
        # per-port transaction scheduler drains this reference's ready
        # head operations through shared tag sessions, one connect per
        # tap window. ``batched=False`` opts a reference out (its radio
        # work runs on its own task, standalone-cost per operation);
        # ``threaded=True`` always runs unbatched, paper-literally.
        self._batch: Optional["PortTransactionScheduler"] = None
        self._batch_backoff_until = 0.0
        if threaded:
            # Paper-literal mode: one OS thread per reference. Kept for
            # the event-loop ablation bench and as an escape hatch.
            self._thread = threading.Thread(
                target=self._event_loop,
                name=f"tagref-{tag.id_hex}",
                daemon=True,
            )
            self._thread.start()
        else:
            shared = reactor if reactor is not None else activity.device.reactor
            self._task = shared.register(self._step, name=f"tagref-{tag.id_hex}")
            # Default on -- except under an explicitly supplied reactor,
            # where pulling in the device scheduler (which runs on the
            # *device's* reactor) would be a surprise.
            use_batched = batched if batched is not None else reactor is None
            if use_batched:
                self._batch = activity.device.tx_scheduler
                self._batch.register(self)

    # -- identity & cached state --------------------------------------------------

    @property
    def tag(self) -> "Tag":
        return self._tag

    @property
    def uid(self) -> bytes:
        return self._tag.id

    @property
    def uid_hex(self) -> str:
        return self._tag.id_hex

    @property
    def activity(self) -> "NFCActivity":
        return self._activity

    @property
    def looper(self) -> "Looper":
        """The main looper all of this reference's listeners post to."""
        return self._looper

    @property
    def default_timeout(self) -> float:
        """Timeout applied when an operation omits its own."""
        return self._default_timeout

    @property
    def cached(self) -> Any:
        """Last converted content seen on the tag (synchronous, maybe stale).

        The paper's warning applies verbatim: if the tag was out of sight
        for a while another device may have rewritten it -- prefer an
        asynchronous :meth:`read` for critical data.
        """
        return self._cached_object

    @property
    def cached_message(self) -> Optional[NdefMessage]:
        return self._cached_message

    @property
    def has_cache(self) -> bool:
        return self._has_cache

    def __repr__(self) -> str:
        return (
            f"TagReference(uid={self.uid_hex}, pending={self.pending_count}, "
            f"connected={self.is_connected})"
        )

    @property
    def aio(self):
        """Coroutine view: ``await ref.aio.read()`` etc.

        A stateless adapter over the listener API — same operations,
        same queue, same guarantees; see :mod:`repro.core.aio`. Works
        under either reactor backend and from any event loop.
        """
        from repro.core.aio import AsyncTagReference

        return AsyncTagReference(self)

    # -- connectivity ----------------------------------------------------------------

    @property
    def is_connected(self) -> bool:
        """Whether the tag is currently believed to be in range."""
        return self._port.environment.tag_in_field(self._tag.simulated, self._port)

    def add_connectivity_listener(self, listener: ConnectivityListener) -> None:
        """Observe connectivity changes; called as ``listener(ref, connected)``
        on the activity's main thread."""
        with self._cond:
            self._connectivity_listeners.append(listener)

    def remove_connectivity_listener(self, listener: ConnectivityListener) -> None:
        with self._cond:
            if listener in self._connectivity_listeners:
                self._connectivity_listeners.remove(listener)

    def add_telemetry_listener(self, listener: Callable[..., None]) -> None:
        """Observe every operation settlement: ``listener(ref, op, outcome)``.

        Unlike the per-operation success/failure listeners (which are
        application logic and post to the main looper), telemetry
        listeners are a *tap*: they run inline on the settling thread,
        see every non-cancelled settlement of every operation, and must
        be cheap and non-blocking — the contract a
        :class:`~repro.gateway.reporter.GatewayReporter` honours with
        its O(1) buffered ``record``.
        """
        with self._cond:
            if self._telemetry_listeners is None:
                self._telemetry_listeners = []
            self._telemetry_listeners.append(listener)

    def remove_telemetry_listener(self, listener: Callable[..., None]) -> None:
        with self._cond:
            if (
                self._telemetry_listeners is not None
                and listener in self._telemetry_listeners
            ):
                self._telemetry_listeners.remove(listener)

    def notify_redetected(self) -> None:
        """Wake the event loop; called by the discoverer on re-detection."""
        self._wake()

    def _wake(self) -> None:
        """Wake the event loop in whichever mode it runs."""
        if self._task is not None:
            self._task.wake()
        else:
            with self._cond:
                self._cond.notify_all()

    def _on_field_event(self, event: FieldEvent) -> None:
        if isinstance(event, TagEntered) and event.tag is self._tag.simulated:
            self._set_connected(True)
            self._wake()
        elif isinstance(event, TagLeft) and event.tag is self._tag.simulated:
            self._set_connected(False)

    def _set_connected(self, connected: bool) -> None:
        with self._cond:
            if self._connected == connected:
                return
            self._connected = connected
            listeners = list(self._connectivity_listeners)
        for listener in listeners:
            self._post_listener(listener, self, connected)

    # -- the asynchronous interface ------------------------------------------------------

    def read(
        self,
        on_read: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> Operation:
        """Schedule an asynchronous read.

        On success the tag's content is converted with the read converter,
        cached, and ``on_read(ref)`` runs on the main thread. If the read
        does not succeed within ``timeout`` seconds (the reference default
        when omitted), ``on_failed(ref)`` runs instead.
        """
        operation = self._make_operation(
            OperationKind.READ, on_read, on_failed, timeout
        )
        self._enqueue(operation)
        return operation

    def write(
        self,
        obj: Any,
        on_written: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
        coalesce: Optional[bool] = None,
    ) -> Operation:
        """Schedule an asynchronous write of ``obj``.

        ``obj`` is converted with the write converter immediately (so the
        value written is the value at call time, not at transmission
        time). Conversion failures settle the operation at once via
        ``on_failed``; radio failures are retried until the timeout.

        ``coalesce`` marks the write as coalescible (defaulting to the
        reference's ``coalesce_writes`` setting): while queued and not
        yet attempted, it may be superseded by a newer coalescible write
        -- one physical write lands the newest payload and the
        superseded writes settle success in FIFO order. Coalescing only
        merges *adjacent* coalescible writes at the queue tail; a queued
        read (or any other operation kind) is a fence, preserving the
        in-order guarantee that a read observes the preceding write.
        """
        operation = self._make_operation(
            OperationKind.WRITE, on_written, on_failed, timeout
        )
        operation.coalescible = (
            self._coalesce_writes if coalesce is None else coalesce
        )
        operation.original_object = obj
        try:
            operation.payload = self._write_converter.convert(obj)
        except ConverterError as exc:
            self._settle(operation, OperationOutcome.FAILED, exc)
            return operation
        self._enqueue(operation)
        return operation

    def read_raw(
        self,
        on_read: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> Operation:
        """Schedule an asynchronous read that skips the read converter.

        Only :attr:`cached_message` is refreshed (the converted-object
        cache is left untouched); the success listener inspects
        ``ref.cached_message``. Protocol layers that ride along with
        application data -- like :mod:`repro.leasing` -- use this to work
        at the NDEF level regardless of the reference's converters.
        """
        operation = self._make_operation(
            OperationKind.READ, on_read, on_failed, timeout
        )
        operation.raw = True
        self._enqueue(operation)
        return operation

    def write_raw(
        self,
        message: Optional[NdefMessage] = None,
        on_written: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
        merge_key: Optional[str] = None,
        message_factory: Optional[Callable[[], NdefMessage]] = None,
    ) -> Operation:
        """Schedule an asynchronous write of a ready-made NDEF message.

        Skips the write converter; only :attr:`cached_message` is
        refreshed on success. See :meth:`read_raw`. Raw writes never
        coalesce through the generic tail merge: protocol layers
        (leasing and friends) depend on every message physically
        reaching the tag.

        ``merge_key`` is the sanctioned protocol merge hook: when the
        queue tail is an unsent raw write carrying the *same* key, the
        two collapse to this (newest) message -- the protocol's own
        latest-record-wins rule, e.g. a lease renewal replacing a
        pending renewal's expiry. The superseded write's success
        listener still fires, in FIFO order, when the survivor lands;
        any other queued operation is a fence. Never pass a merge key
        for records that must each reach the tag.

        ``message_factory`` (mutually exclusive with ``message``)
        defers building the message to transmission time: it is called
        on the event loop for every radio attempt, after all earlier
        queued operations have settled and refreshed
        :attr:`cached_message` -- so a protocol record composed with
        cached application data never resurrects state that a queued
        data write in front of it was about to replace.
        """
        if (message is None) == (message_factory is None):
            raise MorenaError(
                "write_raw expects exactly one of message / message_factory"
            )
        if message is not None and not isinstance(message, NdefMessage):
            raise MorenaError("write_raw expects an NdefMessage")
        operation = self._make_operation(
            OperationKind.WRITE, on_written, on_failed, timeout
        )
        operation.raw = True
        operation.payload = message
        operation.payload_factory = message_factory
        operation.merge_key = merge_key
        self._enqueue(operation)
        return operation

    def make_read_only(
        self,
        on_locked: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> Operation:
        """Schedule an asynchronous permanent lock of the tag."""
        operation = self._make_operation(
            OperationKind.LOCK, on_locked, on_failed, timeout
        )
        self._enqueue(operation)
        return operation

    def format(
        self,
        on_formatted: ListenerLike = None,
        on_failed: ListenerLike = None,
        timeout: Optional[float] = None,
    ) -> Operation:
        """Schedule an asynchronous NDEF format of a blank tag.

        Because the queue is processed in order, ``format`` followed by
        ``write`` initializes a factory-blank tag safely: the write is
        never attempted before the format completed.
        """
        operation = self._make_operation(
            OperationKind.FORMAT, on_formatted, on_failed, timeout
        )
        self._enqueue(operation)
        return operation

    # -- cancellation -----------------------------------------------------------------------

    def cancel(self, operation: Operation) -> bool:
        """Best-effort cancellation of a queued operation.

        Returns ``True`` if the operation was still queued and is now
        ``CANCELLED`` (no listener will fire). Returns ``False`` if it
        already settled. An operation whose radio attempt is in flight at
        the moment of cancellation is removed from the queue, but if that
        attempt happens to succeed the data *did* reach the tag -- the
        operation stays ``CANCELLED`` and silent regardless, which is the
        honest race of a distributed cancel.
        """
        with self._cond:
            for index, queued in enumerate(self._queue):
                if queued is operation:
                    del self._queue[index]
                    # Cancelling the survivor of a coalesced chain only
                    # cancels that one write: the superseded operations
                    # are still pending, so the newest of them takes the
                    # survivor's place in the queue.
                    shadows = operation.superseded
                    if shadows:
                        operation.superseded = []
                        revived = shadows.pop()
                        revived.superseded = shadows
                        self._queue.insert(index, revived)
                    operation.outcome = OperationOutcome.CANCELLED
                    self._cond.notify_all()
                    return True
                if operation in queued.superseded:
                    queued.superseded.remove(operation)
                    operation.outcome = OperationOutcome.CANCELLED
                    self._cond.notify_all()
                    return True
            return False

    def cancel_all(self) -> int:
        """Cancel every queued operation; returns how many were cancelled.

        Like :meth:`cancel` this is **silent**: no success or failure
        listener fires for the cancelled operations (the caller asked for
        the cancellation, so there is nobody left to inform). To tear the
        reference down *and* flush failure listeners for whatever is
        still pending, use ``stop(notify_pending=True)`` instead.
        """
        with self._cond:
            cancelled = self._drain_queue_locked()
            for operation in cancelled:
                operation.outcome = OperationOutcome.CANCELLED
            self._cond.notify_all()
        return len(cancelled)

    def _drain_queue_locked(self) -> List[Operation]:
        """Empty the queue, returning every logical operation in FIFO
        order (superseded writes precede their surviving write)."""
        drained: List[Operation] = []
        for operation in self._queue:
            drained.extend(operation.superseded)
            operation.superseded = []
            drained.append(operation)
        self._queue.clear()
        return drained

    # -- queue introspection ---------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Logical pending operations, superseded writes included."""
        with self._cond:
            return len(self._queue) + sum(
                len(operation.superseded) for operation in self._queue
            )

    def pending_operations(self) -> List[Operation]:
        """The pending operations in FIFO order (superseded writes
        precede the surviving write that will settle them)."""
        with self._cond:
            out: List[Operation] = []
            for operation in self._queue:
                out.extend(operation.superseded)
                out.append(operation)
            return out

    # -- lifecycle ----------------------------------------------------------------------------

    @property
    def is_stopped(self) -> bool:
        with self._cond:
            return self._stopped

    def stop(self, notify_pending: bool = False, join_timeout: float = 5.0) -> None:
        """Stop the private event loop.

        Pending operations become ``CANCELLED``. By default that is
        silent, mirroring :meth:`cancel_all`; with ``notify_pending``
        their failure listeners are scheduled a final time (the teardown
        variant for applications that must flush callbacks). An
        operation whose radio attempt is in flight at the moment of the
        stop is cancelled too and never settles otherwise.
        """
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            cancelled = self._drain_queue_locked()
            self._cond.notify_all()
        for operation in cancelled:
            operation.outcome = OperationOutcome.CANCELLED
            if notify_pending:
                self._post_listener(operation.on_failure, self)
        self._port.remove_tag_listener(self._tag.simulated, self._on_field_event)
        if self._batch is not None:
            self._batch.unregister(self)
        if self._task is not None:
            # Deregister rather than wake: a wake would spin up reactor
            # threads just to observe the stop flag, and any timer entry
            # for this task is ignored once cancelled.
            self._task.cancel()
        if self._thread is not None and threading.current_thread() is not self._thread:
            self._thread.join(join_timeout)

    # -- internals -------------------------------------------------------------------------------

    def _make_operation(
        self,
        kind: OperationKind,
        on_success: ListenerLike,
        on_failure: ListenerLike,
        timeout: Optional[float],
    ) -> Operation:
        effective = self._default_timeout if timeout is None else timeout
        if effective <= 0:
            raise MorenaError("operation timeout must be positive")
        now = self._clock.now()
        return Operation(
            kind=kind,
            deadline=now + effective,
            enqueued_at=now,
            on_success=as_callback(on_success),
            on_failure=as_callback(on_failure),
        )

    def _enqueue(self, operation: Operation) -> None:
        with self._cond:
            if self._stopped:
                raise ReferenceStoppedError(
                    f"tag reference {self.uid_hex} has been stopped"
                )
            if operation.coalescible and self._queue:
                tail = self._queue[-1]
                if (
                    tail.kind is OperationKind.WRITE
                    and tail.coalescible
                    and not tail.in_flight
                ):
                    # Collapse to the newest payload: the tail write is
                    # superseded, and the new write inherits the duty of
                    # settling the whole chain (FIFO) when it lands. A
                    # tail that is not a coalescible write -- a read, a
                    # format, a raw write, an in-flight attempt -- is a
                    # fence and the new write simply queues behind it.
                    self._absorb_tail_locked(operation)
                    self.coalesced_writes += 1
            elif operation.merge_key is not None and self._queue:
                tail = self._queue[-1]
                if (
                    tail.kind is OperationKind.WRITE
                    and tail.raw
                    and tail.merge_key == operation.merge_key
                    and not tail.in_flight
                ):
                    # Protocol merge: same-key raw writes are
                    # replacement records, the newest message wins.
                    # Fences are anything that breaks tail-adjacency --
                    # a keyless raw write (guarded data, release), a
                    # read (foreign-record observation), a lock, a
                    # format, an in-flight attempt.
                    self._absorb_tail_locked(operation)
                    operation.merged = True
                    self.protocol_merges += 1
            self._queue.append(operation)
            self._cond.notify_all()
        if self._task is not None:
            if operation.merged:
                # The queue did not grow and the tail was already being
                # awaited; only the deadline may have moved. Adopt it on
                # the reactor's timer heap instead of spinning a worker.
                self._task.schedule_at(operation.deadline)
            else:
                self._task.wake()

    def _absorb_tail_locked(self, operation: Operation) -> None:
        """Replace the queue tail with ``operation``, which inherits the
        tail (and its chain) as superseded writes to settle FIFO."""
        tail = self._queue.pop()
        shadows = tail.superseded
        tail.superseded = []
        shadows.append(tail)
        operation.superseded = shadows

    def _step(self) -> Optional[float]:
        """One scheduling quantum of the logical event loop (reactor mode).

        Runs on a reactor worker, serialized per reference. Returns
        ``None`` to go idle until an external wakeup (enqueue, field
        event, redetection), or the absolute clock time at which the
        reactor should run the next quantum (a time already reached
        means "immediately" -- more queued work). Crucially this never
        sleeps on the worker: retry backoff and timeout expiry are
        delegated to the reactor's deadline heap, so an absent tag's
        retries occupy no thread and cannot starve other references.

        In batched mode the radio work itself belongs to the per-port
        transaction scheduler; this task keeps only the time-driven
        duties (timeout expiry) and forwards readiness.
        """
        if self._batch is not None:
            return self._batch_step()
        for _ in range(_STEP_BURST_OPS):
            head: Optional[Operation] = None
            with self._cond:
                if self._stopped:
                    return None
                self._expire_locked()
                if not self._queue:
                    return None
                if not self._tag_present():
                    # Decoupled in time: keep the queue, wait for the field.
                    # A TagEntered event wakes us; the earliest deadline
                    # bounds the wait so timeouts still fire while away.
                    return self._earliest_deadline_locked()
                head = self._queue[0]
                head.in_flight = True
            outcome, error = self._attempt(head)
            with self._cond:
                head.in_flight = False
                if self._stopped:
                    return None
                if outcome is OperationOutcome.PENDING:
                    # Transient failure: the operation stays at the head
                    # of the queue; back off until the retry interval or
                    # the earliest deadline, whichever comes first.
                    if not self._queue:
                        return None  # cancelled mid-attempt
                    retry_at = self._clock.now() + self._retry_interval
                    return min(retry_at, self._earliest_deadline_locked())
                before, after = self._harvest_settlements_locked(head, outcome)
            self._settle_batch(head, before, after, outcome, error)
        with self._cond:
            if self._queue and not self._stopped:
                return self._clock.now()  # burst cap hit: yield, then resume
        return None

    def _batch_step(self) -> Optional[float]:
        """The reference task's quantum in batched mode.

        Radio attempts happen on the transaction scheduler's drain; this
        task only expires deadlines and reports readiness, then parks on
        the earliest pending deadline so timeouts fire even while the
        scheduler has nothing to drain (absent tag, backoff).
        """
        with self._cond:
            if self._stopped:
                return None
            self._expire_locked()
            if not self._queue:
                return None
            runnable = self._tag_present()
            deadline = self._earliest_deadline_locked()
        if runnable:
            # Outside the queue lock: the scheduler takes its own lock
            # and wakes its reactor task.
            self._batch.notify_runnable(self)
        return deadline

    def batch_poll(self) -> BatchView:
        """Expire overdue operations, then report the queue's batch view.

        Called by the transaction scheduler's drain loop; see
        :class:`BatchView` for the fields and
        :meth:`Operation.is_batch_fence` for the fence rules the
        scheduler enforces with them.
        """
        with self._cond:
            if self._stopped or not self._queue:
                return _EMPTY_BATCH_VIEW
            self._expire_locked()
            if not self._queue:
                return _EMPTY_BATCH_VIEW
            head = self._queue[0]
            head_id = head.op_id
            if head.superseded:
                head_id = min(head_id, head.superseded[0].op_id)
            # First fence in queue order carries the smallest fence id:
            # op_ids grow along the queue, and a superseded write is
            # always newer than everything queued ahead of its survivor.
            fence_id: Optional[int] = None
            for operation in self._queue:
                ids = [
                    shadow.op_id
                    for shadow in operation.superseded
                    if shadow.is_batch_fence
                ]
                if operation.is_batch_fence:
                    ids.append(operation.op_id)
                if ids:
                    fence_id = min(ids)
                    break
            ready: Optional[Operation] = None
            wake_at: Optional[float] = None
            if not head.in_flight:
                if self._clock.now() >= self._batch_backoff_until:
                    ready = head
                else:
                    wake_at = self._batch_backoff_until
            depth = len(self._queue) + sum(
                len(operation.superseded) for operation in self._queue
            )
            return BatchView(ready, head_id, fence_id, wake_at, depth)

    def batch_execute(self, operation: Operation, session: "TagSession") -> str:
        """Run one head attempt through an open tag session.

        Called by the transaction scheduler's drain loop. Returns
        ``"settled"`` (the operation and any coalesced/deduped
        companions settled, listeners posted FIFO), ``"retry"`` (the
        attempt failed transiently -- the operation stays at the head
        and this reference backs off for its retry interval), or
        ``"skip"`` (the queue changed underneath: cancel, stop or
        timeout won the race and there is nothing to do).
        """
        with self._cond:
            if (
                self._stopped
                or not self._queue
                or self._queue[0] is not operation
                or operation.in_flight
            ):
                return "skip"
            operation.in_flight = True
        outcome, error = self._attempt(operation, radio=session)
        with self._cond:
            operation.in_flight = False
            if self._stopped:
                return "skip"
            if outcome is OperationOutcome.PENDING:
                if not self._queue or self._queue[0] is not operation:
                    return "skip"  # cancelled mid-attempt
                self._batch_backoff_until = (
                    self._clock.now() + self._retry_interval
                )
                return "retry"
            before, after = self._harvest_settlements_locked(operation, outcome)
        self._settle_batch(operation, before, after, outcome, error)
        return "settled"

    def _earliest_deadline_locked(self) -> float:
        earliest = min(operation.deadline for operation in self._queue)
        for operation in self._queue:
            for shadow in operation.superseded:
                if shadow.deadline < earliest:
                    earliest = shadow.deadline
        return earliest

    def _harvest_settlements_locked(
        self, head: Operation, outcome: OperationOutcome
    ):
        """Update the queue and counters after ``head`` settled.

        Returns ``(before, after)``: the operations to settle with the
        same outcome before and after ``head``, keeping listener order
        FIFO. ``before`` is the coalesced chain ``head`` superseded;
        ``after`` holds later queued reads settled by this attempt's
        result (read dedup: consecutive pending reads of the same
        rawness share one physical read -- a queued write in between is
        a fence, because the next read must observe that write).
        """
        if self._queue and self._queue[0] is head:
            self._queue.pop(0)
        before = head.superseded
        head.superseded = []
        after: List[Operation] = []
        if outcome is OperationOutcome.SUCCEEDED:
            if head.kind is OperationKind.READ:
                while (
                    self._queue
                    and self._queue[0].kind is OperationKind.READ
                    and self._queue[0].raw == head.raw
                ):
                    after.append(self._queue.pop(0))
                    self.deduped_reads += 1
            self.successes += 1 + len(before) + len(after)
        else:
            self.permanent_failures += 1 + len(before)
        return before, after

    def _settle_batch(
        self,
        head: Operation,
        before: List[Operation],
        after: List[Operation],
        outcome: OperationOutcome,
        error: Optional[BaseException],
    ) -> None:
        for operation in before:
            self._settle(operation, outcome, error)
        self._settle(head, outcome, error)
        for operation in after:
            self._settle(operation, outcome, error)

    def _event_loop(self) -> None:
        """The legacy ``threaded=True`` loop: one OS thread, private waits."""
        while True:
            head: Optional[Operation] = None
            with self._cond:
                if self._stopped:
                    return
                self._expire_locked()
                if not self._queue:
                    self._cond.wait()
                    continue
                if not self._tag_present():
                    # Decoupled in time: keep the queue, wait for the field.
                    self._cond.wait(_WAIT_SLICE_SECONDS)
                    continue
                head = self._queue[0]
                head.in_flight = True
            outcome, error = self._attempt(head)
            with self._cond:
                head.in_flight = False
                if self._stopped:
                    return
                if outcome is OperationOutcome.PENDING:
                    # Transient failure: the operation stays at the head of
                    # the queue; pause briefly before the next attempt.
                    self._cond.wait(self._retry_interval)
                    continue
                before, after = self._harvest_settlements_locked(head, outcome)
            self._settle_batch(head, before, after, outcome, error)

    def _tag_present(self) -> bool:
        return self._port.environment.tag_in_field(self._tag.simulated, self._port)

    def _expire_locked(self) -> None:
        """Fail every pending operation whose deadline has passed.

        Superseded writes keep their own deadlines: one that expires
        before the surviving write lands times out individually. When a
        surviving write itself expires, the chain it carries is still
        pending -- the newest superseded write takes its place in the
        queue (its own deadline has not passed, or it would have expired
        first above).
        """
        now = self._clock.now()
        index = 0
        while index < len(self._queue):
            operation = self._queue[index]
            if operation.in_flight:
                # A radio attempt is executing right now (the batched
                # drain runs on another thread): hands off -- the
                # attempt's settlement path re-examines the queue.
                index += 1
                continue
            if operation.superseded:
                remaining = []
                for shadow in operation.superseded:
                    if shadow.deadline <= now:
                        self.timeouts += 1
                        self._settle(shadow, OperationOutcome.TIMED_OUT, None)
                    else:
                        remaining.append(shadow)
                operation.superseded = remaining
            if operation.deadline <= now:
                del self._queue[index]
                shadows = operation.superseded
                if shadows:
                    operation.superseded = []
                    revived = shadows.pop()
                    revived.superseded = shadows
                    self._queue.insert(index, revived)
                    index += 1
                self.timeouts += 1
                self._settle(operation, OperationOutcome.TIMED_OUT, None)
            else:
                index += 1

    def _attempt(self, operation: Operation, radio: Optional[Any] = None):
        """Try the head operation once. Returns (outcome, error).

        ``PENDING`` as outcome means: transient failure, keep it queued.
        ``radio`` substitutes an open :class:`TagSession` for the port
        (batched mode); both expose the same blocking tag operations.
        """
        port = self._port if radio is None else radio
        operation.attempts += 1
        self.attempts += 1
        try:
            if operation.kind is OperationKind.READ:
                message = port.read_ndef(self._tag.simulated)
                if operation.raw:
                    self._update_message_cache(message)
                else:
                    converted = self._read_converter.convert(message)
                    self._update_cache(converted, message)
            elif operation.kind is OperationKind.WRITE:
                payload = (
                    operation.payload
                    if operation.payload_factory is None
                    else operation.payload_factory()
                )
                port.write_ndef(self._tag.simulated, payload)
                if operation.raw:
                    self._update_message_cache(payload)
                else:
                    self._update_cache(operation.original_object, payload)
            elif operation.kind is OperationKind.FORMAT:
                port.format_tag(self._tag.simulated)
            else:
                port.make_read_only(self._tag.simulated)
            return OperationOutcome.SUCCEEDED, None
        except _PERMANENT_ERRORS as exc:
            return OperationOutcome.FAILED, exc
        except _TRANSIENT_ERRORS as exc:
            operation.error = exc
            return OperationOutcome.PENDING, exc
        except RadioError as exc:
            operation.error = exc
            return OperationOutcome.PENDING, exc

    def _update_cache(self, converted: Any, message: NdefMessage) -> None:
        with self._cond:
            self._cached_object = converted
            self._cached_message = message
            self._has_cache = True

    def _update_message_cache(self, message: NdefMessage) -> None:
        with self._cond:
            self._cached_message = message
            self._has_cache = True

    def _settle(
        self,
        operation: Operation,
        outcome: OperationOutcome,
        error: Optional[BaseException],
    ) -> None:
        if operation.outcome is OperationOutcome.CANCELLED:
            return  # cancelled mid-attempt: stay silent
        operation.outcome = outcome
        operation.error = error if error is not None else operation.error
        if outcome is OperationOutcome.SUCCEEDED:
            self._post_listener(operation.on_success, self)
        else:
            self._post_listener(operation.on_failure, self)
        # Telemetry tap: inline, after the application listener is
        # posted; listeners are contract-bound to be non-blocking.
        # Read without _cond: _settle runs inside _expire_locked with
        # the (non-reentrant in reactor mode) condition already held,
        # and a GIL-atomic list copy is all the snapshot needs.
        taps = self._telemetry_listeners
        if taps:
            for tap in list(taps):
                try:
                    tap(self, operation, outcome)
                except Exception:  # noqa: BLE001 - a tap must not break settlement
                    pass

    def _post_listener(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a listener on the activity's main thread.

        If the main looper has already quit (activity torn down) the
        listener is dropped -- there is no UI left to inform. Only that
        ``LooperError`` is swallowed: a programming error in the
        middleware must surface, not masquerade as a quiet shutdown.
        """
        try:
            self._looper.post(lambda: callback(*args))
        except LooperError:  # looper quit during shutdown
            pass
