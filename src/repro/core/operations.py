"""Queued asynchronous operations.

Each ``read`` / ``write`` / ``make_read_only`` call on a tag reference
enqueues one :class:`Operation`: the decoupling-in-time data structure
that lets the *logical* act of information sending proceed while the
*physical* act waits for the tag to be back in range (paper section 1.2,
"first-class references to remote objects").
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

_op_ids = itertools.count(1)
_op_ids_lock = threading.Lock()


def _next_op_id() -> int:
    with _op_ids_lock:
        return next(_op_ids)


class OperationKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    LOCK = "lock"
    FORMAT = "format"


class OperationOutcome(enum.Enum):
    PENDING = "pending"
    SUCCEEDED = "succeeded"
    TIMED_OUT = "timed_out"
    FAILED = "failed"  # permanent error (capacity, read-only, converter)
    CANCELLED = "cancelled"  # reference stopped


# slots=True: a parked operation is pure idle state (100k references can
# each hold one for minutes), so the per-instance dict is pure overhead.
@dataclass(slots=True)
class Operation:
    """One queued asynchronous tag operation."""

    kind: OperationKind
    deadline: float
    on_success: Callable[..., None]
    on_failure: Callable[..., None]
    payload: Any = None  # converted NdefMessage for writes; None otherwise
    original_object: Any = None  # pre-conversion application object
    op_id: int = field(default_factory=_next_op_id)
    enqueued_at: float = 0.0
    attempts: int = 0
    raw: bool = False  # skip converters; maintain only the message cache
    outcome: OperationOutcome = OperationOutcome.PENDING
    error: Optional[BaseException] = None
    # Write coalescing (see TagReference): a coalescible write at the
    # queue tail may be superseded by a newer coalescible write. The
    # survivor carries the superseded operations (oldest first) and
    # settles them -- success in FIFO order -- when it lands.
    coalescible: bool = False
    in_flight: bool = False  # a radio attempt is executing right now
    superseded: List["Operation"] = field(default_factory=list)
    # Protocol merge hook (raw writes only, see TagReference.write_raw):
    # two tail-adjacent unsent raw writes carrying the same merge_key
    # collapse to the newest (the protocol's latest-record-wins rule,
    # e.g. a lease renewal's latest expiry). ``merged`` records that
    # this operation absorbed its predecessor on enqueue.
    merge_key: Optional[str] = None
    merged: bool = False
    # Deferred payload: evaluated per radio attempt instead of at
    # enqueue time, so a protocol write transmits the record built from
    # the *latest* cached tag state (every earlier queued operation has
    # settled and refreshed the cache by the time this one is tried).
    payload_factory: Optional[Callable[[], Any]] = None

    @property
    def is_settled(self) -> bool:
        return self.outcome is not OperationOutcome.PENDING

    @property
    def is_batch_fence(self) -> bool:
        """Whether this operation fences a batched tap window.

        Inside one batched session the per-port transaction scheduler
        interleaves the *ready* head operations of every reference bound
        to the tag, ordered by global enqueue order (``op_id``). Plain
        converted writes tolerate best-effort interleaving (exactly the
        freedom the unbatched path always had); everything that observes
        or guards tag state does not. A fence — any read, any raw write
        (lease-guarded writes, renewals, releases), a lock, a format —
        executes only once every earlier-enqueued operation of *every*
        co-located reference has settled, and no later-enqueued
        operation of another reference may overtake it.
        """
        if self.kind is not OperationKind.WRITE:
            return True
        return self.raw

    def __repr__(self) -> str:
        return (
            f"Operation(#{self.op_id} {self.kind.value}, attempts={self.attempts}, "
            f"outcome={self.outcome.value})"
        )
