"""Per-reference data conversion strategies.

The Android API forces every application to convert its data to and from
NDEF by hand, scattered through activity code. MORENA encapsulates the
conversion in two converter objects attached to each ``TagDiscoverer``
(and inherited by the ``TagReference`` objects it produces), so an
activity can juggle multiple references with different strategies without
ever touching NDEF itself (paper sections 3.1-3.2).

Built-in strategies:

* string <-> single MIME record (the paper's running example);
* arbitrary object <-> JSON-in-a-MIME-record via :class:`repro.gson.Gson`
  (what the thing layer uses);
* identity (NDEF in, NDEF out) for applications that want raw access.
"""

from __future__ import annotations

from typing import Any, Optional, Type

from repro.errors import ConverterError
from repro.gson import Gson
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record, normalize_mime_type


class NdefMessageToObjectConverter:
    """Read-side strategy: NDEF message -> application object."""

    def convert(self, message: NdefMessage) -> Any:
        raise NotImplementedError


class ObjectToNdefMessageConverter:
    """Write-side strategy: application object -> NDEF message."""

    def convert(self, obj: Any) -> NdefMessage:
        raise NotImplementedError


# -- strings ------------------------------------------------------------------


class NdefMessageToStringConverter(NdefMessageToObjectConverter):
    """First record's payload, decoded as UTF-8 (the paper's example)."""

    def convert(self, message: NdefMessage) -> str:
        if not len(message):
            raise ConverterError("message has no records")
        try:
            return message[0].payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ConverterError(f"payload is not UTF-8 text: {exc}") from exc


class StringToNdefMessageConverter(ObjectToNdefMessageConverter):
    """A single MIME record holding the string as UTF-8 bytes."""

    def __init__(self, mime_type: str = "text/plain") -> None:
        self.mime_type = normalize_mime_type(mime_type)

    def convert(self, obj: Any) -> NdefMessage:
        text = "" if obj is None else str(obj)
        return NdefMessage([mime_record(self.mime_type, text.encode("utf-8"))])


# -- JSON objects (the thing layer's strategy) -----------------------------------


class ObjectToJsonConverter(ObjectToNdefMessageConverter):
    """Serialize any object to JSON (GSON-style) inside one MIME record."""

    def __init__(self, mime_type: str, gson: Optional[Gson] = None) -> None:
        self.mime_type = normalize_mime_type(mime_type)
        self._gson = gson or Gson()

    def convert(self, obj: Any) -> NdefMessage:
        try:
            text = self._gson.to_json(obj)
        except Exception as exc:
            raise ConverterError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
        return NdefMessage([mime_record(self.mime_type, text.encode("utf-8"))])


class JsonToObjectConverter(NdefMessageToObjectConverter):
    """Deserialize the first record's JSON payload into ``target_class``."""

    def __init__(self, target_class: Type, gson: Optional[Gson] = None) -> None:
        self.target_class = target_class
        self._gson = gson or Gson()

    def convert(self, message: NdefMessage) -> Any:
        if not len(message):
            raise ConverterError("message has no records")
        try:
            text = message[0].payload.decode("utf-8")
            return self._gson.from_json(text, self.target_class)
        except ConverterError:
            raise
        except Exception as exc:
            raise ConverterError(
                f"cannot deserialize into {self.target_class.__name__}: {exc}"
            ) from exc


# -- identity ----------------------------------------------------------------------


class IdentityConverters(NdefMessageToObjectConverter, ObjectToNdefMessageConverter):
    """Raw access: the application object *is* the NDEF message."""

    def convert(self, value):  # type: ignore[override]
        if isinstance(value, NdefMessage):
            return value
        raise ConverterError(
            f"identity conversion expects NdefMessage, got {type(value).__name__}"
        )
