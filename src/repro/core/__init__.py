"""MORENA's lower abstraction layer: RFID-tagged objects by reference.

This is the paper's section 3. RFID tags are represented by first-class
**tag references** -- far references in the E / AmbientTalk tradition --
which offer an exclusively asynchronous, retrying, in-order interface to
the intermittently connected tag:

* :class:`~repro.core.reference.TagReference` -- queue + private event
  loop; ``read`` / ``write`` / ``make_read_only`` with success and failure
  listeners; cached synchronous access to the last seen content.
* :class:`~repro.core.factory.TagReferenceFactory` -- guarantees a single
  unique reference per tag within one activity.
* :class:`~repro.core.discovery.TagDiscoverer` -- connectivity tracking
  (``on_tag_detected`` / ``on_tag_redetected``) with MIME filtering and an
  optional ``check_condition`` predicate.
* :class:`~repro.core.nfc_activity.NFCActivity` -- the activity base class
  that captures the platform's NFC intents once, so applications never
  touch intents again.
* :class:`~repro.core.beam.Beamer` / ``BeamReceivedListener`` -- the same
  asynchronous interface for phone-to-phone pushes.
* converters (:mod:`repro.core.converters`) -- per-reference data
  conversion strategies between application objects and NDEF messages.
"""

from repro.core.converters import (
    IdentityConverters,
    JsonToObjectConverter,
    NdefMessageToObjectConverter,
    NdefMessageToStringConverter,
    ObjectToJsonConverter,
    ObjectToNdefMessageConverter,
    StringToNdefMessageConverter,
)
from repro.core.listeners import (
    TagReadFailedListener,
    TagReadListener,
    TagWriteFailedListener,
    TagWrittenListener,
)
from repro.core.operations import Operation, OperationKind, OperationOutcome
from repro.core.reference import TagReference
from repro.core.scheduler import Reactor, ReactorTask, default_worker_count
from repro.core.futures import (
    OperationFuture,
    OperationTimeoutError,
    lock_future,
    read_future,
    write_future,
)
from repro.core.factory import TagReferenceFactory
from repro.core.nfc_activity import NFCActivity
from repro.core.discovery import TagDiscoverer
from repro.core.beam import Beamer, BeamReceivedListener

__all__ = [
    "TagReference",
    "TagReferenceFactory",
    "Reactor",
    "ReactorTask",
    "default_worker_count",
    "TagDiscoverer",
    "NFCActivity",
    "Beamer",
    "BeamReceivedListener",
    "Operation",
    "OperationKind",
    "OperationOutcome",
    "OperationFuture",
    "OperationTimeoutError",
    "read_future",
    "write_future",
    "lock_future",
    "NdefMessageToObjectConverter",
    "ObjectToNdefMessageConverter",
    "NdefMessageToStringConverter",
    "StringToNdefMessageConverter",
    "JsonToObjectConverter",
    "ObjectToJsonConverter",
    "IdentityConverters",
    "TagReadListener",
    "TagReadFailedListener",
    "TagWrittenListener",
    "TagWriteFailedListener",
]
