"""The ``await``-native surface over MORENA's listener machinery.

The paper's API is asynchronous by construction — every tag operation
takes a listener pair — and PR 1 multiplexed those logical event loops
onto a reactor. This module adds the third idiom: coroutines.

::

    async def checkout(ref):
        cart = await ref.aio.read()
        cart.paid = True
        await ref.aio.write(cart)

    async def kiosk(discoverer):
        async for ref in discoverer.stream():
            print("tag in field:", await ref.aio.read())

Everything here is a *thin adapter*: ``ref.aio.read()`` enqueues the
exact same :class:`~repro.core.operations.Operation` a listener-style
``ref.read()`` would — same queue, same coalescing, same per-port
transaction batching, same retry/timeout behaviour — and merely awaits
its :class:`~repro.core.futures.OperationFuture`. The adapters therefore
work identically whether the device's reactor runs in ``"threaded"`` or
``"asyncio"`` mode, and whether the awaiting coroutine lives on the
asyncio reactor's own loop or on any other event loop (the bridge in
``OperationFuture.__await__`` is thread-safe in both directions).

Nothing in the middleware ever *requires* this module: the listener API
remains primary (Android fidelity), coroutines are a distribution-policy
choice in the RAFDA sense — see DESIGN.md decision 14.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Optional, Tuple, TYPE_CHECKING

from repro.core.futures import (
    OperationFuture,
    _failure_error,
    format_future,
    lock_future,
    read_future,
    read_raw_future,
    write_future,
    write_raw_future,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.discovery import TagDiscoverer
    from repro.core.reference import TagReference
    from repro.ndef.message import NdefMessage
    from repro.things.thing import Thing

_ALL_EVENTS = ("detected", "redetected", "empty")


class AsyncTagReference:
    """Coroutine view of a :class:`~repro.core.reference.TagReference`.

    Obtained via ``ref.aio``; holds no state of its own beyond the
    reference, so it is safe to create on every use.
    """

    __slots__ = ("_reference",)

    def __init__(self, reference: "TagReference") -> None:
        self._reference = reference

    @property
    def reference(self) -> "TagReference":
        return self._reference

    async def read(self, timeout: Optional[float] = None) -> Any:
        """``await ref.aio.read()`` — the converted tag content."""
        return await read_future(self._reference, timeout=timeout)

    async def write(
        self,
        obj: Any,
        timeout: Optional[float] = None,
        coalesce: Optional[bool] = None,
    ) -> "TagReference":
        """``await ref.aio.write(obj)`` — resolves once physically landed."""
        return await write_future(
            self._reference, obj, timeout=timeout, coalesce=coalesce
        )

    async def read_raw(self, timeout: Optional[float] = None) -> "NdefMessage":
        """Raw read; resolves to the refreshed cached NDEF message."""
        return await read_raw_future(self._reference, timeout=timeout)

    async def write_raw(
        self,
        message: "NdefMessage",
        timeout: Optional[float] = None,
        merge_key: Optional[str] = None,
        message_factory: Optional[Any] = None,
    ) -> "TagReference":
        """Raw write of a ready-made NDEF message.

        ``merge_key``/``message_factory`` are the protocol merge hook,
        identical to the callback surface -- so lease renewals issued
        through ``await ref.aio.write_raw(...)`` coalesce under the
        protocol's own rule, not the generic tail merge.
        """
        return await write_raw_future(
            self._reference,
            message,
            timeout=timeout,
            merge_key=merge_key,
            message_factory=message_factory,
        )

    async def make_read_only(self, timeout: Optional[float] = None) -> "TagReference":
        return await lock_future(self._reference, timeout=timeout)

    async def format(self, timeout: Optional[float] = None) -> "TagReference":
        return await format_future(self._reference, timeout=timeout)

    def __repr__(self) -> str:
        return f"AsyncTagReference({self._reference!r})"


class AsyncThing:
    """Coroutine view of a bound :class:`~repro.things.thing.Thing`.

    Obtained via ``thing.aio``. ``save``/``refresh`` keep the exact
    semantics of ``save_async``/``refresh_async`` (coalescing included);
    only the completion style changes.
    """

    __slots__ = ("_thing",)

    def __init__(self, thing: "Thing") -> None:
        self._thing = thing

    async def save(
        self, timeout: Optional[float] = None, coalesce: bool = True
    ) -> "Thing":
        """``await thing.aio.save()`` — resolves to the thing once stored."""
        future = OperationFuture()
        future.operation = self._thing.save_async(
            on_saved=lambda thing: future._succeed(thing),  # noqa: SLF001
            on_failed=lambda: future._fail(_failure_error(future)),  # noqa: SLF001
            timeout=timeout,
            coalesce=coalesce,
        )
        return await future

    async def refresh(self, timeout: Optional[float] = None) -> "Thing":
        """``await thing.aio.refresh()`` — re-read the tag into the thing."""
        future = OperationFuture()
        future.operation = self._thing.refresh_async(
            on_refreshed=lambda thing: future._succeed(thing),  # noqa: SLF001
            on_failed=lambda: future._fail(_failure_error(future)),  # noqa: SLF001
            timeout=timeout,
        )
        return await future

    def __repr__(self) -> str:
        return f"AsyncThing({self._thing!r})"


class TagStream:
    """``async for reference in stream`` over a discoverer's detections.

    Detections are pushed from the activity's main thread into an
    ``asyncio.Queue`` on the consuming loop via
    ``call_soon_threadsafe``; the consumer iterates at its own pace.
    The buffer is bounded (``max_buffer``): when a burst outruns the
    consumer, the *oldest* queued detection is dropped — for
    connectivity events the newest sighting is the one that matters,
    and a reference seen again supersedes its earlier sighting.

    The stream subscribes on ``__aenter__``/first ``__anext__`` and
    unsubscribes on :meth:`close` (or ``async with``). Use the
    module-level :func:`tag_stream` or ``discoverer.stream()``.
    """

    def __init__(
        self,
        discoverer: "TagDiscoverer",
        events: Optional[Tuple[str, ...]] = None,
        max_buffer: int = 1024,
    ) -> None:
        self._discoverer = discoverer
        self._events = tuple(events) if events is not None else _ALL_EVENTS
        self._max_buffer = max(1, max_buffer)
        self._queue: Optional["asyncio.Queue[TagReference]"] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        self._dropped = 0
        # One stable bound-method object: accessing self._on_detection
        # twice yields distinct objects, and unsubscription is identity-based.
        self._listener = self._on_detection

    # -- subscription ----------------------------------------------------------------

    def _ensure_subscribed(self) -> None:
        if self._queue is not None or self._closed:
            return
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._discoverer.add_detection_listener(self._listener)

    def _on_detection(self, event: str, reference: "TagReference") -> None:
        # Main-thread side: hand off to the consuming loop, never block.
        loop, queue = self._loop, self._queue
        if loop is None or queue is None or self._closed or loop.is_closed():
            return
        if event not in self._events:
            return
        try:
            loop.call_soon_threadsafe(self._push, reference)
        except RuntimeError:
            pass  # consuming loop shut down mid-detection

    def _push(self, reference: "TagReference") -> None:
        queue = self._queue
        if queue is None or self._closed:
            return
        while queue.qsize() >= self._max_buffer:
            queue.get_nowait()  # shed the oldest sighting
            self._dropped += 1
            # Roll the shed up to the discoverer's monotonic counter so
            # fleet telemetry still sees it after this stream is gone.
            self._discoverer._count_stream_drop(1)  # noqa: SLF001 - by-design tap
        queue.put_nowait(reference)

    @property
    def dropped(self) -> int:
        """Detections shed because the buffer was full."""
        return self._dropped

    def close(self) -> None:
        """Unsubscribe; a pending ``__anext__`` ends with StopAsyncIteration."""
        if self._closed:
            return
        self._closed = True
        self._discoverer.remove_detection_listener(self._listener)
        if self._loop is not None and self._queue is not None:
            if not self._loop.is_closed():
                try:
                    self._loop.call_soon_threadsafe(self._push_sentinel)
                except RuntimeError:
                    pass

    def _push_sentinel(self) -> None:
        if self._queue is not None:
            self._queue.put_nowait(_STREAM_END)

    # -- async iteration ---------------------------------------------------------------

    def __aiter__(self) -> AsyncIterator["TagReference"]:
        return self

    async def __anext__(self) -> "TagReference":
        self._ensure_subscribed()
        if self._closed and (self._queue is None or self._queue.empty()):
            raise StopAsyncIteration
        item = await self._queue.get()
        if item is _STREAM_END:
            raise StopAsyncIteration
        return item

    async def __aenter__(self) -> "TagStream":
        self._ensure_subscribed()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        self.close()


_STREAM_END: Any = object()


def tag_stream(
    discoverer: "TagDiscoverer",
    events: Optional[Tuple[str, ...]] = None,
    max_buffer: int = 1024,
) -> TagStream:
    """Detections of ``discoverer`` as an async iterator of references."""
    return TagStream(discoverer, events=events, max_buffer=max_buffer)


def run_on_reactor(reactor: Any, coroutine: Any) -> "asyncio.Future":
    """Run ``coroutine`` on an asyncio-mode reactor's loop.

    Returns a ``concurrent.futures.Future``-compatible handle (from
    ``asyncio.run_coroutine_threadsafe``); call ``.result(timeout)``
    from any non-loop thread, e.g. a test harness. Raises ``TypeError``
    for a threaded reactor — there is no loop to run on.
    """
    loop = getattr(reactor, "loop", None)
    if loop is None:
        # Touch-start the reactor so the loop exists, then retry once.
        ensure = getattr(reactor, "_ensure_started_locked", None)
        cond = getattr(reactor, "_cond", None)
        if ensure is not None and cond is not None and hasattr(reactor, "_loop"):
            with cond:
                ensure()
            loop = reactor.loop
    if loop is None:
        raise TypeError(
            f"{reactor!r} has no event loop; run_on_reactor needs mode='asyncio'"
        )
    return asyncio.run_coroutine_threadsafe(coroutine, loop)
