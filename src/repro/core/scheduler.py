"""The reactor: multiplexes many logical event loops onto few threads.

The paper gives every tag reference "its own thread of control"
(section 3.2). That is a statement about *logical* concurrency — each
reference processes its queue independently, so a tag that is out of
range never head-of-line blocks a tag that is present. The seed
reproduced it literally with one OS thread per reference, which caps a
process at a few hundred live references and burns CPU in polling
waits. Following RAFDA's separation of the logical object model from
the physical distribution policy (see PAPERS.md and DESIGN.md decision
7), this module keeps the per-reference event-loop *semantics* while
multiplexing execution onto a bounded worker pool:

* every logical loop is a :class:`ReactorTask` — a ``step`` callable
  that runs one scheduling quantum and reports when it next wants to
  run;
* a task is **serial**: the reactor never runs the same task on two
  workers at once (wakeups arriving mid-step set a rerun flag), so each
  reference keeps its per-tag FIFO guarantees without extra locking;
* tasks never sleep on a worker — a task waiting for a retry interval,
  an operation deadline, or a tag to reappear *returns*, freeing its
  worker, and is re-queued by the deadline heap or an external
  :meth:`ReactorTask.wake` (field events, enqueues, clock advances);
* the pool is bounded (default ``min(32, 4 × cores)``) and lazily
  grown, so a thousand idle references cost zero threads and zero CPU.

Time handling is fully event-driven. With a real clock the timer waits
exactly until the earliest deadline; with a :class:`~repro.clock.
ManualClock` the reactor subscribes to advance notifications, so
simulated time only needs to move for deadlines to fire. Clocks that
support neither fall back to a coarse real-time poll.

Two backends implement the same contract. ``Reactor(mode="threaded")``
(the default) is the worker pool described above. ``Reactor(
mode="asyncio")`` — :class:`AsyncioReactor` — runs every task's steps as
callbacks on one ``asyncio`` event loop instead: no worker threads, no
timer thread, and the deadline heap is serviced by a single
``loop.call_later`` armed at the earliest deadline (or by ``ManualClock``
advance notifications, exactly like the threaded timer). A process can
hold hundreds of thousands of idle references in asyncio mode because an
idle task is just a small Python object — no stack, no lock-guarded
hand-off, no thread wakeups. :class:`ReactorTask` is identical over both
backends; only the machinery that runs steps differs (DESIGN.md
decision 14).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import os
import threading
import traceback
from collections import deque
from typing import Callable, Deque, Dict, Hashable, List, Optional, Tuple

from repro.clock import Clock, SystemClock

# A task step runs one quantum and returns when it next wants to run:
# ``None`` for "idle until woken externally", or an absolute clock time
# ("now or earlier" means immediately).
StepFn = Callable[[], Optional[float]]

# Fallback real-time slice for exotic clocks that are neither a
# SystemClock nor advance-notifying; never used with the shipped clocks.
_FALLBACK_POLL_SECONDS = 0.01

_IDLE = 0  # not scheduled; runs only when woken
_QUEUED = 1  # in the ready queue, a worker will pick it up
_RUNNING = 2  # a worker is executing its step right now

_REACTOR_MODES = ("threaded", "asyncio")


def default_worker_count() -> int:
    """The default pool bound: ``min(32, 4 × cores)``, at least 1."""
    return max(1, min(32, 4 * (os.cpu_count() or 1)))


class ReactorTask:
    """One logical event loop registered with a :class:`Reactor`.

    The reactor guarantees the ``step`` callable is never executed
    concurrently with itself, and that a :meth:`wake` arriving while a
    step runs leads to another step afterwards (no lost wakeups).
    """

    __slots__ = ("name", "_reactor", "_step", "_state", "_rerun", "_cancelled")

    def __init__(self, reactor: "Reactor", step: StepFn, name: str) -> None:
        self.name = name
        self._reactor = reactor
        self._step = step
        self._state = _IDLE
        self._rerun = False
        self._cancelled = False

    def wake(self) -> None:
        """Schedule a step as soon as a worker is free (coalescing)."""
        self._reactor._wake(self)

    def schedule_at(self, when: float) -> None:
        """Adopt ``when`` (absolute clock time) as a deadline for this task.

        Pushes a timer-heap entry without spinning up a worker -- the
        cheap alternative to :meth:`wake` when nothing needs to run
        *now* but the task's earliest deadline may have moved (e.g. a
        queued write was merged into and inherited a new timeout).
        Entries are never removed early: a stale earlier entry just
        causes one spurious step that re-evaluates and re-schedules.
        """
        with self._reactor._cond:
            if self._cancelled or self._reactor._stopped:
                return
            self._reactor._schedule_at_locked(self, when)

    def cancel(self) -> None:
        """Permanently deregister this task.

        Future wakes become no-ops and stale deadline-heap entries are
        ignored when they fire. A step already executing finishes (its
        own stop flag governs what it does), but no further step runs.
        Unlike :meth:`wake`, cancelling never spins up reactor threads —
        tearing down a task on a cold reactor stays thread-free.
        """
        with self._reactor._cond:
            self._cancelled = True

    def __repr__(self) -> str:
        return f"ReactorTask({self.name!r})"


class Reactor:
    """A bounded worker pool driving many serial tasks by deadline.

    One reactor per simulated device (see ``AndroidDevice.reactor``);
    all of the device's tag references share its workers. Constructing a
    reactor is cheap — no threads exist until the first task is woken.

    ``mode`` selects the backend: ``"threaded"`` (this class, the
    default) or ``"asyncio"`` (:class:`AsyncioReactor` — the constructor
    dispatches, so ``Reactor(mode="asyncio")`` *is* an
    ``AsyncioReactor``). Both honour the full :class:`ReactorTask`
    contract; everything built on tasks — references, the per-port
    transaction scheduler, lease keepers — runs unchanged on either.
    """

    def __new__(
        cls,
        clock: Optional[Clock] = None,
        max_workers: Optional[int] = None,
        name: str = "reactor",
        mode: str = "threaded",
    ) -> "Reactor":
        if mode not in _REACTOR_MODES:
            raise ValueError(
                f"unknown reactor mode {mode!r}; expected one of {_REACTOR_MODES}"
            )
        if cls is Reactor and mode == "asyncio":
            return super().__new__(AsyncioReactor)
        return super().__new__(cls)

    def __init__(
        self,
        clock: Optional[Clock] = None,
        max_workers: Optional[int] = None,
        name: str = "reactor",
        mode: str = "threaded",
    ) -> None:
        self.name = name
        self.mode = mode
        self._clock = clock if clock is not None else SystemClock()
        self._max_workers = max(
            1, max_workers if max_workers is not None else default_worker_count()
        )
        self._cond = threading.Condition()
        self._ready: Deque[ReactorTask] = deque()
        self._timers: List[Tuple[float, int, ReactorTask]] = []  # deadline heap
        self._seq = itertools.count()
        self._workers: List[threading.Thread] = []
        self._idle_workers = 0
        self._timer_thread: Optional[threading.Thread] = None
        self._started = False
        self._stopped = False
        self._steps = 0
        # How deadlines are waited for: an advance-notifying clock wakes
        # us, a real clock gets an exact timed wait, anything else polls.
        self._clock_notifies = hasattr(self._clock, "add_listener")
        self._clock_is_realtime = isinstance(self._clock, SystemClock)

    # -- introspection ---------------------------------------------------------

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def thread_count(self) -> int:
        """Live reactor threads (workers + timer), for tests/benches."""
        with self._cond:
            count = sum(1 for worker in self._workers if worker.is_alive())
            if self._timer_thread is not None and self._timer_thread.is_alive():
                count += 1
            return count

    @property
    def steps_executed(self) -> int:
        with self._cond:
            return self._steps

    @property
    def owns_current_thread(self) -> bool:
        """True when called from one of this reactor's workers or its
        timer thread -- the affinity-sanitizer's middleware test."""
        current = threading.current_thread()
        with self._cond:
            return current is self._timer_thread or any(
                current is worker for worker in self._workers
            )

    @property
    def is_stopped(self) -> bool:
        with self._cond:
            return self._stopped

    def __repr__(self) -> str:
        return (
            f"Reactor({self.name!r}, workers={len(self._workers)}/"
            f"{self._max_workers})"
        )

    # -- task registration ------------------------------------------------------

    def register(self, step: StepFn, name: str = "task") -> ReactorTask:
        """Create a serial task; it stays idle until its first wake."""
        return ReactorTask(self, step, name)

    # -- lifecycle ----------------------------------------------------------------

    def stop(self, join_timeout: float = 2.0) -> None:
        """Stop workers and timer; queued tasks are dropped."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            self._ready.clear()
            self._timers.clear()
            self._cond.notify_all()
            threads = list(self._workers)
            if self._timer_thread is not None:
                threads.append(self._timer_thread)
        if self._clock_notifies and self._started:
            self._clock.remove_listener(self._on_clock_advance)
        current = threading.current_thread()
        for thread in threads:
            if thread is not current:
                thread.join(join_timeout)

    # -- internals: scheduling --------------------------------------------------

    def _wake(self, task: ReactorTask) -> None:
        with self._cond:
            if self._stopped:
                return
            self._wake_locked(task)

    def _wake_locked(self, task: ReactorTask) -> None:
        if task._cancelled:
            return
        if task._state == _IDLE:
            task._state = _QUEUED
            self._ready.append(task)
            self._ensure_started_locked()
            self._ensure_worker_locked()
            self._cond.notify_all()
        elif task._state == _RUNNING:
            task._rerun = True
        # _QUEUED: already scheduled, the wake coalesces.

    def _schedule_at_locked(self, task: ReactorTask, when: float) -> None:
        heapq.heappush(self._timers, (when, next(self._seq), task))
        self._ensure_started_locked()
        self._cond.notify_all()  # the timer thread re-evaluates its wait

    def _ensure_started_locked(self) -> None:
        if self._started or self._stopped:
            return
        self._started = True
        if self._clock_notifies:
            self._clock.add_listener(self._on_clock_advance)
        self._timer_thread = threading.Thread(
            target=self._timer_loop, name=f"{self.name}-timer", daemon=True
        )
        self._timer_thread.start()

    def _ensure_worker_locked(self) -> None:
        if self._idle_workers == 0 and len(self._workers) < self._max_workers:
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"{self.name}-worker-{len(self._workers)}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()

    def _on_clock_advance(self) -> None:
        with self._cond:
            self._cond.notify_all()

    # -- internals: the pool -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._ready and not self._stopped:
                    self._idle_workers += 1
                    self._cond.wait()
                    self._idle_workers -= 1
                if self._stopped:
                    return
                task = self._ready.popleft()
                if task._cancelled:
                    task._state = _IDLE
                    continue
                task._state = _RUNNING
                task._rerun = False
                self._steps += 1
            try:
                when = task._step()
            except BaseException:  # noqa: BLE001 - a task must not kill the pool
                traceback.print_exc()
                when = None
            with self._cond:
                if self._stopped:
                    return
                task._state = _IDLE
                if task._cancelled:
                    continue
                if task._rerun or (when is not None and when <= self._clock.now()):
                    self._wake_locked(task)
                elif when is not None:
                    self._schedule_at_locked(task, when)

    def _timer_loop(self) -> None:
        while True:
            with self._cond:
                if self._stopped:
                    return
                now = self._clock.now()
                while self._timers and self._timers[0][0] <= now:
                    _due, _seq, task = heapq.heappop(self._timers)
                    self._wake_locked(task)
                if not self._timers:
                    self._cond.wait()
                elif self._clock_notifies:
                    # A ManualClock advance (or a new earlier deadline)
                    # notifies us; no real time needs to pass.
                    self._cond.wait()
                elif self._clock_is_realtime:
                    self._cond.wait(max(self._timers[0][0] - now, 0.0))
                else:
                    self._cond.wait(_FALLBACK_POLL_SECONDS)


class AsyncioReactor(Reactor):
    """The coroutine backend: every task steps on one ``asyncio`` loop.

    Selected with ``Reactor(mode="asyncio")``. The public surface is the
    base class's — ``register`` hands out ordinary :class:`ReactorTask`
    objects and ``wake`` / ``schedule_at`` / ``cancel`` behave
    identically — but execution happens as plain callbacks on a single
    event loop running on one daemon thread:

    * a wake posts a ``call_soon`` that pops one ready task and runs its
      step inline (steps are short, non-blocking quanta by contract —
      the same contract the worker pool relies on); serial-per-task and
      rerun-on-mid-step-wake come from the shared state machine;
    * the deadline heap is serviced by **one** ``loop.call_later``
      armed at the earliest deadline (real clock), by ``ManualClock``
      advance notifications, or by a coarse poll for exotic clocks —
      mirroring the threaded timer thread without owning a thread;
    * an idle task costs nothing: no handle, no timer, no stack. This
      is what lets one process hold 100k idle references
      (``benchmarks/test_bench_async.py``).

    The loop thread is the only thread the backend ever creates, so
    ``thread_count`` is at most 1 regardless of task count.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        max_workers: Optional[int] = None,
        name: str = "reactor",
        mode: str = "asyncio",
    ) -> None:
        super().__init__(clock, max_workers, name, mode="asyncio")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        # Loop-thread-only: the single armed call_later (real clocks).
        self._timer_handle: Optional[asyncio.TimerHandle] = None
        # Guarded by _cond: deadline the heap is currently serviced up
        # to; a schedule_at later than this needs no extra service pass.
        self._timer_deadline: Optional[float] = None

    # -- introspection -----------------------------------------------------------

    @property
    def thread_count(self) -> int:
        with self._cond:
            thread = self._loop_thread
            return 1 if thread is not None and thread.is_alive() else 0

    @property
    def owns_current_thread(self) -> bool:
        with self._cond:
            return threading.current_thread() is self._loop_thread

    def __repr__(self) -> str:
        return f"AsyncioReactor({self.name!r})"

    @property
    def loop(self) -> Optional[asyncio.AbstractEventLoop]:
        """The backing event loop (``None`` until the first wake)."""
        with self._cond:
            return self._loop

    # -- lifecycle ----------------------------------------------------------------

    def stop(self, join_timeout: float = 2.0) -> None:
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            self._ready.clear()
            self._timers.clear()
            self._cond.notify_all()
            loop = self._loop
            thread = self._loop_thread
        if self._clock_notifies and self._started:
            self._clock.remove_listener(self._on_clock_advance)
        if loop is not None:
            try:
                loop.call_soon_threadsafe(loop.stop)
            except RuntimeError:
                pass  # already closed
            if thread is not None and thread is not threading.current_thread():
                thread.join(join_timeout)

    # -- internals: scheduling ----------------------------------------------------

    def _ensure_started_locked(self) -> None:
        if self._started or self._stopped:
            return
        self._started = True
        if self._clock_notifies:
            self._clock.add_listener(self._on_clock_advance)
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop_runner, name=f"{self.name}-aioloop", daemon=True
        )
        self._loop_thread.start()

    def _loop_runner(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def _call_on_loop(self, fn: Callable[[], None]) -> None:
        """Post ``fn`` to the loop thread (thread-safe, shutdown-tolerant)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        if threading.current_thread() is self._loop_thread:
            loop.call_soon(fn)
            return
        try:
            loop.call_soon_threadsafe(fn)
        except RuntimeError:
            pass  # loop closed between the check and the call

    def _wake_locked(self, task: ReactorTask) -> None:
        if task._cancelled:
            return
        if task._state == _IDLE:
            task._state = _QUEUED
            self._ready.append(task)
            self._ensure_started_locked()
            self._call_on_loop(self._run_one)
        elif task._state == _RUNNING:
            task._rerun = True
        # _QUEUED: already scheduled, the wake coalesces.

    def _schedule_at_locked(self, task: ReactorTask, when: float) -> None:
        heapq.heappush(self._timers, (when, next(self._seq), task))
        self._ensure_started_locked()
        if self._timer_deadline is None or when < self._timer_deadline:
            self._call_on_loop(self._service_timers)

    def _on_clock_advance(self) -> None:
        self._call_on_loop(self._service_timers)

    # -- internals: the loop -------------------------------------------------------

    def _run_one(self) -> None:
        """Pop one ready task and run its step (loop thread only).

        Exactly one ``_run_one`` callback is posted per append to
        ``_ready``, so one-task-per-callback drains the queue while
        letting loop timers and user coroutines interleave between
        steps.
        """
        with self._cond:
            if self._stopped or not self._ready:
                return
            task = self._ready.popleft()
            if task._cancelled:
                task._state = _IDLE
                return
            task._state = _RUNNING
            task._rerun = False
            self._steps += 1
        try:
            when = task._step()
        except BaseException:  # noqa: BLE001 - a task must not kill the loop
            traceback.print_exc()
            when = None
        with self._cond:
            if self._stopped:
                return
            task._state = _IDLE
            if task._cancelled:
                return
            if task._rerun or (when is not None and when <= self._clock.now()):
                self._wake_locked(task)
            elif when is not None:
                self._schedule_at_locked(task, when)

    def _service_timers(self) -> None:
        """Fire due deadlines, re-arm the single timer (loop thread only)."""
        with self._cond:
            if self._stopped:
                return
            now = self._clock.now()
            while self._timers and self._timers[0][0] <= now:
                _due, _seq, task = heapq.heappop(self._timers)
                self._wake_locked(task)
            deadline = self._timers[0][0] if self._timers else None
            self._timer_deadline = deadline
        if self._timer_handle is not None:
            self._timer_handle.cancel()
            self._timer_handle = None
        if deadline is None or self._clock_notifies:
            # An advance-notifying clock re-services on the next advance;
            # nothing to arm — simulated time never passes on its own.
            return
        if self._clock_is_realtime:
            delay = max(deadline - now, 0.0)
        else:
            delay = _FALLBACK_POLL_SECONDS
        self._timer_handle = self._loop.call_later(delay, self._service_timers)


class PortReadyQueue:
    """Per-port ready-queue of keys (tags) with runnable batched work.

    The per-port transaction scheduler (:mod:`repro.radio.txscheduler`)
    runs as **one** serial :class:`ReactorTask`; this queue is how many
    concurrent producers (references enqueueing work, field events) hand
    that single task the set of tags worth draining, so the reactor can
    give a whole per-port batch to one worker instead of one wakeup per
    operation.

    Marks coalesce (a tag is ready once, however many operations piled
    up) and are **generation-counted**: :meth:`snapshot` returns each
    key with the generation observed, and :meth:`clear` only removes the
    key if no :meth:`mark` landed in between. That closes the race where
    a drain finds a tag idle, a reference enqueues concurrently, and a
    plain clear would eat the fresh mark — the wake that follows the
    mark would then find an empty queue and the work would sleep until
    its timeout. Insertion order is preserved, so tags are drained in
    the order they became ready.

    For the fair cross-tag policies the queue additionally hands out
    **bounded per-tag quanta instead of whole-port batches**: a rotated
    :meth:`snapshot` starts each service round one key past the previous
    round's head, so no tag is structurally first every round, and
    :meth:`has_other` lets a drain loop ask mid-quantum whether any
    co-present tag is waiting (if none is, the quantum is renewed in
    place and the open session survives — fairness never taxes a tag
    that is alone in the field).
    """

    __slots__ = ("_lock", "_generations", "_cursor")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._generations: Dict[Hashable, int] = {}
        self._cursor: Optional[Hashable] = None  # next round starts here

    def mark(self, key: Hashable) -> None:
        """Flag ``key`` as having runnable work (coalescing)."""
        with self._lock:
            self._generations[key] = self._generations.get(key, 0) + 1

    def snapshot(self, rotate: bool = False) -> List[Tuple[Hashable, int]]:
        """The marked keys in ready order, each with its generation.

        With ``rotate=True`` the list starts at the rotation cursor
        (round-robin across calls): successive rotated snapshots begin
        one key later, so repeated service rounds do not always grant
        first service to the same key. A vanished cursor key simply
        falls back to insertion order.
        """
        with self._lock:
            items = list(self._generations.items())
            if rotate and items:
                if len(items) > 1 and self._cursor in self._generations:
                    keys = [key for key, _ in items]
                    start = keys.index(self._cursor)
                    items = items[start:] + items[:start]
                self._cursor = items[1][0] if len(items) > 1 else items[0][0]
            return items

    def has_other(self, key: Hashable) -> bool:
        """Whether any key besides ``key`` is currently marked."""
        with self._lock:
            for marked in self._generations:
                if marked != key:
                    return True
            return False

    def clear(self, key: Hashable, generation: int) -> bool:
        """Unmark ``key`` unless it was re-marked since the snapshot.

        Returns whether the key was removed; ``False`` means a producer
        marked it again and the caller should drain it once more.
        """
        with self._lock:
            if self._generations.get(key) == generation:
                del self._generations[key]
                return True
            return False

    def discard(self, key: Hashable) -> None:
        """Unconditionally unmark ``key`` (tag left the field)."""
        with self._lock:
            self._generations.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._generations)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._generations
