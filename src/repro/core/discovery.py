"""``TagDiscoverer``: connectivity tracking for RFID tags.

Paper section 3.1. A discoverer is instantiated with the activity whose
NFC events it captures, the application's MIME type, and the two data
converters. From then on it turns raw platform intents into tag-reference
callbacks:

* ``on_tag_detected(ref)`` -- the tag was never seen before by this
  activity (a fresh reference was just created);
* ``on_tag_redetected(ref)`` -- the tag was seen before (its unique
  reference is reused, its queued operations get another chance);
* ``check_condition(ref)`` -- optional fine-grained filter (section 3.4);
  only when it returns ``True`` are the two callbacks above invoked. A
  typical pattern filters on the reference's cached data. Tags whose data
  cannot be converted by the read converter are disregarded, like tags of
  a foreign MIME type.

Subclass and override the callbacks; all of them run on the activity's
main thread.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.core.converters import (
    NdefMessageToObjectConverter,
    ObjectToNdefMessageConverter,
)
from repro.core.nfc_activity import NFCActivity
from repro.core.reference import TagReference
from repro.errors import ConverterError
from repro.ndef.mime import normalize_mime_type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.nfc.tech import Tag


class TagDiscoverer:
    """Turns NFC intents into tag-reference detection callbacks."""

    def __init__(
        self,
        activity: NFCActivity,
        mime_type: str,
        read_converter: NdefMessageToObjectConverter,
        write_converter: ObjectToNdefMessageConverter,
        accept_empty: bool = False,
        default_timeout: Optional[float] = None,
        threaded: Optional[bool] = None,
    ) -> None:
        if not isinstance(activity, NFCActivity):
            raise TypeError("TagDiscoverer requires an NFCActivity")
        self._activity = activity
        self.mime_type = normalize_mime_type(mime_type)
        self.read_converter = read_converter
        self.write_converter = write_converter
        self.accept_empty = accept_empty
        self._default_timeout = default_timeout
        # Scheduling mode for references this discoverer creates: None
        # means the default (the device's shared reactor); True selects
        # the legacy thread-per-reference mode.
        self._threaded = threaded
        # Non-overridable observers ("detected"|"redetected"|"empty",
        # reference) invoked after the subclass callbacks — the feed for
        # async discovery streams and telemetry taps.
        self._detection_listeners: List[Callable[[str, TagReference], None]] = []
        # Monotonic total of detections shed by this discoverer's
        # bounded stream() buffers — survives stream teardown, so
        # overflow is accounted fleet-side, never silent.
        self._stream_dropped = 0
        activity._register_discoverer(self)  # noqa: SLF001 - by-design handshake

    @property
    def activity(self) -> NFCActivity:
        return self._activity

    # -- detection observers ---------------------------------------------------------

    def add_detection_listener(
        self, listener: Callable[[str, TagReference], None]
    ) -> None:
        """Observe every detection: ``listener(event, reference)``.

        ``event`` is ``"detected"``, ``"redetected"`` or ``"empty"``.
        Listeners run on the main thread after the subclass callback and
        are independent of subclassing — this is the hook the async
        :meth:`stream` adapter rides on.
        """
        self._detection_listeners.append(listener)

    def remove_detection_listener(
        self, listener: Callable[[str, TagReference], None]
    ) -> None:
        self._detection_listeners = [
            existing for existing in self._detection_listeners
            if existing is not listener
        ]

    def _notify_detection(self, event: str, reference: TagReference) -> None:
        for listener in list(self._detection_listeners):
            listener(event, reference)

    @property
    def stream_dropped(self) -> int:
        """Detections shed across all of this discoverer's streams.

        Monotonic: a stream reports each shed sighting as it happens,
        so closing (or leaking) a stream never erases its drop count.
        """
        return self._stream_dropped

    def _count_stream_drop(self, count: int = 1) -> None:
        # Called from stream buffers on their consuming loop's thread;
        # int += is atomic enough for a monotonic telemetry counter.
        self._stream_dropped += count

    def stream(self, events: Optional[tuple] = None, max_buffer: int = 1024):
        """Detections as an async iterator: ``async for ref in d.stream()``.

        Convenience wrapper over :func:`repro.core.aio.tag_stream`; see
        there for buffering semantics. ``events`` filters which
        detection kinds are yielded (default: all three).
        """
        from repro.core.aio import tag_stream

        return tag_stream(self, events=events, max_buffer=max_buffer)

    # -- overridable callbacks (all run on the main thread) -------------------------

    def on_tag_detected(self, reference: TagReference) -> None:
        """A tag of our MIME type was scanned for the first time."""

    def on_tag_redetected(self, reference: TagReference) -> None:
        """A previously seen tag was scanned again."""

    def on_empty_tag_detected(self, reference: TagReference) -> None:
        """An empty (or factory-blank) tag was scanned.

        Only invoked when the discoverer was created with
        ``accept_empty=True``; the thing layer uses this to drive its
        ``when_discovered(EmptyRecord)`` callback.
        """

    def check_condition(self, reference: TagReference) -> bool:
        """Fine-grained filter applied before the detection callbacks."""
        return True

    # -- intent plumbing (called by NFCActivity on the main thread) --------------------

    def _handle_tag(self, mime_type: str, tag: "Tag") -> None:
        if mime_type != self.mime_type:
            return
        reference, is_new = self._activity.reference_factory.get_or_create(
            tag,
            self.read_converter,
            self.write_converter,
            default_timeout=self._default_timeout,
            threaded=self._threaded,
        )
        # Refresh the cache from the tag content the platform already read
        # during dispatch; a tag whose data our converter rejects is
        # disregarded, exactly like one with a foreign MIME type.
        try:
            self._prime_cache(reference)
        except ConverterError:
            return
        reference.notify_redetected()
        if not self.check_condition(reference):
            return
        if is_new:
            self.on_tag_detected(reference)
            self._notify_detection("detected", reference)
        else:
            self.on_tag_redetected(reference)
            self._notify_detection("redetected", reference)

    def _handle_empty_tag(self, tag: "Tag") -> None:
        # TECH_DISCOVERED is a fall-through action: a tag holding *foreign*
        # data (another app's MIME type) also lands here. Only genuinely
        # empty or factory-blank tags count as empty.
        if tag.simulated.is_ndef_formatted and not tag.simulated.is_empty:
            return
        reference, _is_new = self._activity.reference_factory.get_or_create(
            tag,
            self.read_converter,
            self.write_converter,
            default_timeout=self._default_timeout,
            threaded=self._threaded,
        )
        reference.notify_redetected()
        self.on_empty_tag_detected(reference)
        self._notify_detection("empty", reference)

    def _prime_cache(self, reference: TagReference) -> None:
        simulated = reference.tag.simulated
        try:
            message = simulated.read_ndef()
        except Exception:  # noqa: BLE001 - unreadable now; async reads will retry
            return
        converted = self.read_converter.convert(message)  # may raise ConverterError
        reference._update_cache(converted, message)  # noqa: SLF001 - cache prime
