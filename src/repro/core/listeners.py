"""Listener interfaces for the asynchronous tag-reference operations.

The paper deliberately separates success and failure listeners into two
first-class objects (section 2.2): different success listeners commonly
share a single failure listener, and separate objects avoid duplicating
the unused half of a combined interface.

In this Python rendition a listener can be either

* an instance of one of the classes below with ``signal`` overridden
  (the faithful, Java-flavoured spelling), or
* any plain callable (the Pythonic spelling).

``as_callback`` normalizes both; ``None`` becomes a no-op, matching the
paper's overloads that omit the failure listener.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union


class Listener:
    """Base for the Java-flavoured listener classes."""

    def signal(self, *args: Any) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must override signal() or be passed as a callable"
        )

    def __call__(self, *args: Any) -> None:
        self.signal(*args)


class TagReadListener(Listener):
    """Invoked with the tag reference after a successful asynchronous read."""


class TagReadFailedListener(Listener):
    """Invoked with the tag reference when an asynchronous read times out."""


class TagWrittenListener(Listener):
    """Invoked with the tag reference after a successful asynchronous write."""


class TagWriteFailedListener(Listener):
    """Invoked with the tag reference when an asynchronous write times out."""


class TagLockedListener(Listener):
    """Invoked with the tag reference after a successful make-read-only."""


class TagLockFailedListener(Listener):
    """Invoked with the tag reference when a make-read-only times out."""


class BeamSuccessListener(Listener):
    """Invoked (no arguments) when an asynchronous beam was delivered."""


class BeamFailedListener(Listener):
    """Invoked (no arguments) when an asynchronous beam timed out."""


ListenerLike = Optional[Union[Listener, Callable[..., None]]]


def as_callback(listener: ListenerLike) -> Callable[..., None]:
    """Normalize a listener-or-callable-or-None into a callable."""
    if listener is None:
        return _noop
    if isinstance(listener, Listener):
        return listener.signal
    if callable(listener):
        return listener
    raise TypeError(
        f"listener must be callable or a Listener, got {type(listener).__name__}"
    )


def _noop(*_args: Any) -> None:
    """The default listener: silence."""
