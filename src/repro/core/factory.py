"""The per-activity identity map of tag references.

Paper section 3.2: "Within one Android activity, only a single unique tag
reference can exist to the same RFID tag. Behind the scenes,
``TagDiscoverer`` instances use a private ``TagReferenceFactory`` that
generates tag references for tags that are detected for the very first
time, and subsequently reuses these references."

Reference garbage collection is the application's responsibility (the
paper's stance); :meth:`TagReferenceFactory.release` and
:meth:`stop_all` are the hooks for it, and :mod:`repro.leasing`
implements the lease-driven automatic variant sketched as future work.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.converters import (
    NdefMessageToObjectConverter,
    ObjectToNdefMessageConverter,
)
from repro.core.reference import TagReference

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.nfc.tech import Tag
    from repro.core.nfc_activity import NFCActivity


class TagReferenceFactory:
    """Creates-or-reuses the unique :class:`TagReference` per tag UID."""

    def __init__(self, activity: "NFCActivity") -> None:
        self._activity = activity
        self._lock = threading.Lock()
        self._references: Dict[bytes, TagReference] = {}

    def get_or_create(
        self,
        tag: "Tag",
        read_converter: NdefMessageToObjectConverter,
        write_converter: ObjectToNdefMessageConverter,
        default_timeout: Optional[float] = None,
        threaded: Optional[bool] = None,
        coalesce_writes: Optional[bool] = None,
        batched: Optional[bool] = None,
    ) -> "tuple[TagReference, bool]":
        """Return ``(reference, is_new)`` for the tag's UID.

        The converters only matter on first creation; later lookups return
        the existing reference unchanged, preserving its queue and cache.
        New references run on the device's shared reactor (one bounded
        worker pool per device) unless ``threaded=True`` selects the
        paper-literal thread-per-reference mode. ``coalesce_writes=True``
        makes the reference's writes coalescible by default (see
        :meth:`TagReference.write`). ``batched=False`` opts the
        reference out of the device's per-port transaction scheduler
        (see :mod:`repro.radio.txscheduler`); reactor references batch
        by default.
        """
        with self._lock:
            existing = self._references.get(tag.id)
            if existing is not None and not existing.is_stopped:
                return existing, False
            kwargs = {}
            if default_timeout is not None:
                kwargs["default_timeout"] = default_timeout
            if threaded is not None:
                kwargs["threaded"] = threaded
            if coalesce_writes is not None:
                kwargs["coalesce_writes"] = coalesce_writes
            if batched is not None:
                kwargs["batched"] = batched
            reference = TagReference(
                tag,
                self._activity,
                read_converter,
                write_converter,
                **kwargs,
            )
            self._references[tag.id] = reference
            return reference, True

    def lookup(self, uid: bytes) -> Optional[TagReference]:
        with self._lock:
            return self._references.get(uid)

    def known_references(self) -> List[TagReference]:
        with self._lock:
            return list(self._references.values())

    def release(self, uid: bytes, notify_pending: bool = False) -> bool:
        """Stop and forget the reference for ``uid``; the next detection
        of that tag creates a fresh reference. Returns whether one existed."""
        with self._lock:
            reference = self._references.pop(uid, None)
        if reference is None:
            return False
        reference.stop(notify_pending=notify_pending)
        return True

    def stop_all(self, notify_pending: bool = False) -> None:
        """Stop every reference; called when the owning activity is destroyed."""
        with self._lock:
            references = list(self._references.values())
            self._references.clear()
        for reference in references:
            reference.stop(notify_pending=notify_pending)

    def __len__(self) -> int:
        with self._lock:
            return len(self._references)
