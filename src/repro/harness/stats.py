"""Radio telemetry: summarize what the simulated hardware actually did.

Benchmarks and long-running scenarios read the per-port counters (read /
write / beam attempts) and, where the link model keeps statistics, the
observed loss rate. ``radio_report`` renders everything as one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.harness.report import Table
from repro.radio.environment import RfidEnvironment
from repro.radio.link import LossyLink


@dataclass(frozen=True)
class PortStats:
    """One port's attempt counters and observed link behaviour."""

    name: str
    read_attempts: int
    write_attempts: int
    format_attempts: int
    lock_attempts: int
    beam_attempts: int
    connects: int
    link_attempts: Optional[int]
    link_failures: Optional[int]

    @property
    def data_transfers(self) -> int:
        """Transfers that moved tag data (everything but Beam)."""
        return (
            self.read_attempts
            + self.write_attempts
            + self.format_attempts
            + self.lock_attempts
        )

    @property
    def batched_share(self) -> Optional[float]:
        """Fraction of data transfers that rode a shared connect round.

        ``None`` before any transfer. Standalone operations pay one
        connect each, so the share is ``0.0`` without batching and grows
        as tap windows amortize the anticollision cost.
        """
        transfers = self.data_transfers
        if not transfers:
            return None
        return max(0.0, 1.0 - self.connects / transfers)

    @property
    def observed_loss(self) -> Optional[float]:
        if not self.link_attempts:
            return None
        return (self.link_failures or 0) / self.link_attempts


def collect_port_stats(env: RfidEnvironment) -> List[PortStats]:
    """Snapshot the counters of every port in the environment."""
    stats: List[PortStats] = []
    for name in env.port_names():
        port = env.port(name)
        link = port.link
        link_attempts = getattr(link, "attempts", None) if isinstance(
            link, LossyLink
        ) else None
        link_failures = getattr(link, "failures", None) if isinstance(
            link, LossyLink
        ) else None
        stats.append(
            PortStats(
                name=name,
                read_attempts=port.read_attempts,
                write_attempts=port.write_attempts,
                format_attempts=port.format_attempts,
                lock_attempts=port.lock_attempts,
                beam_attempts=port.beam_attempts,
                connects=port.connects,
                link_attempts=link_attempts,
                link_failures=link_failures,
            )
        )
    return stats


def radio_report(env: RfidEnvironment, title: str = "Radio telemetry") -> Table:
    """Render one table row per port."""
    table = Table(
        title,
        [
            "port",
            "reads",
            "writes",
            "formats",
            "locks",
            "beams",
            "connects",
            "batched share",
            "observed loss",
        ],
    )
    for stats in collect_port_stats(env):
        loss = stats.observed_loss
        share = stats.batched_share
        table.add_row(
            stats.name,
            stats.read_attempts,
            stats.write_attempts,
            stats.format_attempts,
            stats.lock_attempts,
            stats.beam_attempts,
            stats.connects,
            "n/a" if share is None else f"{share:.2f}",
            "n/a" if loss is None else f"{loss:.2f}",
        )
    return table
