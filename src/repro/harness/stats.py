"""Radio telemetry: summarize what the simulated hardware actually did.

Benchmarks and long-running scenarios read the per-port counters (read /
write / beam attempts) and, where the link model keeps statistics, the
observed loss rate. ``radio_report`` renders everything as one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.harness.report import Table
from repro.radio.environment import RfidEnvironment
from repro.radio.link import LossyLink


@dataclass(frozen=True)
class PortStats:
    """One port's attempt counters and observed link behaviour."""

    name: str
    read_attempts: int
    write_attempts: int
    beam_attempts: int
    link_attempts: Optional[int]
    link_failures: Optional[int]

    @property
    def observed_loss(self) -> Optional[float]:
        if not self.link_attempts:
            return None
        return (self.link_failures or 0) / self.link_attempts


def collect_port_stats(env: RfidEnvironment) -> List[PortStats]:
    """Snapshot the counters of every port in the environment."""
    stats: List[PortStats] = []
    for name in env.port_names():
        port = env.port(name)
        link = port.link
        link_attempts = getattr(link, "attempts", None) if isinstance(
            link, LossyLink
        ) else None
        link_failures = getattr(link, "failures", None) if isinstance(
            link, LossyLink
        ) else None
        stats.append(
            PortStats(
                name=name,
                read_attempts=port.read_attempts,
                write_attempts=port.write_attempts,
                beam_attempts=port.beam_attempts,
                link_attempts=link_attempts,
                link_failures=link_failures,
            )
        )
    return stats


def radio_report(env: RfidEnvironment, title: str = "Radio telemetry") -> Table:
    """Render one table row per port."""
    table = Table(
        title,
        ["port", "reads", "writes", "beams", "observed loss"],
    )
    for stats in collect_port_stats(env):
        loss = stats.observed_loss
        table.add_row(
            stats.name,
            stats.read_attempts,
            stats.write_attempts,
            stats.beam_attempts,
            "n/a" if loss is None else f"{loss:.2f}",
        )
    return table
