"""A simulated human tapping a phone against tags.

The behavioural benchmarks compare *user-visible* effort: how many taps
until the application's goal is reached. A tap is "bring the tag into the
field, hold it there for a moment, withdraw it" -- during the hold, the
middleware (or the user's worker thread) gets its chance at the radio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List

from repro.android.device import AndroidDevice
from repro.radio.environment import RfidEnvironment
from repro.tags.tag import SimulatedTag


@dataclass
class TapStats:
    """Outcome of a tap-until-done session."""

    taps: int = 0
    succeeded: bool = False
    elapsed_seconds: float = 0.0
    tap_log: List[float] = field(default_factory=list)

    def __str__(self) -> str:
        state = "ok" if self.succeeded else "GAVE UP"
        return f"{self.taps} taps, {self.elapsed_seconds * 1000:.0f} ms, {state}"


class SimulatedUser:
    """Drives tag taps against one phone with human-ish pacing."""

    def __init__(
        self,
        env: RfidEnvironment,
        phone: AndroidDevice,
        hold_seconds: float = 0.08,
        pause_seconds: float = 0.01,
    ) -> None:
        self._env = env
        self._phone = phone
        self.hold_seconds = hold_seconds
        self.pause_seconds = pause_seconds

    def tap(self, tag: SimulatedTag, hold_seconds: float = None) -> None:
        """One tap: in field, hold, withdraw."""
        hold = self.hold_seconds if hold_seconds is None else hold_seconds
        self._env.move_tag_into_field(tag, self._phone.port)
        time.sleep(hold)
        self._env.remove_tag_from_field(tag, self._phone.port)

    def tap_until(
        self,
        tag: SimulatedTag,
        done: Callable[[], bool],
        max_taps: int = 50,
        settle_seconds: float = 0.02,
    ) -> TapStats:
        """Tap repeatedly until ``done()`` or ``max_taps`` is reached.

        After each tap the phone's main looper is drained and ``done`` is
        evaluated, so listener effects are visible.
        """
        stats = TapStats()
        start = time.monotonic()
        for _ in range(max_taps):
            tap_start = time.monotonic()
            self.tap(tag)
            stats.taps += 1
            self._phone.sync()
            time.sleep(settle_seconds)
            self._phone.sync()
            stats.tap_log.append(time.monotonic() - tap_start)
            if done():
                stats.succeeded = True
                break
            time.sleep(self.pause_seconds)
        stats.elapsed_seconds = time.monotonic() - start
        return stats

    def hold_until(
        self,
        tag: SimulatedTag,
        done: Callable[[], bool],
        max_seconds: float = 2.0,
        poll_seconds: float = 0.005,
    ) -> TapStats:
        """One long tap: hold the tag in the field until ``done()``.

        Models the patient user the paper's MORENA version allows: queued
        operations drain while the tag stays in range.
        """
        stats = TapStats(taps=1)
        start = time.monotonic()
        self._env.move_tag_into_field(tag, self._phone.port)
        try:
            while time.monotonic() - start < max_seconds:
                self._phone.sync()
                if done():
                    stats.succeeded = True
                    break
                time.sleep(poll_seconds)
        finally:
            self._env.remove_tag_from_field(tag, self._phone.port)
        stats.elapsed_seconds = time.monotonic() - start
        return stats
