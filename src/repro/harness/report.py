"""Plain-text tables and series for the experiment reports.

Each benchmark prints the same rows/series the paper's figure reports,
via these helpers, so ``pytest benchmarks/ -s`` shows the reproduction
output next to the timing numbers.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple


class Table:
    """A fixed-header text table."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, ""]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


class Series:
    """A named (x, y) series, the text rendition of one figure curve."""

    def __init__(self, name: str, x_label: str = "x", y_label: str = "y") -> None:
        self.name = name
        self.x_label = x_label
        self.y_label = y_label
        self.points: List[Tuple[float, float]] = []

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    def render(self) -> str:
        lines = [f"series: {self.name} ({self.x_label} -> {self.y_label})"]
        for x, y in self.points:
            lines.append(f"  {x:g}\t{y:g}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
