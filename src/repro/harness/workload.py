"""Workload generators: tag populations and tap sequences."""

from __future__ import annotations

import json
import random
import string
from dataclasses import dataclass
from typing import List, Sequence

from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.factory import make_tag
from repro.tags.tag import SimulatedTag

WIFI_MIME_TYPE = "application/vnd.morena.wificonfig"


def make_config_tags(
    count: int,
    seed: int = 0,
    tag_type: str = "NTAG216",
    mime_type: str = WIFI_MIME_TYPE,
) -> List[SimulatedTag]:
    """Tags pre-loaded with distinct WiFi credentials (seeded)."""
    rng = random.Random(seed)
    tags: List[SimulatedTag] = []
    for index in range(count):
        ssid = f"net-{index:04d}"
        key = "".join(rng.choices(string.ascii_letters + string.digits, k=12))
        payload = json.dumps({"ssid": ssid, "key": key}, sort_keys=True).encode()
        message = NdefMessage([mime_record(mime_type, payload)])
        tags.append(make_tag(tag_type, content=message))
    return tags


def make_things_payloads(count: int, size_bytes: int, seed: int = 0) -> List[bytes]:
    """Pseudo-random payload blobs of a fixed size (seeded)."""
    rng = random.Random(seed)
    return [bytes(rng.getrandbits(8) for _ in range(size_bytes)) for _ in range(count)]


@dataclass(frozen=True)
class TapEvent:
    """One scheduled tap in a workload: which tag, when, for how long."""

    tag_index: int
    at_seconds: float
    hold_seconds: float


class TapWorkload:
    """A seeded sequence of taps over a tag population.

    ``inter_tap`` and ``hold`` are (min, max) uniform ranges; the same
    seed always produces the same schedule, so benchmark runs comparing
    two middleware versions see identical user behaviour.
    """

    def __init__(
        self,
        tag_count: int,
        tap_count: int,
        seed: int = 0,
        inter_tap: Sequence[float] = (0.0, 0.05),
        hold: Sequence[float] = (0.03, 0.1),
    ) -> None:
        if tag_count <= 0:
            raise ValueError("need at least one tag")
        rng = random.Random(seed)
        self.events: List[TapEvent] = []
        now = 0.0
        for _ in range(tap_count):
            now += rng.uniform(*inter_tap)
            self.events.append(
                TapEvent(
                    tag_index=rng.randrange(tag_count),
                    at_seconds=now,
                    hold_seconds=rng.uniform(*hold),
                )
            )

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
