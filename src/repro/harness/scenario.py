"""One-call scenario construction for tests, examples and benchmarks."""

from __future__ import annotations

from typing import Dict, List, Optional, Type, TypeVar

from repro.android.activity import Activity
from repro.android.device import AndroidDevice
from repro.apps.wifi.wifi_manager import WifiNetworkRegistry
from repro.radio.environment import RfidEnvironment
from repro.radio.timing import NO_DELAY, TransferTiming
from repro.tags.factory import make_tag
from repro.tags.tag import SimulatedTag

A = TypeVar("A", bound=Activity)


class Scenario:
    """An environment plus named phones plus a tag population.

    Tears everything down with :meth:`close`; usable as a context
    manager::

        with Scenario() as scenario:
            phone = scenario.add_phone("alice")
            ...
    """

    def __init__(
        self,
        timing: TransferTiming = NO_DELAY,
        default_link: Optional[object] = None,
        clock=None,
        spatial: bool = False,
        spatial_seed: int = 0,
        transport: Optional[object] = None,
    ) -> None:
        if spatial:
            from repro.radio.geometry import SpatialEnvironment

            self.env = SpatialEnvironment(
                clock=clock,
                timing=timing,
                default_link=default_link,
                seed=spatial_seed,
                transport=transport,
            )
        else:
            self.env = RfidEnvironment(
                clock=clock,
                timing=timing,
                default_link=default_link,
                transport=transport,
            )
        self.wifi_registry = WifiNetworkRegistry()
        self.phones: Dict[str, AndroidDevice] = {}
        self.tags: List[SimulatedTag] = []

    # -- population ---------------------------------------------------------------

    def add_phone(
        self,
        name: str,
        link: Optional[object] = None,
        tx_policy: Optional[object] = None,
        reactor_mode: str = "threaded",
    ) -> AndroidDevice:
        phone = AndroidDevice(
            name, self.env, link=link, tx_policy=tx_policy, reactor_mode=reactor_mode
        )
        self.phones[name] = phone
        return phone

    def add_phones(
        self,
        count: int,
        prefix: str = "phone",
        link: Optional[object] = None,
        tx_policy: Optional[object] = None,
        reactor_mode: str = "threaded",
    ) -> List[AndroidDevice]:
        """``count`` phones named ``{prefix}-0000`` ... (crowd scenarios)."""
        return [
            self.add_phone(
                f"{prefix}-{index:04d}",
                link=link,
                tx_policy=tx_policy,
                reactor_mode=reactor_mode,
            )
            for index in range(count)
        ]

    def add_tag(self, tag_type: str = "NTAG216", content=None, formatted: bool = True):
        tag = make_tag(tag_type, content=content, formatted=formatted)
        self.tags.append(tag)
        return tag

    def add_tags(
        self, count: int, tag_type: str = "NTAG216", formatted: bool = True
    ) -> List[SimulatedTag]:
        """``count`` blank tags at once (crowd scenarios)."""
        return [
            self.add_tag(tag_type=tag_type, formatted=formatted)
            for _ in range(count)
        ]

    def start(self, phone: AndroidDevice, activity_class: Type[A], *args, **kwargs) -> A:
        return phone.start_activity(activity_class, *args, **kwargs)

    # -- movement shorthand ------------------------------------------------------------

    def tap(self, tag: SimulatedTag, phone: AndroidDevice):
        """Context manager: tag in field for the duration of the block."""
        return self.env.tap(tag, phone.port)

    def put(self, tag: SimulatedTag, phone: AndroidDevice) -> None:
        self.env.move_tag_into_field(tag, phone.port)

    def take(self, tag: SimulatedTag, phone: AndroidDevice) -> None:
        self.env.remove_tag_from_field(tag, phone.port)

    def put_all(self, tags: List[SimulatedTag], phone: AndroidDevice) -> int:
        """Bring a whole cohort of tags into one phone's field at once."""
        return self.env.move_tags_into_field(tags, phone.port)

    def take_all(self, tags: List[SimulatedTag], phone: AndroidDevice) -> int:
        """Remove a whole cohort of tags from one phone's field at once."""
        return self.env.remove_tags_from_field(tags, phone.port)

    def pair(self, a: AndroidDevice, b: AndroidDevice) -> None:
        self.env.bring_together(a.port, b.port)

    def unpair(self, a: AndroidDevice, b: AndroidDevice) -> None:
        self.env.separate(a.port, b.port)

    # -- synchronization -----------------------------------------------------------------

    def sync_all(self, timeout: float = 5.0) -> bool:
        return all(phone.sync(timeout) for phone in self.phones.values())

    # -- teardown ----------------------------------------------------------------------------

    def close(self) -> None:
        for phone in self.phones.values():
            phone.shutdown()
        self.phones.clear()

    def __enter__(self) -> "Scenario":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
