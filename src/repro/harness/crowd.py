"""Crowd-scale field churn: hundreds of devices, thousands of tags.

The single-phone scenarios elsewhere in the harness model one user and a
handful of tags. The fairness/scaling work needs the opposite regime —
fields that *churn*: cohorts of tags sweeping through many readers'
fields concurrently, the workload NFCGate-style multi-device traffic
studies run. Two parameterized generators produce deterministic
(seeded) schedules of **bulk** field mutations:

* :func:`turnstile_rush` — commuter gates at rush hour: each device is
  a turnstile; small groups of tags (one per commuter's wallet) arrive
  in bursts at random gates, dwell briefly, and leave. High entry rate,
  short dwell, no structure across gates.
* :func:`warehouse_conveyor` — tagged packages on a belt passing a line
  of reader gates: each cohort of tags crosses every device's field *in
  sequence* with a fixed stride, so fields overlap in a moving window.
  Structured, wave-like churn.

A schedule is data (:class:`ChurnSchedule` of :class:`ChurnEvent`); the
:func:`run_churn` executor replays one against a :class:`~repro.harness.
scenario.Scenario` using the bulk environment mutations
(``move_tags_into_field`` / ``remove_tags_from_field``), either at full
speed (``time_scale=0`` — throughput mode) or paced against the
environment clock (``time_scale>0`` — lets instrumented references get
serviced mid-churn).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.scenario import Scenario


@dataclass(frozen=True)
class ChurnEvent:
    """One bulk field mutation: a cohort crosses one device's boundary."""

    at_seconds: float  # schedule time (scaled by the executor)
    device_index: int  # which device's field
    tag_indices: Sequence[int]  # cohort members (indices into the tag list)
    enter: bool  # True = into the field, False = out of it


class ChurnSchedule:
    """A time-ordered list of churn events over an indexed population."""

    def __init__(
        self, name: str, device_count: int, tag_count: int, events: List[ChurnEvent]
    ) -> None:
        self.name = name
        self.device_count = device_count
        self.tag_count = tag_count
        self.events = sorted(events, key=lambda e: e.at_seconds)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def tag_moves(self) -> int:
        """Total individual tag boundary crossings in the schedule."""
        return sum(len(event.tag_indices) for event in self.events)

    def __repr__(self) -> str:
        return (
            f"ChurnSchedule({self.name!r}, devices={self.device_count}, "
            f"tags={self.tag_count}, events={len(self.events)}, "
            f"moves={self.tag_moves})"
        )


def turnstile_rush(
    device_count: int,
    tag_count: int,
    duration_seconds: float = 10.0,
    arrivals_per_second: float = 100.0,
    group_size: Sequence[int] = (1, 4),
    dwell_seconds: Sequence[float] = (0.05, 0.3),
    seed: int = 0,
) -> ChurnSchedule:
    """Commuter-gate rush: bursts of small groups at random gates.

    ``arrivals_per_second`` counts *groups* across all gates; each group
    picks a uniform gate, a uniform size from ``group_size`` and a
    uniform dwell from ``dwell_seconds``, entering and leaving as one
    bulk event each. Tags are recycled round-robin, so a tag can pass
    several gates over the schedule (a commuter with transfers).
    """
    if device_count <= 0 or tag_count <= 0:
        raise ValueError("need at least one device and one tag")
    rng = random.Random(seed)
    events: List[ChurnEvent] = []
    now = 0.0
    next_tag = 0
    mean_gap = 1.0 / arrivals_per_second
    while now < duration_seconds:
        now += rng.expovariate(1.0 / mean_gap) if mean_gap > 0 else 0.0
        if now >= duration_seconds:
            break
        size = rng.randint(group_size[0], group_size[1])
        cohort = tuple(
            (next_tag + offset) % tag_count for offset in range(size)
        )
        next_tag = (next_tag + size) % tag_count
        gate = rng.randrange(device_count)
        dwell = rng.uniform(dwell_seconds[0], dwell_seconds[1])
        events.append(ChurnEvent(now, gate, cohort, enter=True))
        events.append(ChurnEvent(now + dwell, gate, cohort, enter=False))
    return ChurnSchedule("turnstile_rush", device_count, tag_count, events)


def warehouse_conveyor(
    device_count: int,
    tag_count: int,
    cohort_size: int = 8,
    belt_stride_seconds: float = 0.1,
    gate_dwell_seconds: float = 0.15,
    cohort_gap_seconds: float = 0.05,
    seed: int = 0,
) -> ChurnSchedule:
    """Packages on a belt passing a line of reader gates in sequence.

    Tags are grouped into fixed cohorts (pallets); each cohort enters
    gate 0, dwells, moves to gate 1 one ``belt_stride_seconds`` later,
    and so on down the line — so at steady state every gate holds a
    different pallet and fields churn in a moving wave. ``seed`` jitters
    the launch gap between pallets.
    """
    if device_count <= 0 or tag_count <= 0 or cohort_size <= 0:
        raise ValueError("need positive devices, tags and cohort size")
    rng = random.Random(seed)
    events: List[ChurnEvent] = []
    launch = 0.0
    for start in range(0, tag_count, cohort_size):
        cohort = tuple(range(start, min(start + cohort_size, tag_count)))
        for gate in range(device_count):
            arrive = launch + gate * belt_stride_seconds
            events.append(ChurnEvent(arrive, gate, cohort, enter=True))
            events.append(
                ChurnEvent(arrive + gate_dwell_seconds, gate, cohort, enter=False)
            )
        launch += cohort_gap_seconds * (0.5 + rng.random())
    return ChurnSchedule("warehouse_conveyor", device_count, tag_count, events)


def fleet_day(
    device_count: int,
    tag_count: int,
    rush_seconds: float = 4.0,
    conveyor_cohorts: int = 0,
    arrivals_per_second: float = 200.0,
    seed: int = 0,
) -> ChurnSchedule:
    """A multi-station fleet profile: one compressed "day" of traffic.

    Composes the two existing generators into the workload a fleet
    gateway actually sees — structured dock traffic *and* bursty gate
    traffic, overlapping, across one indexed device population:

    * devices split into **gates** (front half) and **dock readers**
      (back half; with fewer than two devices everything is a gate);
    * a morning :func:`turnstile_rush` on the gates;
    * a midday :func:`warehouse_conveyor` wave through the dock line
      (``conveyor_cohorts`` pallets; 0 sizes it so every tag crosses
      once), starting as the morning rush tails off;
    * an evening rush on the gates (fresh seed, same shape).

    Event times are offset per phase and the merged schedule re-sorts,
    so consumers see one monotonic timeline. Deterministic for a given
    ``seed``; phase seeds derive from it.
    """
    if device_count <= 0 or tag_count <= 0:
        raise ValueError("need at least one device and one tag")
    gate_count = max(1, device_count // 2)
    dock_count = device_count - gate_count
    events: List[ChurnEvent] = []

    def shifted(schedule: ChurnSchedule, device_offset: int, at_offset: float):
        for event in schedule:
            events.append(
                ChurnEvent(
                    event.at_seconds + at_offset,
                    event.device_index + device_offset,
                    event.tag_indices,
                    event.enter,
                )
            )

    morning = turnstile_rush(
        gate_count,
        tag_count,
        duration_seconds=rush_seconds,
        arrivals_per_second=arrivals_per_second,
        seed=seed,
    )
    shifted(morning, 0, 0.0)
    if dock_count > 0:
        cohort_size = 8
        pallets = (
            conveyor_cohorts
            if conveyor_cohorts > 0
            else max(1, tag_count // cohort_size)
        )
        conveyor = warehouse_conveyor(
            dock_count,
            min(tag_count, pallets * cohort_size),
            cohort_size=cohort_size,
            seed=seed + 1,
        )
        shifted(conveyor, gate_count, rush_seconds * 0.75)
    evening = turnstile_rush(
        gate_count,
        tag_count,
        duration_seconds=rush_seconds,
        arrivals_per_second=arrivals_per_second,
        seed=seed + 2,
    )
    last = max((event.at_seconds for event in events), default=0.0)
    shifted(evening, 0, last + rush_seconds * 0.25)
    return ChurnSchedule("fleet_day", device_count, tag_count, events)


@dataclass
class ChurnStats:
    """What one :func:`run_churn` replay did and observed."""

    schedule: str
    events: int = 0
    enters: int = 0
    leaves: int = 0
    tag_moves: int = 0
    peak_field_size: int = 0
    elapsed_seconds: float = 0.0

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events / self.elapsed_seconds

    @property
    def moves_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.tag_moves / self.elapsed_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "schedule": self.schedule,
            "events": self.events,
            "enters": self.enters,
            "leaves": self.leaves,
            "tag_moves": self.tag_moves,
            "peak_field_size": self.peak_field_size,
            "elapsed_seconds": self.elapsed_seconds,
            "events_per_second": self.events_per_second,
            "moves_per_second": self.moves_per_second,
        }


def run_churn(
    scenario: Scenario,
    schedule: ChurnSchedule,
    time_scale: float = 0.0,
    devices: Optional[List] = None,
    tags: Optional[List] = None,
) -> ChurnStats:
    """Replay ``schedule`` against ``scenario``'s population.

    ``time_scale=0`` replays as fast as the environment can take the
    mutations (throughput mode); ``time_scale>0`` paces event gaps by
    that factor against the environment clock, so schedulers and
    references run *during* the churn (latency/head-of-line mode).

    ``devices``/``tags`` default to the scenario's own population;
    schedule indices wrap modulo the actual population sizes, so a
    schedule generated for N devices replays (degenerately) on fewer.
    """
    phones = devices if devices is not None else list(scenario.phones.values())
    population = tags if tags is not None else scenario.tags
    if not phones or not population:
        raise ValueError("scenario has no phones or no tags to churn")
    clock = scenario.env.clock
    stats = ChurnStats(schedule=schedule.name)
    field_sizes = [0] * len(phones)
    started = clock.now()
    previous_at = 0.0
    for event in schedule:
        if time_scale > 0.0 and event.at_seconds > previous_at:
            clock.sleep((event.at_seconds - previous_at) * time_scale)
        previous_at = event.at_seconds
        phone = phones[event.device_index % len(phones)]
        cohort = [
            population[index % len(population)] for index in event.tag_indices
        ]
        if event.enter:
            moved = scenario.env.move_tags_into_field(cohort, phone.port)
            stats.enters += 1
        else:
            moved = scenario.env.remove_tags_from_field(cohort, phone.port)
            stats.leaves += 1
        stats.events += 1
        stats.tag_moves += moved
        index = event.device_index % len(phones)
        field_sizes[index] += moved if event.enter else -moved
        if field_sizes[index] > stats.peak_field_size:
            stats.peak_field_size = field_sizes[index]
    stats.elapsed_seconds = clock.now() - started
    return stats
