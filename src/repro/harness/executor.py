"""Workload replay: drive a :class:`~repro.harness.workload.TapWorkload`
against a live environment.

The executor turns a seeded tap schedule into actual field transitions,
optionally compressing time (``time_scale``) so a minutes-long user
session replays in a fraction of a second. Identical workload + seed +
scale means identical radio history, so two middleware variants can be
compared under the exact same user behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.android.device import AndroidDevice
from repro.harness.workload import TapWorkload
from repro.radio.environment import RfidEnvironment
from repro.tags.tag import SimulatedTag


@dataclass
class ReplayStats:
    """What happened during one workload replay."""

    taps: int = 0
    elapsed_seconds: float = 0.0
    taps_per_tag: List[int] = field(default_factory=list)


class WorkloadExecutor:
    """Replays tap schedules against one phone."""

    def __init__(
        self,
        env: RfidEnvironment,
        phone: AndroidDevice,
        tags: Sequence[SimulatedTag],
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if not tags:
            raise ValueError("need at least one tag")
        self._env = env
        self._phone = phone
        self._tags = list(tags)
        self._time_scale = time_scale

    def run(self, workload: TapWorkload, settle: bool = True) -> ReplayStats:
        """Replay ``workload``; returns per-run statistics.

        With ``settle`` the phone's main looper is drained after the last
        tap so listener effects are visible to the caller.
        """
        stats = ReplayStats(taps_per_tag=[0] * len(self._tags))
        start = time.monotonic()
        virtual_now = 0.0
        for event in workload:
            if event.tag_index >= len(self._tags):
                raise IndexError(
                    f"workload references tag {event.tag_index}, "
                    f"only {len(self._tags)} tags supplied"
                )
            wait = (event.at_seconds - virtual_now) * self._time_scale
            if wait > 0:
                time.sleep(wait)
            virtual_now = event.at_seconds
            tag = self._tags[event.tag_index]
            self._env.move_tag_into_field(tag, self._phone.port)
            time.sleep(max(event.hold_seconds * self._time_scale, 0.0))
            self._env.remove_tag_from_field(tag, self._phone.port)
            stats.taps += 1
            stats.taps_per_tag[event.tag_index] += 1
        if settle:
            self._phone.sync()
        stats.elapsed_seconds = time.monotonic() - start
        return stats
