"""Experiment harness: scenario building, simulated users, reporting.

Benchmarks and examples share this plumbing: :class:`Scenario` wires an
environment + phones + tags in one call, :class:`SimulatedUser` models a
human tapping a phone against tags (hold, withdraw, re-tap), and
:mod:`repro.harness.report` prints the rows/series the paper's tables and
figures report.
"""

from repro.harness.crowd import (
    ChurnEvent,
    ChurnSchedule,
    ChurnStats,
    fleet_day,
    run_churn,
    turnstile_rush,
    warehouse_conveyor,
)
from repro.harness.executor import ReplayStats, WorkloadExecutor
from repro.harness.fuzz import (
    CrashCase,
    FuzzReport,
    default_corpus,
    fuzz,
    load_corpus_dir,
    replay_corpus,
    save_case,
)
from repro.harness.scenario import Scenario
from repro.harness.stats import PortStats, collect_port_stats, radio_report
from repro.harness.user import SimulatedUser, TapStats
from repro.harness.workload import TapWorkload, make_config_tags, make_things_payloads
from repro.harness.report import Series, Table

__all__ = [
    "Scenario",
    "SimulatedUser",
    "TapStats",
    "TapWorkload",
    "WorkloadExecutor",
    "ReplayStats",
    "make_config_tags",
    "make_things_payloads",
    "Table",
    "Series",
    "PortStats",
    "collect_port_stats",
    "radio_report",
    "ChurnEvent",
    "ChurnSchedule",
    "ChurnStats",
    "run_churn",
    "fleet_day",
    "turnstile_rush",
    "warehouse_conveyor",
    "CrashCase",
    "FuzzReport",
    "fuzz",
    "replay_corpus",
    "default_corpus",
    "load_corpus_dir",
    "save_case",
]
