"""Replay-driven NDEF wire fuzzer: hostile tags must fail *cleanly*.

Trojan-of-Things-style attacks put adversarial bytes on tags the
middleware will happily try to decode. This module mutates captured
NDEF wire bytes (truncation, length-field inflation, chunk-flag
corruption, reserved TNF / URI identifier codes, bit flips, splices)
and replays every mutant through the three decode surfaces a hostile
tag reaches:

* ``NdefMessage.from_bytes`` -- the raw wire codec;
* the tag read path -- the mutant is planted in a simulated tag's TLV
  area and read back through ``SimulatedTag.read_ndef``;
* the RTD decoders -- records that *do* decode and claim Text / URI /
  Smart Poster types go through their typed ``from_record`` parsers.

The contract under test: every malformed input raises
:class:`~repro.errors.NdefDecodeError` (or another typed
:class:`~repro.errors.ReproError`) -- never ``IndexError``,
``OverflowError``, ``UnicodeDecodeError``, a wrong result or a hang.
Anything else is recorded as a :class:`CrashCase`.

Runs are fully deterministic: one :class:`random.Random` seeded from
``seed`` drives corpus choice and every mutation, so a CI failure
reproduces locally from the seed alone. Crash inputs serialize to a
hex-file corpus (one input per ``.hex`` file) that
:func:`replay_corpus` regression-runs on every CI pass -- see
``repro.cli fuzz``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NdefError, ReproError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.ndef.record import FLAG_CF, FLAG_SR, TNF_MASK, NdefRecord, Tnf
from repro.ndef.rtd import (
    RTD_SMART_POSTER,
    RTD_TEXT,
    RTD_URI,
    SmartPosterRecord,
    TextRecord,
    UriRecord,
)

#: Errors a hostile input is *allowed* to surface: the typed hierarchy.
ACCEPTABLE_ERRORS = (ReproError,)

#: Mutants larger than this are truncated -- decode cost stays bounded,
#: so a fuzz run can never hang on a pathological length.
MAX_INPUT_BYTES = 4096


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashCase:
    """One input that broke the typed-error contract."""

    data: bytes
    stage: str  # decode | roundtrip | tag-read | rtd
    exception: str  # repr of what escaped
    mutation: str  # mutation (or corpus entry) that produced the input

    @property
    def hex(self) -> str:
        return self.data.hex()

    def describe(self) -> str:
        return (
            f"[{self.stage}] {self.exception} "
            f"(mutation={self.mutation}, {len(self.data)} bytes: "
            f"{self.data[:32].hex()}{'...' if len(self.data) > 32 else ''})"
        )


@dataclass
class FuzzReport:
    """Outcome of one fuzz run (or one corpus replay)."""

    seed: int
    iterations: int = 0
    accepted: int = 0  # decoded fine and round-tripped
    rejected: int = 0  # raised a typed error, as designed
    crashes: List[CrashCase] = field(default_factory=list)
    mutation_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.crashes

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.iterations} inputs (seed {self.seed}): "
            f"{self.accepted} accepted, {self.rejected} cleanly rejected, "
            f"{len(self.crashes)} CRASH"
            + ("ES" if len(self.crashes) != 1 else "")
        ]
        for name in sorted(self.mutation_counts):
            lines.append(f"  {name}: {self.mutation_counts[name]}")
        for crash in self.crashes:
            lines.append("  " + crash.describe())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Mutations
# ---------------------------------------------------------------------------

Mutation = Callable[[bytes, random.Random], bytes]


def mutate_truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the input anywhere, including down to nothing."""
    if not data:
        return data
    return data[: rng.randrange(0, len(data))]


def mutate_inflate_length(data: bytes, rng: random.Random) -> bytes:
    """Inflate a payload-length field past the end of the buffer."""
    if len(data) < 3:
        return data + b"\xff"
    out = bytearray(data)
    if out[0] & FLAG_SR:
        out[2] = 0xFF  # short record: 1-byte length -> claims 255
    else:
        # Long record: 4-byte big-endian length -> claims ~4 GiB.
        for index in range(2, min(6, len(out))):
            out[index] = 0xFF
    return bytes(out)


def mutate_clear_short_record(data: bytes, rng: random.Random) -> bytes:
    """Clear SR so the 1-byte length is reparsed as a 4-byte one."""
    if not data:
        return data
    out = bytearray(data)
    out[0] &= ~FLAG_SR & 0xFF
    return bytes(out)


def mutate_chunk_flags(data: bytes, rng: random.Random) -> bytes:
    """Set CF on a random header-ish byte (open a chunk that never ends)."""
    if not data:
        return data
    out = bytearray(data)
    out[rng.randrange(0, len(out))] |= FLAG_CF
    out[0] |= FLAG_CF
    return bytes(out)


def mutate_reserved_tnf(data: bytes, rng: random.Random) -> bytes:
    """Force the first record's TNF to the reserved value 0x07."""
    if not data:
        return data
    out = bytearray(data)
    out[0] = (out[0] & ~TNF_MASK) | int(Tnf.RESERVED)
    return bytes(out)


def mutate_unchanged_tnf(data: bytes, rng: random.Random) -> bytes:
    """Force UNCHANGED TNF outside any chunk sequence."""
    if not data:
        return data
    out = bytearray(data)
    out[0] = (out[0] & ~TNF_MASK) | int(Tnf.UNCHANGED)
    return bytes(out)


def mutate_flip_bits(data: bytes, rng: random.Random) -> bytes:
    """Flip 1-4 random bits anywhere in the input."""
    if not data:
        return b"\x00"
    out = bytearray(data)
    for _ in range(rng.randint(1, 4)):
        out[rng.randrange(0, len(out))] ^= 1 << rng.randrange(0, 8)
    return bytes(out)


def mutate_poison_tail(data: bytes, rng: random.Random) -> bytes:
    """Overwrite a tail byte with 0xFF (reserved URI codes, bad status)."""
    if len(data) < 2:
        return data + b"\xff"
    out = bytearray(data)
    out[rng.randrange(len(out) // 2, len(out))] = 0xFF
    return bytes(out)


def mutate_duplicate(data: bytes, rng: random.Random) -> bytes:
    """Append the input to itself (duplicate MB/ME framing)."""
    return (data + data)[:MAX_INPUT_BYTES]


def mutate_splice(data: bytes, rng: random.Random) -> bytes:
    """Swap the halves of the input (records out of framing order)."""
    if len(data) < 2:
        return data
    pivot = rng.randrange(1, len(data))
    return data[pivot:] + data[:pivot]


MUTATIONS: Tuple[Tuple[str, Mutation], ...] = (
    ("truncate", mutate_truncate),
    ("inflate-length", mutate_inflate_length),
    ("clear-short-record", mutate_clear_short_record),
    ("chunk-flags", mutate_chunk_flags),
    ("reserved-tnf", mutate_reserved_tnf),
    ("unchanged-tnf", mutate_unchanged_tnf),
    ("flip-bits", mutate_flip_bits),
    ("poison-tail", mutate_poison_tail),
    ("duplicate", mutate_duplicate),
    ("splice", mutate_splice),
)


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------


def default_corpus() -> List[bytes]:
    """Representative wire images covering every encoder feature.

    These are the shapes real MORENA traffic produces (thing payloads
    are MIME records, demos use RTD Text/URI/Smart Poster, chunked and
    id-carrying records exercise reassembly) -- the same bytes a
    :class:`~repro.radio.trace.RadioTracer` session would capture off
    the simulated radio.
    """
    text = TextRecord("hello, MORENA", language="en").to_record()
    uri = UriRecord("https://www.example.org/tag").to_record()
    poster = SmartPosterRecord(
        "https://example.org", titles={"en": "demo"}, action=0
    ).to_record()
    mime = mime_record("application/vnd.morena.thing", b'{"ssid": "net"}')
    with_id = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"id-1", b"payload")
    unknown = NdefRecord(Tnf.UNKNOWN, b"", b"", b"\x00\x01\x02")
    big = mime_record("application/octet-stream", bytes(range(256)) * 3)
    corpus = [
        NdefMessage([text]).to_bytes(),
        NdefMessage([uri]).to_bytes(),
        NdefMessage([poster]).to_bytes(),
        NdefMessage([mime]).to_bytes(),
        NdefMessage([with_id, unknown]).to_bytes(),
        NdefMessage([text, uri, mime]).to_bytes(),
        NdefMessage.empty().to_bytes(),
        big.to_chunks(64),
        mime.to_chunks(4),
    ]
    return corpus


def corpus_from_tags(tags: Iterable[object]) -> List[bytes]:
    """Capture the wire bytes currently stored on simulated tags."""
    captured: List[bytes] = []
    for tag in tags:
        try:
            captured.append(tag.read_ndef().to_bytes())
        except ReproError:
            continue  # unformatted / corrupt tags have no wire image
    return captured


def load_corpus_dir(directory) -> List[Tuple[str, bytes]]:
    """Read every ``*.hex`` file (hex text, whitespace ignored) in a dir."""
    path = Path(directory)
    entries: List[Tuple[str, bytes]] = []
    for file in sorted(path.glob("*.hex")):
        text = "".join(file.read_text().split())
        entries.append((file.name, bytes.fromhex(text)))
    return entries


def save_case(directory, case: CrashCase) -> Path:
    """Persist a crash input as ``<stage>-<digest>.hex``; returns the path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha256(case.data).hexdigest()[:12]
    target = path / f"{case.stage}-{digest}.hex"
    target.write_text(case.data.hex() + "\n")
    return target


# ---------------------------------------------------------------------------
# Probing
# ---------------------------------------------------------------------------


def _probe_rtd(message: NdefMessage) -> None:
    """Run typed RTD parsers over records claiming well-known types."""
    for record in message:
        if record.tnf != Tnf.WELL_KNOWN:
            continue
        if record.type == RTD_TEXT:
            try:
                TextRecord.from_record(record)
            except NdefError:
                pass
        elif record.type == RTD_URI:
            try:
                UriRecord.from_record(record)
            except NdefError:
                pass
        elif record.type == RTD_SMART_POSTER:
            try:
                SmartPosterRecord.from_record(record)
            except NdefError:
                pass


def _probe_tag_read(data: bytes) -> None:
    """Plant the bytes in a tag's TLV area and read through the tag path."""
    from repro.tags.tag import TLV_NDEF, TLV_TERMINATOR, USER_START_PAGE, SimulatedTag

    tag = SimulatedTag()
    room = tag.tag_type.user_bytes - 5  # TLV header + terminator
    body = data[: max(room, 0)]
    if len(body) < 0xFF:
        block = bytes([TLV_NDEF, len(body)]) + body
    else:
        block = bytes([TLV_NDEF, 0xFF]) + len(body).to_bytes(2, "big") + body
    block += bytes([TLV_TERMINATOR])
    tag.memory.write_bytes(USER_START_PAGE, block)
    try:
        tag.read_ndef()
    except ReproError:
        pass  # TagFormatError / NdefDecodeError: the designed outcome


def probe(data: bytes, mutation: str = "corpus") -> Tuple[str, Optional[CrashCase]]:
    """Run one input through every decode surface.

    Returns ``(outcome, crash)`` where outcome is ``"accepted"`` or
    ``"rejected"`` and crash is ``None`` unless an untyped exception
    (or a round-trip mismatch) escaped.
    """
    data = data[:MAX_INPUT_BYTES]
    # Stage 1: the raw wire codec.
    message: Optional[NdefMessage] = None
    try:
        message = NdefMessage.from_bytes(data)
    except ACCEPTABLE_ERRORS:
        outcome = "rejected"
    except Exception as exc:  # noqa: BLE001 - the contract under test
        return "crash", CrashCase(data, "decode", repr(exc), mutation)
    else:
        outcome = "accepted"

    if message is not None:
        # Stage 2: accepted input must round-trip through the canonical
        # encoding -- a decoder that "accepts" garbage into a message it
        # cannot re-encode is a silent corruption bug.
        try:
            if NdefMessage.from_bytes(message.to_bytes()) != message:
                return "crash", CrashCase(
                    data, "roundtrip", "re-decode != original", mutation
                )
        except Exception as exc:  # noqa: BLE001
            return "crash", CrashCase(data, "roundtrip", repr(exc), mutation)
        # Stage 3: typed RTD parsers over the decoded records.
        try:
            _probe_rtd(message)
        except Exception as exc:  # noqa: BLE001
            return "crash", CrashCase(data, "rtd", repr(exc), mutation)

    # Stage 4: the same bytes arriving via a physical tag's TLV area.
    try:
        _probe_tag_read(data)
    except Exception as exc:  # noqa: BLE001
        return "crash", CrashCase(data, "tag-read", repr(exc), mutation)
    return outcome, None


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def fuzz(
    iterations: int = 500,
    seed: int = 0,
    corpus: Optional[Sequence[bytes]] = None,
) -> FuzzReport:
    """Mutate-and-probe ``iterations`` inputs; fully seed-deterministic."""
    rng = random.Random(seed)
    bases = default_corpus() if corpus is None else list(corpus)
    if not bases:
        raise ValueError("fuzz needs a non-empty corpus")
    report = FuzzReport(seed=seed)
    for _ in range(iterations):
        base = rng.choice(bases)
        stack = rng.randint(1, 2)  # occasionally compose two mutations
        data = base
        names = []
        for _ in range(stack):
            name, mutation = MUTATIONS[rng.randrange(len(MUTATIONS))]
            data = mutation(data, rng)
            names.append(name)
        label = "+".join(names)
        report.mutation_counts[label] = report.mutation_counts.get(label, 0) + 1
        outcome, crash = probe(data, label)
        report.iterations += 1
        if crash is not None:
            report.crashes.append(crash)
        elif outcome == "accepted":
            report.accepted += 1
        else:
            report.rejected += 1
    return report


def replay_corpus(entries: Iterable[Tuple[str, bytes]]) -> FuzzReport:
    """Probe committed corpus entries verbatim (the regression pass)."""
    report = FuzzReport(seed=-1)
    for name, data in entries:
        outcome, crash = probe(data, name)
        report.iterations += 1
        report.mutation_counts[name] = 1
        if crash is not None:
            report.crashes.append(crash)
        elif outcome == "accepted":
            report.accepted += 1
        else:
            report.rejected += 1
    return report
