"""Scaling benches: reference population (decision 7) and crowd churn.

**Reference scaling** (DESIGN.md decision 7): the seed gave every tag
reference a private OS thread (the paper-literal reading of "its own
thread of control"), so 1,000 live references cost 1,000 threads plus
polling wakeups while tags are out of range. The reactor multiplexes
all logical loops onto a bounded pool, so the same population must fit
in a bounded thread budget and burn (near) zero CPU while idle.

Three measurements:

* throughput -- a write+read per reference across 1,000 concurrent
  references, with the runtime thread count sampled mid-flight (must
  stay at or under ``MAX_RUNTIME_THREADS``; the seed needed >= 1,000);
* idle CPU, reactor -- 1,000 references each parked on an absent tag
  with a pending write: every logical loop sits on the deadline heap,
  so a half-second window should cost almost no process CPU;
* idle CPU, threaded -- the legacy mode with only a tenth of the
  population, which still out-burns the reactor because each thread
  polls its wait slice.

**Crowd churn** (the fair-scheduling substrate at scale): 100 devices x
1,000 tags sweeping through fields under the two churn generators
(turnstile rush, warehouse conveyor) -- a full-speed pass measures bulk
field-mutation throughput, and a paced pass with instrumented
references on one gate reports head-of-line metrics (time-to-first-
service, starvation ticks) from the scheduler's own telemetry while the
crowd churns around it.

Both benches merge their rows into ``BENCH_scaling.json``.
"""

import threading
import time

from repro.concurrent import EventLog
from repro.harness.crowd import run_churn, turnstile_rush, warehouse_conveyor
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.metrics import percentile
from repro.tags.factory import make_tags

from benchmarks.conftest import emit_bench_json
from tests.conftest import PlainNfcActivity, make_reference

REFERENCES = 1000
MAX_RUNTIME_THREADS = 64
IDLE_WINDOW_SECONDS = 0.5
THREADED_POPULATION = 100  # a tenth of the reactor population
PARK_TIMEOUT = 120.0  # pending-write timeout while tags are absent

# Crowd-churn population: the acceptance floor is 100 devices x 1,000
# churning tags in one process.
CROWD_DEVICES = 100
CROWD_TAGS = 1000
INSTRUMENTED_TAGS = 8

_PAYLOAD = {}


def _idle_cpu(wall_seconds: float) -> float:
    """Process CPU seconds consumed while this thread sleeps."""
    start = time.process_time()
    time.sleep(wall_seconds)
    return time.process_time() - start


def _run_reactor_population() -> dict:
    with Scenario() as scenario:
        phone = scenario.add_phone("scale")
        activity = scenario.start(phone, PlainNfcActivity)
        tags = make_tags(REFERENCES)
        for tag in tags:
            scenario.put(tag, phone)
        threads_before = threading.active_count()
        references = [make_reference(activity, tag, phone) for tag in tags]

        done = EventLog()
        started = time.monotonic()
        for index, reference in enumerate(references):
            reference.write(
                f"w{index}", on_written=lambda r: done.append(1), timeout=60.0
            )
            reference.read(on_read=lambda r: done.append(1), timeout=60.0)
        threads_during = threading.active_count()
        assert done.wait_for_count(2 * REFERENCES, timeout=120)
        elapsed = time.monotonic() - started
        threads_peak = max(threads_during, threading.active_count())

        # Idle phase: every reference holds one pending write on a tag
        # that has left the field; the logical loops all park on the
        # reactor's deadline heap.
        for tag in tags:
            scenario.take(tag, phone)
        for reference in references:
            reference.write("parked", timeout=PARK_TIMEOUT)
        time.sleep(0.2)  # let every task take its absent-tag step
        idle_cpu = _idle_cpu(IDLE_WINDOW_SECONDS)

        return {
            "references": REFERENCES,
            "ops_completed": 2 * REFERENCES,
            "elapsed_seconds": elapsed,
            "ops_per_second": (2 * REFERENCES) / elapsed,
            "threads_before": threads_before,
            "threads_peak": threads_peak,
            "reactor_workers": phone.reactor.thread_count,
            "reactor_max_workers": phone.reactor.max_workers,
            "idle_cpu_seconds": idle_cpu,
        }


def _run_threaded_population() -> dict:
    with Scenario() as scenario:
        phone = scenario.add_phone("threaded-scale")
        activity = scenario.start(phone, PlainNfcActivity)
        tags = make_tags(THREADED_POPULATION)  # never enter the field
        references = [
            make_reference(activity, tag, phone, threaded=True) for tag in tags
        ]
        for reference in references:
            reference.write("parked", timeout=PARK_TIMEOUT)
        time.sleep(0.2)
        idle_cpu = _idle_cpu(IDLE_WINDOW_SECONDS)
        return {
            "references": THREADED_POPULATION,
            "threads": threading.active_count(),
            "idle_cpu_seconds": idle_cpu,
        }


def test_thousand_references_bounded_threads(benchmark):
    reactor, threaded = benchmark.pedantic(
        lambda: (_run_reactor_population(), _run_threaded_population()),
        rounds=1,
        iterations=1,
    )

    table = Table(
        f"Reference scaling -- {REFERENCES} concurrent references on the "
        "reactor pool vs the legacy thread-per-reference mode",
        ["measure", "reactor", f"threaded (x{THREADED_POPULATION} refs)"],
    )
    table.add_row("peak runtime threads", reactor["threads_peak"], threaded["threads"])
    table.add_row("ops/second", round(reactor["ops_per_second"]), "-")
    table.add_row(
        f"idle CPU over {IDLE_WINDOW_SECONDS}s (s)",
        round(reactor["idle_cpu_seconds"], 4),
        round(threaded["idle_cpu_seconds"], 4),
    )
    table.print()

    _PAYLOAD["reference_scaling"] = {
        "references": REFERENCES,
        "max_runtime_threads": MAX_RUNTIME_THREADS,
        "ops_completed": reactor["ops_completed"],
        "ops_per_second": reactor["ops_per_second"],
        "threads_peak": reactor["threads_peak"],
        "reactor_workers": reactor["reactor_workers"],
        "reactor_max_workers": reactor["reactor_max_workers"],
        "idle_cpu_seconds_reactor": reactor["idle_cpu_seconds"],
        "idle_cpu_seconds_threaded": threaded["idle_cpu_seconds"],
        "threaded_population": threaded["references"],
        "threaded_threads": threaded["threads"],
        "idle_window_seconds": IDLE_WINDOW_SECONDS,
    }
    emit_bench_json("scaling", _PAYLOAD)

    # 1,000 concurrent references fit in the bounded thread budget; the
    # seed's thread-per-reference design needed >= 1,000 threads here.
    assert reactor["threads_peak"] <= MAX_RUNTIME_THREADS
    assert reactor["ops_completed"] == 2 * REFERENCES
    # Parked references cost (nearly) nothing: even with 10x the
    # population, the reactor's idle CPU stays under the threaded mode's.
    assert reactor["idle_cpu_seconds"] < threaded["idle_cpu_seconds"]


# -- crowd churn -------------------------------------------------------------------


def _first_visits(schedule):
    """The first ``INSTRUMENTED_TAGS`` distinct tags to enter any gate,
    as ``(tag_index, device_index)`` of each tag's first visit."""
    visits = {}
    for event in schedule:
        if not event.enter:
            continue
        for tag_index in event.tag_indices:
            if tag_index not in visits:
                visits[tag_index] = event.device_index
                if len(visits) == INSTRUMENTED_TAGS:
                    return list(visits.items())
    return list(visits.items())


def _run_crowd_scenario(full_schedule, paced_schedule) -> dict:
    """One churn scenario: a full-speed bulk-mutation pass over the
    whole population, then a paced pass with instrumented references on
    the gates the probe tags visit first (head-of-line telemetry)."""
    with Scenario() as scenario:
        phones = scenario.add_phones(CROWD_DEVICES, prefix="gate")
        tags = scenario.add_tags(CROWD_TAGS)

        full_stats = run_churn(scenario, full_schedule, devices=phones, tags=tags)

        probes = _first_visits(paced_schedule)
        activities = {}
        served = EventLog()
        probe_refs = []
        for tag_index, device_index in probes:
            phone = phones[device_index]
            if device_index not in activities:
                activities[device_index] = scenario.start(phone, PlainNfcActivity)
            reference = make_reference(
                activities[device_index], tags[tag_index], phone
            )
            reference.write(
                "hol-probe", timeout=120.0, on_written=lambda _r: served.append(1)
            )
            probe_refs.append((tag_index, device_index))
        paced_stats = run_churn(
            scenario, paced_schedule, time_scale=1.0, devices=phones, tags=tags
        )
        scenario.sync_all()

        ttfs_sample = []
        starvation_ticks = 0
        for tag_index, device_index in probe_refs:
            snapshot = phones[device_index].tx_scheduler.stats_snapshot()
            row = snapshot["tags"].get(tags[tag_index].uid_hex)
            if row is None:
                continue
            starvation_ticks += row["starvation_ticks"]
            if row["time_to_first_service"] is not None:
                ttfs_sample.append(row["time_to_first_service"])

        return {
            "devices": CROWD_DEVICES,
            "tags": CROWD_TAGS,
            "full_speed": full_stats.as_dict(),
            "paced": paced_stats.as_dict(),
            "probes": len(probe_refs),
            "probes_served": len(served),
            "probe_ttfs_p50_seconds": (
                round(percentile(ttfs_sample, 50), 4) if ttfs_sample else None
            ),
            "probe_ttfs_p99_seconds": (
                round(percentile(ttfs_sample, 99), 4) if ttfs_sample else None
            ),
            "probe_starvation_ticks": starvation_ticks,
        }


def test_crowd_churn_sustains_hundred_devices_thousand_tags(benchmark):
    """100 devices x 1,000 churning tags in one process, with
    head-of-line metrics reported per scenario."""
    scenarios = {
        "turnstile_rush": (
            turnstile_rush(
                CROWD_DEVICES,
                CROWD_TAGS,
                duration_seconds=5.0,
                arrivals_per_second=500.0,
                seed=21,
            ),
            turnstile_rush(
                CROWD_DEVICES,
                CROWD_TAGS,
                duration_seconds=1.2,
                arrivals_per_second=200.0,
                dwell_seconds=(0.1, 0.3),
                seed=11,
            ),
        ),
        "warehouse_conveyor": (
            warehouse_conveyor(CROWD_DEVICES, CROWD_TAGS, cohort_size=10, seed=22),
            warehouse_conveyor(
                CROWD_DEVICES,
                80,
                cohort_size=8,
                belt_stride_seconds=0.01,
                gate_dwell_seconds=0.1,
                cohort_gap_seconds=0.02,
                seed=12,
            ),
        ),
    }

    def run_all():
        return {
            name: _run_crowd_scenario(full, paced)
            for name, (full, paced) in scenarios.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        f"Crowd churn -- {CROWD_DEVICES} devices x {CROWD_TAGS} tags, "
        "bulk field mutations + instrumented head-of-line probes",
        [
            "scenario",
            "moves/s (full speed)",
            "peak field",
            "probes served",
            "TTFS p99 (s)",
            "starvation",
        ],
    )
    for name, row in results.items():
        table.add_row(
            name,
            round(row["full_speed"]["moves_per_second"]),
            row["full_speed"]["peak_field_size"],
            f"{row['probes_served']}/{row['probes']}",
            row["probe_ttfs_p99_seconds"],
            row["probe_starvation_ticks"],
        )
    table.print()

    for name, row in results.items():
        # The full-speed pass really exercised the crowd...
        assert row["full_speed"]["events"] > 0
        assert row["full_speed"]["tag_moves"] >= CROWD_TAGS
        assert row["full_speed"]["moves_per_second"] > 5_000
        # ...and the paced pass produced live head-of-line telemetry.
        assert row["probes"] == INSTRUMENTED_TAGS
        assert row["probes_served"] >= INSTRUMENTED_TAGS // 2
        if row["probe_ttfs_p99_seconds"] is not None:
            assert row["probe_ttfs_p99_seconds"] < 1.0

    _PAYLOAD["crowd_churn"] = results
    emit_bench_json("scaling", _PAYLOAD)
