"""Scaling bench for DESIGN.md decision 7: the reactor scheduler.

The seed gave every tag reference a private OS thread (the paper-literal
reading of "its own thread of control"), so 1,000 live references cost
1,000 threads plus polling wakeups while tags are out of range. The
reactor multiplexes all logical loops onto a bounded pool, so the same
population must fit in a bounded thread budget and burn (near) zero CPU
while idle.

Three measurements, emitted to ``BENCH_scaling.json``:

* throughput -- a write+read per reference across 1,000 concurrent
  references, with the runtime thread count sampled mid-flight (must
  stay at or under ``MAX_RUNTIME_THREADS``; the seed needed >= 1,000);
* idle CPU, reactor -- 1,000 references each parked on an absent tag
  with a pending write: every logical loop sits on the deadline heap,
  so a half-second window should cost almost no process CPU;
* idle CPU, threaded -- the legacy mode with only a tenth of the
  population, which still out-burns the reactor because each thread
  polls its wait slice.
"""

import threading
import time

from repro.concurrent import EventLog
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.tags.factory import make_tags

from benchmarks.conftest import emit_bench_json
from tests.conftest import PlainNfcActivity, make_reference

REFERENCES = 1000
MAX_RUNTIME_THREADS = 64
IDLE_WINDOW_SECONDS = 0.5
THREADED_POPULATION = 100  # a tenth of the reactor population
PARK_TIMEOUT = 120.0  # pending-write timeout while tags are absent


def _idle_cpu(wall_seconds: float) -> float:
    """Process CPU seconds consumed while this thread sleeps."""
    start = time.process_time()
    time.sleep(wall_seconds)
    return time.process_time() - start


def _run_reactor_population() -> dict:
    with Scenario() as scenario:
        phone = scenario.add_phone("scale")
        activity = scenario.start(phone, PlainNfcActivity)
        tags = make_tags(REFERENCES)
        for tag in tags:
            scenario.put(tag, phone)
        threads_before = threading.active_count()
        references = [make_reference(activity, tag, phone) for tag in tags]

        done = EventLog()
        started = time.monotonic()
        for index, reference in enumerate(references):
            reference.write(
                f"w{index}", on_written=lambda r: done.append(1), timeout=60.0
            )
            reference.read(on_read=lambda r: done.append(1), timeout=60.0)
        threads_during = threading.active_count()
        assert done.wait_for_count(2 * REFERENCES, timeout=120)
        elapsed = time.monotonic() - started
        threads_peak = max(threads_during, threading.active_count())

        # Idle phase: every reference holds one pending write on a tag
        # that has left the field; the logical loops all park on the
        # reactor's deadline heap.
        for tag in tags:
            scenario.take(tag, phone)
        for reference in references:
            reference.write("parked", timeout=PARK_TIMEOUT)
        time.sleep(0.2)  # let every task take its absent-tag step
        idle_cpu = _idle_cpu(IDLE_WINDOW_SECONDS)

        return {
            "references": REFERENCES,
            "ops_completed": 2 * REFERENCES,
            "elapsed_seconds": elapsed,
            "ops_per_second": (2 * REFERENCES) / elapsed,
            "threads_before": threads_before,
            "threads_peak": threads_peak,
            "reactor_workers": phone.reactor.thread_count,
            "reactor_max_workers": phone.reactor.max_workers,
            "idle_cpu_seconds": idle_cpu,
        }


def _run_threaded_population() -> dict:
    with Scenario() as scenario:
        phone = scenario.add_phone("threaded-scale")
        activity = scenario.start(phone, PlainNfcActivity)
        tags = make_tags(THREADED_POPULATION)  # never enter the field
        references = [
            make_reference(activity, tag, phone, threaded=True) for tag in tags
        ]
        for reference in references:
            reference.write("parked", timeout=PARK_TIMEOUT)
        time.sleep(0.2)
        idle_cpu = _idle_cpu(IDLE_WINDOW_SECONDS)
        return {
            "references": THREADED_POPULATION,
            "threads": threading.active_count(),
            "idle_cpu_seconds": idle_cpu,
        }


def test_thousand_references_bounded_threads(benchmark):
    reactor, threaded = benchmark.pedantic(
        lambda: (_run_reactor_population(), _run_threaded_population()),
        rounds=1,
        iterations=1,
    )

    table = Table(
        f"Reference scaling -- {REFERENCES} concurrent references on the "
        "reactor pool vs the legacy thread-per-reference mode",
        ["measure", "reactor", f"threaded (x{THREADED_POPULATION} refs)"],
    )
    table.add_row("peak runtime threads", reactor["threads_peak"], threaded["threads"])
    table.add_row("ops/second", round(reactor["ops_per_second"]), "-")
    table.add_row(
        f"idle CPU over {IDLE_WINDOW_SECONDS}s (s)",
        round(reactor["idle_cpu_seconds"], 4),
        round(threaded["idle_cpu_seconds"], 4),
    )
    table.print()

    emit_bench_json(
        "scaling",
        {
            "references": REFERENCES,
            "max_runtime_threads": MAX_RUNTIME_THREADS,
            "ops_completed": reactor["ops_completed"],
            "ops_per_second": reactor["ops_per_second"],
            "threads_peak": reactor["threads_peak"],
            "reactor_workers": reactor["reactor_workers"],
            "reactor_max_workers": reactor["reactor_max_workers"],
            "idle_cpu_seconds_reactor": reactor["idle_cpu_seconds"],
            "idle_cpu_seconds_threaded": threaded["idle_cpu_seconds"],
            "threaded_population": threaded["references"],
            "threaded_threads": threaded["threads"],
            "idle_window_seconds": IDLE_WINDOW_SECONDS,
        },
    )

    # 1,000 concurrent references fit in the bounded thread budget; the
    # seed's thread-per-reference design needed >= 1,000 threads here.
    assert reactor["threads_peak"] <= MAX_RUNTIME_THREADS
    assert reactor["ops_completed"] == 2 * REFERENCES
    # Parked references cost (nearly) nothing: even with 10x the
    # population, the reactor's idle CPU stays under the threaded mode's.
    assert reactor["idle_cpu_seconds"] < threaded["idle_cpu_seconds"]
