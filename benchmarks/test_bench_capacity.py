"""Capacity planning: which tag models hold which payloads.

Not a figure from the paper, but the deployment question its system
raises immediately: a *thing* costs JSON + NDEF overhead, and the cheap
sticker models are small. This bench builds WiFi-config things with
increasingly long keys plus the interop handover format, and reports
which simulated tag models accept each -- the table a deployment guide
would print.
"""

import json

from repro.apps.wifi.interop import router_sticker
from repro.errors import TagCapacityError
from repro.harness.report import Table
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.factory import make_tag
from repro.tags.type4 import make_type4_tag

MODELS = ["MIFARE_ULTRALIGHT", "NTAG213", "NTAG215", "NTAG216"]
KEY_LENGTHS = [8, 63, 200]
WIFI_MIME = "application/vnd.morena.wificonfig"


def thing_message(key_length: int) -> NdefMessage:
    payload = json.dumps(
        {"ssid": "a-realistic-network-name", "key": "k" * key_length},
        sort_keys=True,
    ).encode()
    return NdefMessage([mime_record(WIFI_MIME, payload)])


def fits(model: str, message: NdefMessage) -> bool:
    try:
        if model.startswith("TYPE4"):
            make_type4_tag(model, content=message)
        else:
            make_tag(model, content=message)
        return True
    except TagCapacityError:
        return False


def test_payload_fit_by_model(benchmark):
    payloads = {
        f"thing (key {length}B)": thing_message(length) for length in KEY_LENGTHS
    }
    payloads["handover+WSC sticker"] = router_sticker(
        "a-realistic-network-name", "k" * 63
    )

    def sweep():
        return {
            name: {model: fits(model, message) for model in MODELS + ["TYPE4_2K"]}
            for name, message in payloads.items()
        }

    matrix = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        "Capacity planning -- payload vs tag model (bytes incl. overhead)",
        ["payload", "size"] + MODELS + ["TYPE4_2K"],
    )
    for name, message in payloads.items():
        row = [name, message.byte_length]
        for model in MODELS + ["TYPE4_2K"]:
            row.append("fits" if matrix[name][model] else "-")
        table.add_row(*row)
    table.print()

    # Shape: small things fit everywhere except the tiny Ultralight;
    # monstrous keys need the big models; Type 4 swallows everything here.
    small = matrix["thing (key 8B)"]
    assert small["NTAG213"] and small["NTAG215"] and small["NTAG216"]
    assert not matrix["thing (key 200B)"]["MIFARE_ULTRALIGHT"]
    assert matrix["thing (key 200B)"]["NTAG216"]
    assert all(matrix[name]["TYPE4_2K"] for name in payloads)
    # The standards format costs more bytes than the ad-hoc thing format.
    assert (
        payloads["handover+WSC sticker"].byte_length
        > payloads["thing (key 63B)"].byte_length
    )
