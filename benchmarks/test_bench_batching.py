"""Section 4 batching claim.

"In the MORENA version, multiple write operations can be batched until a
tag comes in range, while in the handcrafted solution the user can only
attempt to write as soon as a tag is in range."

Experiment: N updates are produced while the tag is away. When the tag
finally appears for one tap window, MORENA drains its whole queue in
order; the handcrafted app cannot even initiate a write without the tag,
so every update costs the user one tap.
"""

import json

from repro.apps.wifi.wifi_manager import WifiNetworkRegistry
from repro.baseline import HandcraftedWifiActivity, WifiConfigData
from repro.concurrent import EventLog, wait_until
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.harness.user import SimulatedUser
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.factory import make_tag

from tests.conftest import PlainNfcActivity, make_reference, text_tag

UPDATES = 8
WIFI_MIME = "application/vnd.morena.wificonfig"


def run_morena(coalesce: bool = False) -> tuple:
    """Returns (taps, completed writes, physical tag writes) after one
    hold window; with ``coalesce`` the queued updates collapse to the
    newest payload and land in a single physical write."""
    with Scenario() as scenario:
        phone = scenario.add_phone("phone")
        activity = scenario.start(phone, PlainNfcActivity)
        tag = text_tag("initial")
        reference = make_reference(activity, tag, phone, coalesce_writes=coalesce)
        completed = EventLog()
        for index in range(UPDATES):
            reference.write(
                f"update-{index}",
                on_written=lambda r, i=index: completed.append(i),
                timeout=30.0,
            )
        assert reference.pending_count == UPDATES  # queued, tag absent
        writes_before = phone.port.write_attempts
        user = SimulatedUser(scenario.env, phone)
        stats = user.hold_until(
            tag, done=lambda: len(completed) >= UPDATES, max_seconds=5.0
        )
        assert tag.read_ndef()[0].payload.decode() == f"update-{UPDATES - 1}"
        assert completed.snapshot() == list(range(UPDATES))  # in order
        return stats.taps, len(completed), phone.port.write_attempts - writes_before


def run_handcrafted() -> tuple:
    """One tap per update: the baseline writes only while the tag is there."""
    with Scenario() as scenario:
        registry = WifiNetworkRegistry()
        phone = scenario.add_phone("phone")
        app = scenario.start(phone, HandcraftedWifiActivity, registry)
        payload = json.dumps({"ssid": "seed", "key": "k"}).encode()
        tag = make_tag(content=NdefMessage([mime_record(WIFI_MIME, payload)]))
        taps = 0
        completed = 0
        for index in range(UPDATES):
            scenario.put(tag, phone)  # the user taps...
            taps += 1
            assert wait_until(
                lambda: (
                    phone.sync(),
                    app.join_workers(),
                    phone.sync(),
                )
                and app.last_tag is not None
            )
            config = WifiConfigData(f"update-{index}", "k")
            phone.main_looper.post(
                lambda c=config: app.rename_network(c, c.ssid, c.key)
            )
            assert wait_until(
                lambda i=index: (
                    phone.sync(),
                    app.join_workers(),
                    phone.sync(),
                )
                and json.loads(tag.read_ndef()[0].payload)["ssid"] == f"update-{i}"
            )
            completed += 1
            scenario.take(tag, phone)  # ...and withdraws between updates
            app.last_tag = None
        return taps, completed


def test_batched_writes_drain_in_one_tap(benchmark):
    morena_taps, morena_done, morena_writes = benchmark.pedantic(
        run_morena, rounds=1, iterations=1
    )
    coalesced_taps, coalesced_done, coalesced_writes = run_morena(coalesce=True)
    handcrafted_taps, handcrafted_done = run_handcrafted()

    table = Table(
        f"Section 4 batching claim -- {UPDATES} updates produced while the "
        "tag is away",
        ["variant", "taps needed", "updates applied", "tag writes"],
    )
    table.add_row("MORENA", morena_taps, morena_done, morena_writes)
    table.add_row("MORENA + coalescing", coalesced_taps, coalesced_done, coalesced_writes)
    table.add_row("handcrafted", handcrafted_taps, handcrafted_done, UPDATES)
    table.print()

    assert morena_done == UPDATES
    assert morena_taps == 1  # a single tap window drains the queue
    assert morena_writes == UPDATES
    assert coalesced_done == UPDATES  # every listener still fires...
    assert coalesced_taps == 1
    assert coalesced_writes == 1  # ...but only the newest payload lands
    assert handcrafted_done == UPDATES
    assert handcrafted_taps == UPDATES  # one tap per update
