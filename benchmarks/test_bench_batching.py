"""Section 4 batching claim.

"In the MORENA version, multiple write operations can be batched until a
tag comes in range, while in the handcrafted solution the user can only
attempt to write as soon as a tag is in range."

Experiment: N updates are produced while the tag is away. When the tag
finally appears for one tap window, MORENA drains its whole queue in
order; the handcrafted app cannot even initiate a write without the tag,
so every update costs the user one tap.
"""

import json
import time

from repro.android.nfc.tech import Tag
from repro.apps.wifi.wifi_manager import WifiNetworkRegistry
from repro.baseline import HandcraftedWifiActivity, WifiConfigData
from repro.concurrent import EventLog, wait_until
from repro.core.reference import TagReference
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.harness.user import SimulatedUser
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.radio.timing import TransferTiming
from repro.tags.factory import make_tag

from benchmarks.conftest import emit_bench_json

from tests.conftest import (
    PlainNfcActivity,
    make_reference,
    string_converters,
    text_tag,
)

UPDATES = 8
WIFI_MIME = "application/vnd.morena.wificonfig"

# Co-located window experiment: several references bound to one tag on
# one device, drained in a single tap window.
CO_LOCATED_REFS = 8
OPS_PER_REF = 2

_PAYLOAD = {}


def run_morena(coalesce: bool = False) -> tuple:
    """Returns (taps, completed writes, physical tag writes) after one
    hold window; with ``coalesce`` the queued updates collapse to the
    newest payload and land in a single physical write."""
    with Scenario() as scenario:
        phone = scenario.add_phone("phone")
        activity = scenario.start(phone, PlainNfcActivity)
        tag = text_tag("initial")
        reference = make_reference(activity, tag, phone, coalesce_writes=coalesce)
        completed = EventLog()
        for index in range(UPDATES):
            reference.write(
                f"update-{index}",
                on_written=lambda r, i=index: completed.append(i),
                timeout=30.0,
            )
        assert reference.pending_count == UPDATES  # queued, tag absent
        writes_before = phone.port.write_attempts
        user = SimulatedUser(scenario.env, phone)
        stats = user.hold_until(
            tag, done=lambda: len(completed) >= UPDATES, max_seconds=5.0
        )
        assert tag.read_ndef()[0].payload.decode() == f"update-{UPDATES - 1}"
        assert completed.snapshot() == list(range(UPDATES))  # in order
        return stats.taps, len(completed), phone.port.write_attempts - writes_before


def run_handcrafted() -> tuple:
    """One tap per update: the baseline writes only while the tag is there."""
    with Scenario() as scenario:
        registry = WifiNetworkRegistry()
        phone = scenario.add_phone("phone")
        app = scenario.start(phone, HandcraftedWifiActivity, registry)
        payload = json.dumps({"ssid": "seed", "key": "k"}).encode()
        tag = make_tag(content=NdefMessage([mime_record(WIFI_MIME, payload)]))
        taps = 0
        completed = 0
        for index in range(UPDATES):
            scenario.put(tag, phone)  # the user taps...
            taps += 1
            assert wait_until(
                lambda: (
                    phone.sync(),
                    app.join_workers(),
                    phone.sync(),
                )
                and app.last_tag is not None
            )
            config = WifiConfigData(f"update-{index}", "k")
            phone.main_looper.post(
                lambda c=config: app.rename_network(c, c.ssid, c.key)
            )
            assert wait_until(
                lambda i=index: (
                    phone.sync(),
                    app.join_workers(),
                    phone.sync(),
                )
                and json.loads(tag.read_ndef()[0].payload)["ssid"] == f"update-{i}"
            )
            completed += 1
            scenario.take(tag, phone)  # ...and withdraws between updates
            app.last_tag = None
        return taps, completed


def test_batched_writes_drain_in_one_tap(benchmark):
    morena_taps, morena_done, morena_writes = benchmark.pedantic(
        run_morena, rounds=1, iterations=1
    )
    coalesced_taps, coalesced_done, coalesced_writes = run_morena(coalesce=True)
    handcrafted_taps, handcrafted_done = run_handcrafted()

    table = Table(
        f"Section 4 batching claim -- {UPDATES} updates produced while the "
        "tag is away",
        ["variant", "taps needed", "updates applied", "tag writes"],
    )
    table.add_row("MORENA", morena_taps, morena_done, morena_writes)
    table.add_row("MORENA + coalescing", coalesced_taps, coalesced_done, coalesced_writes)
    table.add_row("handcrafted", handcrafted_taps, handcrafted_done, UPDATES)
    table.print()

    assert morena_done == UPDATES
    assert morena_taps == 1  # a single tap window drains the queue
    assert morena_writes == UPDATES
    assert coalesced_done == UPDATES  # every listener still fires...
    assert coalesced_taps == 1
    assert coalesced_writes == 1  # ...but only the newest payload lands
    assert handcrafted_done == UPDATES
    assert handcrafted_taps == UPDATES  # one tap per update

    _PAYLOAD["one_tap_drain"] = {
        "updates": UPDATES,
        "morena_taps": morena_taps,
        "coalesced_tag_writes": coalesced_writes,
        "handcrafted_taps": handcrafted_taps,
    }
    emit_bench_json("batching", _PAYLOAD)


def run_co_located_window(batched: bool) -> tuple:
    """Drain ``CO_LOCATED_REFS`` references' queues through one tap
    window under a realistic latency model; returns (wall seconds,
    physical connect rounds). Per-reference FIFO is asserted inline."""
    timing = TransferTiming(base_seconds=0.02, seconds_per_byte=1e-4)
    with Scenario(timing=timing) as scenario:
        phone = scenario.add_phone("phone")
        activity = scenario.start(phone, PlainNfcActivity)
        tag = text_tag("seed")
        read_conv, write_conv = string_converters()
        refs = [
            TagReference(
                Tag(tag, phone.port), activity, read_conv, write_conv,
                batched=batched,
            )
            for _ in range(CO_LOCATED_REFS)
        ]
        logs = [EventLog() for _ in refs]
        done = EventLog()
        for ref_index, ref in enumerate(refs):
            for op_index in range(OPS_PER_REF):
                refs[ref_index].write(
                    f"r{ref_index}-o{op_index}",
                    on_written=lambda _r, ri=ref_index, oi=op_index: (
                        logs[ri].append(oi),
                        done.append(1),
                    ),
                    timeout=30.0,
                )
        connects_before = phone.port.connects
        start = time.perf_counter()
        scenario.put(tag, phone)
        assert done.wait_for_count(CO_LOCATED_REFS * OPS_PER_REF, timeout=30)
        elapsed = time.perf_counter() - start
        for log in logs:  # settlement stayed FIFO within each reference
            assert log.snapshot() == list(range(OPS_PER_REF))
        return elapsed, phone.port.connects - connects_before


def test_co_located_references_share_one_connect_per_window(benchmark):
    unbatched_seconds, unbatched_connects = run_co_located_window(batched=False)
    batched_seconds, batched_connects = benchmark.pedantic(
        run_co_located_window, args=(True,), rounds=1, iterations=1
    )

    total_ops = CO_LOCATED_REFS * OPS_PER_REF
    speedup = unbatched_seconds / batched_seconds
    table = Table(
        f"Per-port transaction scheduler -- {CO_LOCATED_REFS} co-located "
        f"references x {OPS_PER_REF} writes, one tap window",
        ["variant", "seconds", "ops/s", "connect rounds"],
    )
    table.add_row(
        "standalone", round(unbatched_seconds, 3),
        round(total_ops / unbatched_seconds, 1), unbatched_connects,
    )
    table.add_row(
        "batched window", round(batched_seconds, 3),
        round(total_ops / batched_seconds, 1), batched_connects,
    )
    table.print()

    assert batched_connects == 1  # one connect served the whole window
    assert unbatched_connects == total_ops
    assert speedup >= 2.0

    _PAYLOAD["co_located_window"] = {
        "references": CO_LOCATED_REFS,
        "ops_per_reference": OPS_PER_REF,
        "batched_seconds": round(batched_seconds, 4),
        "unbatched_seconds": round(unbatched_seconds, 4),
        "batched_ops_per_second": round(total_ops / batched_seconds, 1),
        "unbatched_ops_per_second": round(total_ops / unbatched_seconds, 1),
        "batched_connects": batched_connects,
        "unbatched_connects": unbatched_connects,
        "speedup": round(speedup, 2),
        "per_reference_fifo": True,
    }
    emit_bench_json("batching", _PAYLOAD)
