"""Ablation for DESIGN.md decision 1: per-reference event loops.

The paper gives every far reference its *own* thread of control. The
obvious cheaper design is one shared FIFO worker for all tags -- but a
shared queue head-of-line blocks across tags: while the worker retries
an absent tag's operation, a present tag's operation starves.

This bench stages exactly that situation: tag A is away (its write can
only retry), tag B is in the field. MORENA's per-reference loops finish
B's write immediately; a faithful shared-FIFO executor (implemented
inline below, driving the same port operations) makes B wait until A's
operation times out.
"""

import threading
import time
from collections import deque

from repro.concurrent import EventLog
from repro.errors import RadioError
from repro.harness.report import Table
from repro.harness.scenario import Scenario

from tests.conftest import PlainNfcActivity, make_reference, text_message, text_tag

A_TIMEOUT = 0.4  # how long the absent tag's operation occupies the queue


class SharedFifoExecutor:
    """The alternative design: one worker, one queue for every tag."""

    def __init__(self, port) -> None:
        self._port = port
        self._queue = deque()
        self._cond = threading.Condition()
        self._stopped = False
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def submit_write(self, tag, message, deadline, on_done) -> None:
        with self._cond:
            self._queue.append((tag, message, deadline, on_done))
            self._cond.notify_all()

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        self._thread.join(2.0)

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait()
                if self._stopped:
                    return
                tag, message, deadline, on_done = self._queue[0]
            # Head-of-line: retry the head until success or deadline.
            while time.monotonic() < deadline:
                try:
                    self._port.write_ndef(tag, message)
                    on_done(True)
                    break
                except RadioError:
                    time.sleep(0.02)
            else:
                on_done(False)
            with self._cond:
                if self._queue:
                    self._queue.popleft()


def b_latency_shared() -> float:
    with Scenario() as scenario:
        phone = scenario.add_phone("shared")
        tag_a = text_tag("a")  # never in the field
        tag_b = text_tag("b")
        scenario.put(tag_b, phone)
        executor = SharedFifoExecutor(phone.port)
        try:
            done_b = EventLog()
            start = time.monotonic()
            executor.submit_write(
                tag_a, text_message("to-a"), start + A_TIMEOUT, lambda ok: None
            )
            executor.submit_write(
                tag_b,
                text_message("to-b"),
                start + 5.0,
                lambda ok: done_b.append(time.monotonic() - start),
            )
            assert done_b.wait_for_count(1, timeout=10)
            assert tag_b.read_ndef()[0].payload == b"to-b"
            return done_b.snapshot()[0]
        finally:
            executor.stop()


def b_latency_morena(threaded: bool = False) -> float:
    with Scenario() as scenario:
        phone = scenario.add_phone("morena")
        activity = scenario.start(phone, PlainNfcActivity)
        tag_a = text_tag("a")  # never in the field
        tag_b = text_tag("b")
        scenario.put(tag_b, phone)
        ref_a = make_reference(activity, tag_a, phone, threaded=threaded)
        ref_b = make_reference(activity, tag_b, phone, threaded=threaded)
        done_b = EventLog()
        start = time.monotonic()
        ref_a.write("to-a", timeout=A_TIMEOUT)
        ref_b.write(
            "to-b",
            on_written=lambda r: done_b.append(time.monotonic() - start),
            timeout=5.0,
        )
        assert done_b.wait_for_count(1, timeout=10)
        assert tag_b.read_ndef()[0].payload == b"to-b"
        return done_b.snapshot()[0]


def test_no_cross_tag_head_of_line_blocking(benchmark):
    shared_ms, reactor_ms, threaded_ms = benchmark.pedantic(
        lambda: (
            b_latency_shared() * 1000,
            b_latency_morena() * 1000,
            b_latency_morena(threaded=True) * 1000,
        ),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Event-loop ablation -- latency of a present tag's write while an "
        f"absent tag's write retries for {A_TIMEOUT * 1000:.0f} ms",
        ["design", "write latency (ms)"],
    )
    table.add_row("shared FIFO executor", round(shared_ms, 1))
    table.add_row("per-reference loops (reactor pool)", round(reactor_ms, 1))
    table.add_row("per-reference loops (thread each)", round(threaded_ms, 1))
    table.print()

    # The shared worker holds B hostage for roughly A's whole timeout.
    assert shared_ms >= A_TIMEOUT * 1000 * 0.8
    # Per-reference loops finish B in a fraction of that -- in both the
    # default reactor mode and the legacy thread-per-reference mode.
    assert reactor_ms < shared_ms / 3
    assert threaded_ms < shared_ms / 3
