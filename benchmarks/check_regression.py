"""Bench regression guard: fresh BENCH JSON vs the committed baseline.

The bench smoke job regenerates ``benchmarks/BENCH_*.json`` on every
run; this script compares selected rows of the *fresh* files against
the values committed at ``HEAD`` (via ``git show``) and fails on any
row that moved past its tolerance in the bad direction. The committed
JSON is the regression baseline: a PR that degrades a guarded path must
either fix the regression or consciously commit the new numbers.

Each guarded row declares its own direction and tolerance:

* ``higher`` rows (throughput, density) fail when the fresh value drops
  more than ``tolerance`` below the committed one;
* ``lower`` rows (latency percentiles) fail when the fresh value rises
  more than ``tolerance`` above it.

Guarded rows:

* ``BENCH_batching.json`` ``co_located_window.batched_ops_per_second``
  and ``co_located_window.speedup`` -- PR 5's batched-throughput
  numbers, which the cross-tag fairness work must not tax;
* ``BENCH_fairness.json``
  ``hot_cold_field.policies.deficit.cold_ttfs_p99_seconds`` -- the
  deficit policy's cold-tag time-to-first-service tail: the fairness
  property itself, guarded as a latency (lower is better);
* ``BENCH_scaling.json`` ``reference_scaling.ops_per_second`` -- bulk
  reference throughput on the reactor pool (loose tolerance: it is
  CPU-bound, so noisier across machines than the sleep-bound rows);
* ``BENCH_async.json`` ``idle_density.density_ratio`` -- how many more
  idle references per MB the asyncio backend packs vs
  thread-per-reference (the 100k-references tentpole);
* ``BENCH_lint.json`` ``repo_lint.wall_seconds`` -- the repo-wide
  morelint sweep: flow-aware analysis must stay interactive (very
  loose tolerance, wall time on shared runners is noisy);
* ``BENCH_transport.json`` ``relay_roundtrip.overhead_ratio`` -- the
  relayed-vs-local round-trip cost ratio, measured in deterministic
  virtual seconds on a ManualClock (tight tolerance: zero noise);
* ``BENCH_gateway.json`` ``fleet_10k.events_per_second`` (higher) and
  ``fleet_10k.ingest_p99_seconds`` (lower) -- the 10k-device fleet
  replay's sustained ingestion rate and queue-wait tail, plus
  ``shard_ablation.speedup`` (higher) -- how much the N-shard layout
  out-ingests one shard under the same producer pressure. All three
  are wall-clock under thread contention, so tolerances are generous.

Usage::

    python benchmarks/check_regression.py [--tolerance 0.10]

``--tolerance`` overrides the *default* tolerance; rows that declare
their own keep it. Exits 0 when all guarded rows hold (or no committed
baseline exists yet, e.g. on the first run of a new bench), 1 on
regression, 2 when a fresh file is missing (the bench did not run).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from dataclasses import dataclass
from typing import Optional

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


@dataclass(frozen=True)
class GuardedRow:
    file: str
    path: str  # dotted path into the payload
    direction: str = "higher"  # "higher" | "lower" is better
    tolerance: Optional[float] = None  # None -> the CLI default


GUARDED_ROWS = [
    GuardedRow("BENCH_batching.json", "co_located_window.batched_ops_per_second"),
    GuardedRow("BENCH_batching.json", "co_located_window.speedup"),
    GuardedRow(
        "BENCH_fairness.json",
        "hot_cold_field.policies.deficit.cold_ttfs_p99_seconds",
        direction="lower",
        tolerance=0.25,  # a p99 under scheduler churn: some spread expected
    ),
    GuardedRow(
        "BENCH_scaling.json",
        "reference_scaling.ops_per_second",
        tolerance=0.50,  # CPU-bound: machine-to-machine spread is real
    ),
    GuardedRow(
        "BENCH_async.json",
        "idle_density.density_ratio",
        tolerance=0.20,  # RSS-derived: page-rounding wiggle across kernels
    ),
    GuardedRow(
        "BENCH_lint.json",
        "repo_lint.wall_seconds",
        direction="lower",
        tolerance=1.00,  # wall time doubles before this trips
    ),
    GuardedRow(
        "BENCH_transport.json",
        "relay_roundtrip.overhead_ratio",
        direction="lower",
        # Virtual-time bench: deterministic to the float digit, so any
        # drift at all is a real cost-model change, not noise.
        tolerance=0.01,
    ),
    GuardedRow(
        "BENCH_gateway.json",
        "fleet_10k.events_per_second",
        tolerance=0.50,  # wall-clock under thread contention
    ),
    GuardedRow(
        "BENCH_gateway.json",
        "fleet_10k.ingest_p99_seconds",
        direction="lower",
        tolerance=1.00,  # a queue-wait tail: doubles before tripping
    ),
    GuardedRow(
        "BENCH_gateway.json",
        "shard_ablation.speedup",
        tolerance=0.35,  # the sharding win itself must not erode
    ),
]


def committed_json(name: str) -> dict | None:
    """The file as committed at HEAD, or None if it isn't in git yet."""
    result = subprocess.run(
        ["git", "show", f"HEAD:benchmarks/{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return None
    return json.loads(result.stdout)


def dig(payload: dict, dotted: str):
    value = payload
    for key in dotted.split("."):
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def check_row(
    row: GuardedRow, baseline: float, fresh: float, default_tolerance: float
) -> tuple[bool, float]:
    """Whether ``fresh`` holds against ``baseline``; returns (ok, bound)."""
    tolerance = row.tolerance if row.tolerance is not None else default_tolerance
    if row.direction == "lower":
        ceiling = baseline * (1.0 + tolerance)
        return fresh <= ceiling, ceiling
    floor = baseline * (1.0 - tolerance)
    return fresh >= floor, floor


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="default max fractional drift for rows without their own "
        "(default 0.10)",
    )
    args = parser.parse_args()

    failures = []
    checked = 0
    for row in GUARDED_ROWS:
        fresh_path = BENCH_DIR / row.file
        if not fresh_path.exists():
            print(f"regression guard: {row.file} missing -- did the bench run?")
            return 2
        fresh = dig(json.loads(fresh_path.read_text()), row.path)
        baseline_payload = committed_json(row.file)
        if baseline_payload is None:
            print(f"{row.file}: no committed baseline yet, skipping")
            continue
        baseline = dig(baseline_payload, row.path)
        if baseline is None or fresh is None:
            print(
                f"{row.file}:{row.path}: row absent "
                f"(baseline={baseline}, fresh={fresh})"
            )
            continue
        checked += 1
        ok, bound = check_row(row, baseline, fresh, args.tolerance)
        bound_label = "ceiling" if row.direction == "lower" else "floor"
        verdict = "ok" if ok else "REGRESSION"
        print(
            f"{row.file}:{row.path} ({row.direction} is better): "
            f"committed={baseline} fresh={fresh} {bound_label}={bound:.2f} "
            f"-> {verdict}"
        )
        if not ok:
            failures.append((row.file, row.path, baseline, fresh))

    if failures:
        print(
            f"\n{len(failures)} guarded bench row(s) drifted past their "
            "tolerance in the bad direction."
        )
        return 1
    print(f"\nregression guard: {checked} row(s) checked, all within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
