"""Bench regression guard: fresh BENCH JSON vs the committed baseline.

The bench smoke job regenerates ``benchmarks/BENCH_*.json`` on every
run; this script compares selected throughput rows of the *fresh* files
against the values committed at ``HEAD`` (via ``git show``) and fails if
any dropped more than the tolerance. The committed JSON is the
regression baseline: a PR that slows the batched path down must either
fix the regression or consciously commit the new numbers.

Guarded rows (all sleep-bound under the simulated latency model, so
they are stable across machines):

* ``BENCH_batching.json`` ``co_located_window.batched_ops_per_second``
  and ``co_located_window.speedup`` -- PR 5's batched-throughput
  numbers, which the cross-tag fairness work must not tax.

Usage::

    python benchmarks/check_regression.py [--tolerance 0.10]

Exits 0 when all guarded rows hold (or no committed baseline exists
yet, e.g. on the first run of a new bench), 1 on regression, 2 when a
fresh file is missing (the bench did not run).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

# (file, dotted row path) -> higher is better; guard against drops.
GUARDED_ROWS = [
    ("BENCH_batching.json", "co_located_window.batched_ops_per_second"),
    ("BENCH_batching.json", "co_located_window.speedup"),
]


def committed_json(name: str) -> dict | None:
    """The file as committed at HEAD, or None if it isn't in git yet."""
    result = subprocess.run(
        ["git", "show", f"HEAD:benchmarks/{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return None
    return json.loads(result.stdout)


def dig(payload: dict, dotted: str):
    value = payload
    for key in dotted.split("."):
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="max fractional drop vs the committed value (default 0.10)",
    )
    args = parser.parse_args()

    failures = []
    checked = 0
    for name, row in GUARDED_ROWS:
        fresh_path = BENCH_DIR / name
        if not fresh_path.exists():
            print(f"regression guard: {name} missing -- did the bench run?")
            return 2
        fresh = dig(json.loads(fresh_path.read_text()), row)
        baseline_payload = committed_json(name)
        if baseline_payload is None:
            print(f"{name}: no committed baseline yet, skipping")
            continue
        baseline = dig(baseline_payload, row)
        if baseline is None or fresh is None:
            print(f"{name}:{row}: row absent (baseline={baseline}, fresh={fresh})")
            continue
        checked += 1
        floor = baseline * (1.0 - args.tolerance)
        verdict = "ok" if fresh >= floor else "REGRESSION"
        print(
            f"{name}:{row}: committed={baseline} fresh={fresh} "
            f"floor={floor:.2f} -> {verdict}"
        )
        if fresh < floor:
            failures.append((name, row, baseline, fresh))

    if failures:
        print(
            f"\n{len(failures)} guarded bench row(s) dropped more than "
            f"{args.tolerance:.0%} below the committed baseline."
        )
        return 1
    print(f"\nregression guard: {checked} row(s) checked, all within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
