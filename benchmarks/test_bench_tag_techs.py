"""Tag-technology ablation: Type 2 vs Type 4 under torn writes.

Both technologies ride the same MORENA stack, but they fail differently:
a torn Type 2 write leaves a truncated TLV (the tag is *unreadable* until
rewritten), while Type 4's safe-update sequence (NLEN=0, data, NLEN)
leaves a *valid empty* tag. This bench tears one write on each
technology and reports what a subsequent reader finds, then measures the
protocol cost Type 4 pays for that atomicity (APDU round-trips per
operation).
"""

from repro.concurrent import EventLog
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.radio.link import FlakyThenGoodLink
from repro.tags.factory import make_tag
from repro.tags.type4 import make_type4_tag

from tests.conftest import PlainNfcActivity, make_reference

PAYLOAD_TYPE = "application/x-tech-bench"


def message(text: str) -> NdefMessage:
    return NdefMessage([mime_record(PAYLOAD_TYPE, text.encode())])


def tear_one_write(tag) -> str:
    """Tear a write on ``tag``; classify what a later read finds."""
    from repro.errors import TagFormatError, TagLostError

    with Scenario() as scenario:
        phone = scenario.add_phone("phone", link=FlakyThenGoodLink(1))
        phone.port.corrupt_on_tear = True
        scenario.put(tag, phone)
        try:
            phone.port.write_ndef(tag, message("replacement"))
        except TagLostError:
            pass
        try:
            after = phone.port.read_ndef(tag)
        except TagFormatError:
            return "unreadable"
        return "empty" if after.is_empty else "intact"


def test_torn_write_aftermath(benchmark):
    outcomes = benchmark.pedantic(
        lambda: {
            "Type 2 (NTAG216)": tear_one_write(
                make_tag("NTAG216", content=message("original"))
            ),
            "Type 4 (TYPE4_2K)": tear_one_write(
                make_type4_tag("TYPE4_2K", content=message("original"))
            ),
        },
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Tag-tech ablation -- what a reader finds after one torn write",
        ["technology", "tag state"],
    )
    for technology, state in outcomes.items():
        table.add_row(technology, state)
    table.print()

    assert outcomes["Type 2 (NTAG216)"] == "unreadable"
    assert outcomes["Type 4 (TYPE4_2K)"] == "empty"  # valid, just empty


def test_morena_recovers_both_technologies(benchmark):
    """Whatever the tear leaves behind, the retrying reference heals it."""

    def recover(tag) -> bool:
        with Scenario() as scenario:
            phone = scenario.add_phone("phone", link=FlakyThenGoodLink(1))
            phone.port.corrupt_on_tear = True
            scenario.put(tag, phone)
            activity = scenario.start(phone, PlainNfcActivity)
            reference = make_reference(
                activity, tag, phone, mime_type=PAYLOAD_TYPE
            )
            done = EventLog()
            reference.write(
                "final", on_written=lambda r: done.append("ok"), timeout=10.0
            )
            if not done.wait_for_count(1, timeout=10):
                return False
            return tag.read_ndef()[0].payload == b"final"

    results = benchmark.pedantic(
        lambda: (
            recover(make_tag("NTAG216", content=message("original"))),
            recover(make_type4_tag("TYPE4_2K", content=message("original"))),
        ),
        rounds=1,
        iterations=1,
    )
    assert results == (True, True)


def test_type4_protocol_overhead(benchmark):
    """APDU round-trips per high-level operation (the atomicity price)."""

    def count_apdus() -> dict:
        read_tag = make_type4_tag(content=message("x" * 100))
        before = read_tag.apdu_count
        read_tag.read_ndef()
        read_cost = read_tag.apdu_count - before

        write_tag = make_type4_tag()
        before = write_tag.apdu_count
        write_tag.write_ndef(message("x" * 100))
        write_cost = write_tag.apdu_count - before
        return {"read": read_cost, "write": write_cost}

    costs = benchmark.pedantic(count_apdus, rounds=1, iterations=1)

    table = Table(
        "Type 4 protocol cost -- APDUs per operation (113-byte message)",
        ["operation", "APDU round-trips"],
    )
    for operation, cost in costs.items():
        table.add_row(operation, cost)
    table.print()

    # Reads: select app + select file + NLEN + data. Writes add the two
    # extra NLEN updates of the safe sequence.
    assert costs["read"] >= 4
    assert costs["write"] > costs["read"]
