"""Leasing ablation (paper section 6 future work, implemented here).

Two experiments:

* **Contention.** Two phones repeatedly try to lease the same tag. With
  the protocol in place, exactly one holds the lease at any moment and
  guarded writes by the non-holder are always denied.
* **Drift-bound sweep.** The paper assumes "the clock drift among Android
  devices is small enough to exclude practically all race conditions".
  The sweep quantifies the cost of that assumption: a foreign lease is
  honoured for ``drift_bound`` extra seconds after expiry, so larger
  bounds mean longer tag unavailability after a holder walks away.
* **Renewal coalescing.** Renewals issued while the tag is out of range
  tail-merge in the reference queue (the protocol merge hook), so
  redetection performs one physical write carrying the latest expiry --
  not one write per missed renewal beat.
"""

import time

import pytest

from repro.concurrent import EventLog
from repro.harness.report import Series, Table
from repro.harness.scenario import Scenario
from repro.leasing.manager import LeaseManager

from tests.conftest import PlainNfcActivity, make_reference, text_tag

DRIFT_BOUNDS = [0.0, 0.05, 0.15]


def two_phone_setup(scenario, drift_bound: float):
    tag = text_tag("contended")
    phone_a = scenario.add_phone("phone-a")
    phone_b = scenario.add_phone("phone-b")
    app_a = scenario.start(phone_a, PlainNfcActivity)
    app_b = scenario.start(phone_b, PlainNfcActivity)
    scenario.put(tag, phone_a)
    scenario.put(tag, phone_b)
    manager_a = LeaseManager(
        make_reference(app_a, tag, phone_a), "phone-a", drift_bound=drift_bound
    )
    manager_b = LeaseManager(
        make_reference(app_b, tag, phone_b), "phone-b", drift_bound=drift_bound
    )
    return tag, manager_a, manager_b


def attempt(manager, duration=0.5, timeout=5.0) -> bool:
    log = EventLog()
    manager.acquire(
        duration,
        on_acquired=lambda lease: log.append(True),
        on_denied=lambda: log.append(False),
        timeout=timeout,
    )
    assert log.wait_for_count(1, timeout=10)
    return log.snapshot()[0]


def release(manager) -> None:
    log = EventLog()
    manager.release(on_released=lambda: log.append("ok"))
    assert log.wait_for_count(1, timeout=10)


def test_lease_contention_mutual_exclusion(benchmark):
    def run() -> tuple:
        with Scenario() as scenario:
            _, manager_a, manager_b = two_phone_setup(scenario, drift_bound=0.0)
            rounds = 10
            exclusive_violations = 0
            denials = 0
            for _ in range(rounds):
                assert attempt(manager_a, duration=5.0)
                if attempt(manager_b, duration=5.0):
                    exclusive_violations += 1
                else:
                    denials += 1
                release(manager_a)
                # After a release the other side must win.
                assert attempt(manager_b, duration=5.0)
                release(manager_b)
            return rounds, denials, exclusive_violations

    rounds, denials, violations = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Leasing -- mutual exclusion over acquire/release rounds",
        ["rounds", "denials while held", "exclusivity violations"],
    )
    table.add_row(rounds, denials, violations)
    table.print()
    assert violations == 0
    assert denials == rounds


def test_drift_bound_availability_cost(benchmark):
    def measure(drift_bound: float) -> float:
        """Seconds after lease expiry until the other phone can acquire."""
        with Scenario() as scenario:
            _, manager_a, manager_b = two_phone_setup(scenario, drift_bound)
            lease_duration = 0.2
            assert attempt(manager_a, duration=lease_duration)
            expiry = manager_a.held_lease.expires_at
            clock = manager_a.reference.activity.device.environment.clock
            while True:
                acquired = attempt(manager_b, duration=1.0)
                if acquired:
                    return max(0.0, clock.now() - expiry)
                time.sleep(0.02)

    waits = benchmark.pedantic(
        lambda: [measure(bound) for bound in DRIFT_BOUNDS], rounds=1, iterations=1
    )

    series = Series(
        "post-expiry unavailability", "drift bound (s)", "extra wait (s)"
    )
    table = Table(
        "Leasing -- availability cost of the clock-drift assumption",
        ["drift bound (s)", "wait after expiry (s)"],
    )
    for bound, wait in zip(DRIFT_BOUNDS, waits):
        series.add(bound, wait)
        table.add_row(bound, round(wait, 3))
    table.print()

    # The wait grows with the drift bound and is at least the bound itself.
    for bound, wait in zip(DRIFT_BOUNDS, waits):
        assert wait >= bound * 0.9
    assert waits[-1] > waits[0]


def test_renewal_coalescing_one_write_per_tap(benchmark):
    """N away-time renewals settle with exactly 1 physical lease write."""
    renewal_counts = [1, 4, 10]

    def run_one(renewals_issued: int):
        with Scenario() as scenario:
            tag = text_tag("kept data")
            phone = scenario.add_phone("phone-a")
            app = scenario.start(phone, PlainNfcActivity)
            scenario.put(tag, phone)
            reference = make_reference(app, tag, phone)
            manager = LeaseManager(reference, "phone-a", drift_bound=0.0)
            assert attempt(manager, duration=120.0)
            scenario.take(tag, phone)

            renewed = EventLog()
            for _ in range(renewals_issued):
                manager.renew(
                    120.0, on_renewed=lambda lease: renewed.append(lease)
                )
            queued = reference.pending_count
            writes_before = phone.port.write_attempts
            scenario.put(tag, phone)
            assert renewed.wait_for_count(renewals_issued, timeout=10)
            physical = phone.port.write_attempts - writes_before
            latest = max(lease.expires_at for lease in renewed.snapshot())
            assert manager.held_lease.expires_at == latest
            return queued, physical, manager.stats_snapshot()[3]

    results = benchmark.pedantic(
        lambda: [run_one(n) for n in renewal_counts], rounds=1, iterations=1
    )

    table = Table(
        "Leasing -- away-time renewals collapse to one physical write",
        ["renewals queued", "physical writes", "merged"],
    )
    for (queued, physical, merged), issued in zip(results, renewal_counts):
        table.add_row(queued, physical, merged)
        assert queued == issued
        assert physical == 1
        assert merged == issued - 1
    table.print()
