"""Codec fast path + write coalescing micro-benchmarks.

Three claims, emitted to ``BENCH_codec.json``:

* **Plan cache.** Repeatedly pushing an unchanged object through the
  serialize -> NDEF pipeline is >= 3x faster with per-class serialization
  plans cached than with the honest no-cache baseline
  (``Gson(cache_plans=False)`` recomputes the MRO walks per object).
* **Write coalescing.** N redundant saves queued while the tag is away
  land in exactly 1 physical write, with all N success listeners firing
  in FIFO order; the uncoalesced baseline performs N physical writes.
* **NDEF encode memoization.** Re-encoding an unchanged message is a
  cache hit, so retries and re-taps never redo the byte assembly.
"""

import time

from repro.concurrent import EventLog
from repro.core.converters import ObjectToJsonConverter
from repro.gson import Gson
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.ndef import ENCODE_STATS

from tests.conftest import PlainNfcActivity, make_reference, text_tag

from benchmarks.conftest import emit_bench_json

# Deep hierarchy so per-object plan computation (transient/annotation MRO
# walks) is the dominant serialization cost, as it is for rich Thing
# class trees; every child object pays it again in the uncached variant.
_DEPTH = 12
_CHILDREN = 12
_QUEUED_SAVES = 16

# Accumulated across the tests in this module; each test re-emits the
# JSON so a filtered run (-k) still leaves a valid partial payload.
_PAYLOAD = {}


def _build_node_class():
    base = object
    for level in range(_DEPTH):
        namespace = {
            "__transient__": (f"s{level}a", f"s{level}b", f"s{level}c"),
            "__annotations__": {
                f"f{level}": int,
                f"g{level}": str,
                f"h{level}": float,
            },
        }
        base = type(f"BenchLevel{level}", (base,), namespace)
    return base


def _build_thing(node_class):
    root = node_class()
    root.f11 = 1
    root.g11 = "root"
    root.children = []
    for index in range(_CHILDREN):
        child = node_class()
        child.f11 = index
        child.g11 = f"child-{index}"
        root.children.append(child)
    return root


def _pipeline_ops_per_sec(converter, thing, iterations=400, rounds=3):
    """Best-of-``rounds`` throughput of convert -> encode-to-wire-bytes."""
    best = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iterations):
            converter.convert(thing).to_bytes()
        best = max(best, iterations / (time.perf_counter() - start))
    return best


def test_plan_cache_speedup():
    node_class = _build_node_class()
    thing = _build_thing(node_class)
    mime = "application/x-bench-node"
    cached = ObjectToJsonConverter(mime, gson=Gson())
    uncached = ObjectToJsonConverter(mime, gson=Gson(cache_plans=False))

    # Identical output first -- the cache must be a pure fast path.
    assert cached.convert(thing).to_bytes() == uncached.convert(thing).to_bytes()

    _pipeline_ops_per_sec(cached, thing, iterations=50, rounds=1)  # warm-up
    _pipeline_ops_per_sec(uncached, thing, iterations=50, rounds=1)
    cached_ops = _pipeline_ops_per_sec(cached, thing)
    uncached_ops = _pipeline_ops_per_sec(uncached, thing)
    speedup = cached_ops / uncached_ops

    table = Table(
        f"Codec pipeline: serialize -> NDEF bytes, depth-{_DEPTH} hierarchy, "
        f"{_CHILDREN} children",
        ["variant", "ops/sec", "speedup"],
    )
    table.add_row("plan cache", f"{cached_ops:,.0f}", f"{speedup:.2f}x")
    table.add_row("no cache", f"{uncached_ops:,.0f}", "1.00x")
    table.print()

    _PAYLOAD["pipeline"] = {
        "cached_ops_per_sec": round(cached_ops, 1),
        "uncached_ops_per_sec": round(uncached_ops, 1),
        "speedup": round(speedup, 2),
    }
    emit_bench_json("codec", _PAYLOAD)
    assert speedup >= 3.0, f"plan cache speedup {speedup:.2f}x below the 3x bar"


def _queued_saves_physical_writes(coalesce: bool):
    """Queue N redundant writes while the tag is away; return
    (physical writes, listener order) after one tap."""
    with Scenario() as scenario:
        phone = scenario.add_phone("phone")
        activity = scenario.start(phone, PlainNfcActivity)
        tag = text_tag("initial")
        reference = make_reference(
            activity, tag, phone, coalesce_writes=coalesce
        )
        completed = EventLog()
        for index in range(_QUEUED_SAVES):
            reference.write(
                f"save-{index}",
                on_written=lambda r, i=index: completed.append(i),
                timeout=30.0,
            )
        assert reference.pending_count == _QUEUED_SAVES
        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert completed.wait_for_count(_QUEUED_SAVES)
        assert tag.read_ndef()[0].payload.decode() == f"save-{_QUEUED_SAVES - 1}"
        return phone.port.write_attempts - writes_before, completed.snapshot()


def test_coalescing_collapses_redundant_saves():
    coalesced_writes, coalesced_order = _queued_saves_physical_writes(True)
    plain_writes, plain_order = _queued_saves_physical_writes(False)

    table = Table(
        f"Write coalescing -- {_QUEUED_SAVES} redundant saves queued while "
        "the tag is away, then one tap",
        ["variant", "physical writes", "listeners fired", "FIFO"],
    )
    fifo = list(range(_QUEUED_SAVES))
    table.add_row(
        "coalescing", coalesced_writes, len(coalesced_order),
        coalesced_order == fifo,
    )
    table.add_row(
        "every save", plain_writes, len(plain_order), plain_order == fifo
    )
    table.print()

    _PAYLOAD["coalescing"] = {
        "queued_saves": _QUEUED_SAVES,
        "physical_writes_coalesced": coalesced_writes,
        "physical_writes_uncoalesced": plain_writes,
        "listeners_fifo": coalesced_order == fifo,
    }
    emit_bench_json("codec", _PAYLOAD)

    assert coalesced_writes == 1
    assert coalesced_order == fifo
    assert plain_writes == _QUEUED_SAVES


def test_ndef_encode_memoization():
    node_class = _build_node_class()
    thing = _build_thing(node_class)
    converter = ObjectToJsonConverter("application/x-bench-node", gson=Gson())
    message = converter.convert(thing)

    ENCODE_STATS.reset()
    first = message.to_bytes()
    misses_after_first = ENCODE_STATS.misses
    repeats = 100
    for _ in range(repeats):
        assert message.to_bytes() == first  # retries re-serve cached bytes
    hit_ratio = ENCODE_STATS.hit_ratio

    table = Table(
        f"NDEF encode memoization -- 1 fresh encode + {repeats} re-encodes "
        "of the same message",
        ["hits", "misses", "hit ratio"],
    )
    table.add_row(ENCODE_STATS.hits, ENCODE_STATS.misses, f"{hit_ratio:.3f}")
    table.print()

    _PAYLOAD["ndef_encode_cache"] = {
        "hits": ENCODE_STATS.hits,
        "misses": ENCODE_STATS.misses,
        "hit_ratio": round(hit_ratio, 4),
    }
    emit_bench_json("codec", _PAYLOAD)

    assert ENCODE_STATS.misses == misses_after_first  # no re-encode cost
    assert hit_ratio > 0.9


def test_beam_payload_cache():
    """Re-broadcasting an unchanged thing reuses the converted payload.

    ``ThingBeamer`` keys on the canonical JSON text, so the hit path
    still pays the Gson walk (to compute the key) but skips record
    construction and NDEF byte assembly entirely -- repeat broadcasts
    add *zero* encode-cache misses.
    """
    from repro.core.beam import Beamer
    from repro.things.activity import ThingActivity, _ThingWriteConverter
    from repro.things.thing import Thing

    class BenchReading(Thing):
        def __init__(self, activity):
            super().__init__(activity)
            self.sensor = "temperature"
            self.samples = list(range(64))
            self.comment = "x" * 128

    class BenchReadingActivity(ThingActivity):
        THING_CLASS = BenchReading

    iterations = 2000
    with Scenario() as scenario:
        phone = scenario.add_phone("beam-bench")
        app = scenario.start(phone, BenchReadingActivity)
        thing = BenchReading(app)
        cached_beamer = app.thing_beamer  # ThingBeamer
        plain_beamer = Beamer(app, _ThingWriteConverter(app, app.gson))
        try:
            cached_beamer._convert_payload(thing)  # prime the cache
            ENCODE_STATS.reset()
            start = time.perf_counter()
            for _ in range(iterations):
                cached_beamer._convert_payload(thing)
            cached_ops = iterations / (time.perf_counter() - start)
            cached_encode_misses = ENCODE_STATS.misses

            start = time.perf_counter()
            for _ in range(iterations):
                plain_beamer._convert_payload(thing).to_bytes()
            plain_ops = iterations / (time.perf_counter() - start)

            hits = cached_beamer.payload_hits
            misses = cached_beamer.payload_misses
        finally:
            plain_beamer.stop()

    speedup = cached_ops / plain_ops
    table = Table(
        f"Beam payload cache -- {iterations} re-broadcasts of an unchanged "
        "thing",
        ["variant", "ops/sec", "encode misses", "speedup"],
    )
    table.add_row(
        "payload cache", f"{cached_ops:,.0f}", cached_encode_misses,
        f"{speedup:.2f}x",
    )
    table.add_row("convert per beam", f"{plain_ops:,.0f}", iterations, "1.00x")
    table.print()

    _PAYLOAD["beam"] = {
        "iterations": iterations,
        "cached_ops_per_sec": round(cached_ops, 1),
        "uncached_ops_per_sec": round(plain_ops, 1),
        "speedup": round(speedup, 2),
        "payload_hits": hits,
        "encode_misses_while_hitting": cached_encode_misses,
    }
    emit_bench_json("codec", _PAYLOAD)

    assert hits == iterations and misses == 1
    assert cached_encode_misses == 0  # hit path never re-encodes
    assert speedup > 1.0, f"payload cache slower than converting: {speedup:.2f}x"
