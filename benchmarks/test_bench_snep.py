"""SNEP ablation: fragmentation overhead vs MIU.

Beam transfers run SNEP with a maximum information unit (MIU); smaller
MIUs mean more radio round-trips per message and a bigger tear window.
This bench sweeps the MIU for a 1 KiB beamed message and reports
fragments per delivery plus the delivery rate under a per-fragment lossy
link -- the series behind the choice of the default 128-byte MIU.
"""

from repro.concurrent import EventLog
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.radio.link import LossyLink

MIUS = [32, 128, 512]
MESSAGE_BYTES = 1024
TRANSFERS = 15


def run(miu: int, loss: float, seed: int) -> tuple:
    """Returns (fragments for one clean PUT, delivery rate under loss)."""
    payload = NdefMessage(
        [mime_record("application/x-snep-bench", bytes(MESSAGE_BYTES))]
    )
    with Scenario() as scenario:
        sender = scenario.add_phone("sender")
        receiver = scenario.add_phone("receiver")
        received = EventLog()
        receiver.port.set_beam_handler(
            lambda peer, message: received.append(len(message[0].payload))
        )
        scenario.pair(sender, receiver)

        # Clean link: count fragments for one PUT.
        sender.port.beam(payload, miu=miu)
        clean_frames = receiver.port.snep_server.frames_processed

        # Lossy link: each fragment is a separate chance to tear.
        sender.port.set_link(LossyLink(loss, seed=seed))
        delivered = 0
        for _ in range(TRANSFERS):
            try:
                sender.port.beam(payload, miu=miu)
                delivered += 1
            except Exception:  # noqa: BLE001 - tears counted, not raised
                pass
        return clean_frames, delivered / TRANSFERS


def test_miu_sweep(benchmark):
    loss = 0.02  # 2% per fragment
    rows = benchmark.pedantic(
        lambda: [(miu,) + run(miu, loss, seed=5) for miu in MIUS],
        rounds=1,
        iterations=1,
    )

    table = Table(
        f"SNEP ablation -- {MESSAGE_BYTES}-byte beam, {loss:.0%} loss per fragment",
        ["MIU", "fragments/PUT", "delivery rate"],
    )
    for miu, fragments, rate in rows:
        table.add_row(miu, fragments, rate)
    table.print()

    fragments = [f for _, f, _ in rows]
    # More MIU, fewer fragments -- strictly decreasing over this sweep.
    assert fragments[0] > fragments[1] > fragments[2]
    # With per-fragment loss, fewer fragments means equal-or-better delivery.
    rates = [r for _, _, r in rows]
    assert rates[2] >= rates[0]
