"""Cross-tag fairness: head-of-line blocking under co-present tags.

The per-port transaction scheduler (PR 5) batches all of one tag's work
through one session — which is exactly wrong when several tags are
co-present and one of them is *hot*: under the legacy whole-tag drain a
deep backlog head-of-line blocks every neighbour until it is empty. The
cross-tag service policies bound each tag's turn instead.

Experiment: 1 hot tag (a deep write backlog) + 7 cold tags (modest
backlogs) enter one phone's field together, under a realistic latency
model. Per policy we measure, from the scheduler's own telemetry and
the settlement timestamps:

* per-tag **time-to-first-service** (field entry -> first settled op) --
  the head-of-line number; reported p50/p99 over the cold tags;
* cold-tag **service latency** (field entry -> op settled) p50/p99;
* **Jain's fairness index** over per-tag ops completed inside the
  contention window (up to the first moment any tag's backlog ran dry
  -- while every tag still has queued work, a fair scheduler gives
  every tag a near-equal share);
* aggregate throughput and connect rounds -- fairness is not free: each
  preemption re-selects a tag and pays a fresh connect. The single-tag
  control re-runs PR 5's co-located workload under both policies to pin
  that the fair default costs a lone tag nothing.

Emits ``BENCH_fairness.json``.
"""

import time

from repro.android.nfc.tech import Tag
from repro.concurrent import EventLog
from repro.core.reference import TagReference
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.metrics import LatencySummary, jains_index, percentile
from repro.radio.timing import TransferTiming

from benchmarks.conftest import emit_bench_json
from tests.conftest import PlainNfcActivity, string_converters, text_tag

HOT_OPS = 128
COLD_TAGS = 7
COLD_OPS = 16
TOTAL_OPS = HOT_OPS + COLD_TAGS * COLD_OPS

# Realistic transfer model: connect and data shares of the same order,
# so both batching (fewer connects) and interleaving (bounded turns)
# are visible in wall time.
TIMING = TransferTiming(
    base_seconds=0.008, seconds_per_byte=5e-5, connect_share=0.5
)

POLICY_VARIANTS = ("drain", "round_robin", "deficit")

_PAYLOAD = {}


def run_hot_cold_field(policy: str) -> dict:
    """1 hot + 7 cold tags enter together under ``policy``; returns the
    fairness/HOL measurements for that run."""
    with Scenario(timing=TIMING) as scenario:
        phone = scenario.add_phone("fair-phone", tx_policy=policy)
        activity = scenario.start(phone, PlainNfcActivity)
        clock = scenario.env.clock
        read_conv, write_conv = string_converters()

        hot_tag = text_tag("hot")
        cold_tags = [text_tag(f"cold-{i}") for i in range(COLD_TAGS)]
        tags = [hot_tag] + cold_tags  # hot first: worst case for drain
        refs = [
            TagReference(Tag(tag, phone.port), activity, read_conv, write_conv)
            for tag in tags
        ]

        # (tag_index, settle_time) per settled op, appended from the
        # main looper (single thread, but EventLog is safe regardless).
        settled = EventLog()

        def note(tag_index):
            settled.append((tag_index, clock.now()))

        for op in range(HOT_OPS):
            refs[0].write(
                f"h{op}", coalesce=False, timeout=120.0,
                on_written=lambda _r, i=0: note(i),
            )
        for cold_index in range(COLD_TAGS):
            for op in range(COLD_OPS):
                refs[1 + cold_index].write(
                    f"c{cold_index}-{op}", coalesce=False, timeout=120.0,
                    on_written=lambda _r, i=1 + cold_index: note(i),
                )

        connects_before = phone.port.connects
        entered_at = clock.now()
        started = time.perf_counter()
        scenario.env.move_tags_into_field(tags, phone.port)
        assert settled.wait_for_count(TOTAL_OPS, timeout=120)
        elapsed = time.perf_counter() - started
        connects = phone.port.connects - connects_before
        snapshot = phone.tx_scheduler.stats_snapshot()

        events = settled.snapshot()
        # Contention window: until the first tag's backlog ran dry every
        # tag had queued work, so shares are comparable.
        backlog = {0: HOT_OPS}
        backlog.update({1 + i: COLD_OPS for i in range(COLD_TAGS)})
        finish = {}
        for tag_index, at in events:
            backlog[tag_index] -= 1
            if backlog[tag_index] == 0:
                finish[tag_index] = at
        window_end = min(finish.values())
        in_window = [0] * len(tags)
        for tag_index, at in events:
            if at <= window_end:
                in_window[tag_index] += 1
        fairness = jains_index(in_window)

        cold_ttfs = [
            snapshot["tags"][tag.uid_hex]["time_to_first_service"]
            for tag in cold_tags
        ]
        cold_latencies = [
            at - entered_at for tag_index, at in events if tag_index >= 1
        ]
        return {
            "policy": policy,
            "hot_ops": HOT_OPS,
            "cold_tags": COLD_TAGS,
            "cold_ops_per_tag": COLD_OPS,
            "elapsed_seconds": round(elapsed, 4),
            "ops_per_second": round(TOTAL_OPS / elapsed, 1),
            "connects": connects,
            "preemptions": snapshot["preemptions"],
            "jain_index_contention_window": round(fairness, 4),
            "window_ops_per_tag": in_window,
            "cold_ttfs_p50_seconds": round(percentile(cold_ttfs, 50), 4),
            "cold_ttfs_p99_seconds": round(percentile(cold_ttfs, 99), 4),
            "cold_service_latency": {
                key: (round(value, 4) if isinstance(value, float) else value)
                for key, value in LatencySummary(cold_latencies)
                .as_dict()
                .items()
            },
        }


# Single-tag control: PR 5's co-located workload (8 refs x 2 ops on one
# tag), which must not regress under the fair default -- a lone tag's
# quantum renews in place, so the whole backlog still rides one connect.
CONTROL_REFS = 8
CONTROL_OPS_PER_REF = 2
CONTROL_TIMING = TransferTiming(base_seconds=0.02, seconds_per_byte=1e-4)


def run_single_tag_control(policy: str) -> dict:
    with Scenario(timing=CONTROL_TIMING) as scenario:
        phone = scenario.add_phone("control-phone", tx_policy=policy)
        activity = scenario.start(phone, PlainNfcActivity)
        tag = text_tag("seed")
        read_conv, write_conv = string_converters()
        refs = [
            TagReference(Tag(tag, phone.port), activity, read_conv, write_conv)
            for _ in range(CONTROL_REFS)
        ]
        done = EventLog()
        for ref_index, ref in enumerate(refs):
            for op_index in range(CONTROL_OPS_PER_REF):
                ref.write(
                    f"r{ref_index}-o{op_index}",
                    on_written=lambda _r: done.append(1),
                    timeout=30.0,
                )
        total = CONTROL_REFS * CONTROL_OPS_PER_REF
        connects_before = phone.port.connects
        started = time.perf_counter()
        scenario.put(tag, phone)
        assert done.wait_for_count(total, timeout=30)
        elapsed = time.perf_counter() - started
        return {
            "policy": policy,
            "ops": total,
            "seconds": round(elapsed, 4),
            "ops_per_second": round(total / elapsed, 1),
            "connects": phone.port.connects - connects_before,
        }


def test_fair_policies_unblock_cold_tags(benchmark):
    results = {}
    for policy in POLICY_VARIANTS:
        if policy == "deficit":
            results[policy] = benchmark.pedantic(
                run_hot_cold_field, args=(policy,), rounds=1, iterations=1
            )
        else:
            results[policy] = run_hot_cold_field(policy)

    table = Table(
        f"Cross-tag fairness -- 1 hot tag ({HOT_OPS} writes) + "
        f"{COLD_TAGS} cold tags ({COLD_OPS} writes each), one field",
        [
            "policy",
            "cold TTFS p99 (s)",
            "Jain (window)",
            "ops/s",
            "connects",
            "preempts",
        ],
    )
    for policy, row in results.items():
        table.add_row(
            policy,
            row["cold_ttfs_p99_seconds"],
            row["jain_index_contention_window"],
            row["ops_per_second"],
            row["connects"],
            row["preemptions"],
        )
    table.print()

    drain, deficit = results["drain"], results["deficit"]
    ttfs_improvement = (
        drain["cold_ttfs_p99_seconds"] / deficit["cold_ttfs_p99_seconds"]
    )
    # The acceptance bar: deficit-weighted scheduling cuts the cold
    # tags' p99 time-to-first-service by at least 3x and shares the
    # contention window near-equally.
    assert ttfs_improvement >= 3.0
    assert deficit["jain_index_contention_window"] >= 0.9
    # The drain ablation really does starve: one tag owns the window.
    assert drain["jain_index_contention_window"] <= 0.5
    # Interleaving pays connects for fairness, but stays far below one
    # connect per operation.
    assert deficit["connects"] < TOTAL_OPS / 2

    _PAYLOAD["hot_cold_field"] = {
        "total_ops": TOTAL_OPS,
        "timing": {
            "base_seconds": TIMING.base_seconds,
            "seconds_per_byte": TIMING.seconds_per_byte,
            "connect_share": TIMING.connect_share,
        },
        "cold_ttfs_p99_improvement_vs_drain": round(ttfs_improvement, 2),
        "policies": results,
    }
    emit_bench_json("fairness", _PAYLOAD)


def test_single_tag_throughput_not_taxed_by_fairness(benchmark):
    drain = run_single_tag_control("drain")
    deficit = benchmark.pedantic(
        run_single_tag_control, args=("deficit",), rounds=1, iterations=1
    )

    table = Table(
        f"Single-tag control -- {CONTROL_REFS} co-located references x "
        f"{CONTROL_OPS_PER_REF} writes (PR 5's workload)",
        ["policy", "seconds", "ops/s", "connects"],
    )
    for row in (drain, deficit):
        table.add_row(
            row["policy"], row["seconds"], row["ops_per_second"], row["connects"]
        )
    table.print()

    # A lone tag pays exactly one connect under either policy (the
    # deficit quantum renews in place with nobody else waiting)...
    assert drain["connects"] == 1
    assert deficit["connects"] == 1
    # ...and the fair default keeps aggregate throughput within 10%.
    assert deficit["ops_per_second"] >= 0.9 * drain["ops_per_second"]

    _PAYLOAD["single_tag_control"] = {
        "drain": drain,
        "deficit": deficit,
        "throughput_ratio": round(
            deficit["ops_per_second"] / drain["ops_per_second"], 3
        ),
    }
    emit_bench_json("fairness", _PAYLOAD)
