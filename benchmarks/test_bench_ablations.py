"""Micro-ablations for the design choices DESIGN.md calls out.

* NDEF codec throughput (encode/decode of a realistic message);
* GSON-style serialization cost vs hand-written json.dumps (what the
  thing layer pays for automatic conversion);
* tag-reference event-loop throughput (queued writes per second while
  the tag stays in range);
* retry-interval sweep: time-to-success on a lossy link as a function of
  the reference's retry pacing.
"""

import json
import time

import pytest

from repro.concurrent import EventLog
from repro.gson import Gson
from repro.harness.report import Series, Table
from repro.harness.scenario import Scenario
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.radio.link import LossyLink

from tests.conftest import PlainNfcActivity, make_reference, text_tag


class TestNdefCodec:
    def test_encode_throughput(self, benchmark):
        message = NdefMessage(
            [mime_record("a/b", bytes(range(256)) * 4) for _ in range(4)]
        )
        encoded = benchmark(message.to_bytes)
        assert NdefMessage.from_bytes(encoded) == message

    def test_decode_throughput(self, benchmark):
        message = NdefMessage(
            [mime_record("a/b", bytes(range(256)) * 4) for _ in range(4)]
        )
        data = message.to_bytes()
        decoded = benchmark(NdefMessage.from_bytes, data)
        assert decoded == message


class Config:
    ssid: str
    key: str

    def __init__(self, ssid="network-name", key="secret-key-123"):
        self.ssid = ssid
        self.key = key


class TestSerializationCost:
    def test_gson_roundtrip(self, benchmark):
        gson = Gson()

        def roundtrip():
            return gson.from_json(gson.to_json(Config()), Config)

        result = benchmark(roundtrip)
        assert result.ssid == "network-name"

    def test_manual_json_roundtrip(self, benchmark):
        def roundtrip():
            text = json.dumps(
                {"ssid": "network-name", "key": "secret-key-123"}, sort_keys=True
            )
            data = json.loads(text)
            return Config(data["ssid"], data["key"])

        result = benchmark(roundtrip)
        assert result.ssid == "network-name"


class TestEventLoopThroughput:
    def test_queued_write_throughput(self, benchmark):
        """Writes per second through one reference's private event loop."""
        writes = 100

        def run() -> float:
            with Scenario() as scenario:
                phone = scenario.add_phone("phone")
                activity = scenario.start(phone, PlainNfcActivity)
                tag = text_tag("x", tag_type="SIMTAG_4K")
                scenario.put(tag, phone)
                reference = make_reference(activity, tag, phone)
                done = EventLog()
                start = time.monotonic()
                for index in range(writes):
                    reference.write(
                        f"w{index}",
                        on_written=lambda r: done.append(1),
                        timeout=30.0,
                    )
                assert done.wait_for_count(writes, timeout=30)
                return writes / (time.monotonic() - start)

        ops_per_second = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nreference event loop: {ops_per_second:.0f} writes/s")
        assert ops_per_second > 100


RETRY_INTERVALS = [0.005, 0.02, 0.08]


class TestRetryIntervalSweep:
    def test_time_to_success_vs_retry_interval(self, benchmark):
        def measure(interval: float) -> float:
            from repro.android.nfc.tech import Tag
            from tests.conftest import string_converters

            with Scenario() as scenario:
                # Seed 5 gives six tears before the first success, so the
                # time-to-success is dominated by the retry pacing.
                phone = scenario.add_phone(
                    "phone", link=LossyLink(0.7, seed=5)
                )
                activity = scenario.start(phone, PlainNfcActivity)
                tag = text_tag("retry")
                scenario.put(tag, phone)
                read_conv, write_conv = string_converters()
                from repro.core.reference import TagReference

                reference = TagReference(
                    Tag(tag, phone.port),
                    activity,
                    read_conv,
                    write_conv,
                    retry_interval=interval,
                )
                done = EventLog()
                start = time.monotonic()
                reference.write(
                    "payload", on_written=lambda r: done.append(1), timeout=30.0
                )
                assert done.wait_for_count(1, timeout=30)
                elapsed = time.monotonic() - start
                reference.stop()
                return elapsed

        timings = benchmark.pedantic(
            lambda: [measure(interval) for interval in RETRY_INTERVALS],
            rounds=1,
            iterations=1,
        )

        series = Series("time to success", "retry interval (s)", "seconds")
        table = Table(
            "Ablation -- retry pacing on a 70%-loss link",
            ["retry interval (s)", "time to success (s)"],
        )
        for interval, elapsed in zip(RETRY_INTERVALS, timings):
            series.add(interval, elapsed)
            table.add_row(interval, round(elapsed, 4))
        table.print()

        # Six retries at the coarsest pacing dominate any scheduling noise:
        # the sweep must be monotone from finest to coarsest interval.
        assert timings[0] < timings[-1]
        assert timings[-1] >= 6 * RETRY_INTERVALS[-1] * 0.8
