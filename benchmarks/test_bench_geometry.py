"""Geometry ablation: success rate vs phone-tag distance.

The spatial environment models the paper's physical premise ("NFC ...
only has a range of a few centimeters", failures dominated by hand
position). This bench sweeps the distance between a phone and a tag and
reports the raw single-attempt success rate next to the success rate of a
MORENA read given a fixed 100 ms interaction window -- showing how the
middleware converts a steep physical cliff into a much wider usable zone.
"""

from repro.android.device import AndroidDevice
from repro.concurrent import EventLog
from repro.errors import NotInFieldError, TagLostError
from repro.harness.report import Series, Table
from repro.radio.geometry import SpatialEnvironment

from tests.conftest import PlainNfcActivity, make_reference, text_tag

DISTANCES = [0.010, 0.022, 0.030, 0.038, 0.050]
RAW_ATTEMPTS = 200


def raw_success_rate(distance: float) -> float:
    env = SpatialEnvironment(reliable_range=0.02, max_range=0.04, seed=21)
    port = env.create_port("probe")
    tag = text_tag("raw")
    env.place_phone(port, 0.0, 0.0)
    env.place_tag(tag, distance, 0.0)
    successes = 0
    for _ in range(RAW_ATTEMPTS):
        try:
            port.read_ndef(tag)
            successes += 1
        except (TagLostError, NotInFieldError):
            pass
    return successes / RAW_ATTEMPTS


def morena_success_rate(distance: float, window_seconds: float = 0.1) -> float:
    """Fraction of 10 independent 100 ms interactions whose read lands."""
    sessions = 10
    landed = 0
    for session in range(sessions):
        env = SpatialEnvironment(
            reliable_range=0.02, max_range=0.04, seed=100 + session
        )
        phone = AndroidDevice("visitor", env)
        try:
            activity = phone.start_activity(PlainNfcActivity)
            tag = text_tag("morena")
            env.place_phone(phone.port, 0.0, 0.0)
            env.place_tag(tag, distance, 0.0)
            done = EventLog()
            reference = make_reference(activity, tag, phone)
            reference.read(on_read=lambda r: done.append("ok"), timeout=30.0)
            if done.wait_for_count(1, timeout=window_seconds):
                landed += 1
        finally:
            phone.shutdown()
    return landed / sessions


def test_success_rate_vs_distance(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (d, raw_success_rate(d), morena_success_rate(d)) for d in DISTANCES
        ],
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Geometry ablation -- success rate vs distance "
        "(reliable 2 cm, max 4 cm)",
        ["distance (m)", "raw attempt", "MORENA read in 100 ms"],
    )
    raw_series = Series("raw", "distance", "success rate")
    for distance, raw, morena in rows:
        table.add_row(distance, raw, morena)
        raw_series.add(distance, raw)
    table.print()

    by_distance = {distance: (raw, morena) for distance, raw, morena in rows}
    # Inside the reliable zone everything works.
    assert by_distance[0.010] == (1.0, 1.0)
    # Beyond max range nothing works.
    assert by_distance[0.050] == (0.0, 0.0)
    # Raw success decays monotonically through the edge band.
    raw_rates = [raw for _, raw, _ in rows]
    assert all(a >= b for a, b in zip(raw_rates, raw_rates[1:]))
    # In the middle of the edge band, retries beat single attempts.
    mid_raw, mid_morena = by_distance[0.030]
    assert mid_morena >= mid_raw
