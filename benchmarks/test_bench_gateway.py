"""Fleet gateway ingestion: sustained throughput and the shard ablation.

Two experiments, one JSON (``BENCH_gateway.json``):

* ``fleet_10k`` — 10,000 simulated devices (one
  :class:`GatewayReporter` per station) replay a seeded turnstile rush
  through a 4-shard gateway on the threaded reactor; reported rows are
  sustained ingested events/second wall-clock and the p99 ingest
  latency (submit -> applied-to-views), both guarded in CI.
* ``shard_ablation`` — the perf claim itself: the same producer load
  (several threads submitting as fast as they can, bounded queues,
  oldest-shedding) against 1 shard vs ``SHARDS`` shards with the
  **total** queue capacity equalized. One shard means one serial drain
  task: under multi-threaded pressure it starves, its queue sits full
  (shedding, high queue wait), and *sustained ingested* events/second —
  throughput net of drops — is what the sharded layout wins on. The
  bench asserts the win outright.

Unlike the virtual-time benches this one is wall-clock by necessity
(queue-wait latency under thread contention is the phenomenon), so the
guarded tolerances are generous.
"""

from __future__ import annotations

import threading
import time

from repro.clock import SystemClock
from repro.core.scheduler import Reactor
from repro.gateway import FleetGateway, ScanEvent, make_fleet_reporters, simulate_fleet
from repro.harness.crowd import turnstile_rush
from repro.harness.report import Table

from benchmarks.conftest import emit_bench_json

FLEET_DEVICES = 10_000
FLEET_TAGS = 20_000
FLEET_SHARDS = 4

ABLATION_PRODUCERS = 6
ABLATION_SECONDS = 0.6
ABLATION_TOTAL_QUEUE = 16_384  # split across shards: capacity is equalized
ABLATION_SHARDS = 4
ABLATION_TAGS_PER_PRODUCER = 512


def run_fleet_10k() -> dict:
    """10k stations replay a rush-hour schedule; measure wall ingestion."""
    clock = SystemClock()
    reactor = Reactor(clock=clock, name="bench-fleet")
    gateway = FleetGateway(
        reactor, clock=clock, shards=FLEET_SHARDS, window_seconds=60.0
    )
    try:
        schedule = turnstile_rush(
            FLEET_DEVICES,
            FLEET_TAGS,
            duration_seconds=3.0,
            arrivals_per_second=3000.0,
            seed=42,
        )
        reporters = make_fleet_reporters(
            gateway, FLEET_DEVICES, max_batch=32
        )
        started = time.monotonic()
        stats = simulate_fleet(gateway, schedule, reporters, seed=42)
        drained = gateway.drain(timeout=30.0)
        elapsed = time.monotonic() - started
        assert drained, "gateway failed to drain the fleet replay"
        telemetry = gateway.telemetry()
        latency = gateway.ingest_latency()
        assert telemetry["events_ingested"] > 0
        return {
            "devices": FLEET_DEVICES,
            "tags": FLEET_TAGS,
            "shards": FLEET_SHARDS,
            "events_recorded": stats.events_recorded,
            "events_ingested": telemetry["events_ingested"],
            "events_dropped_queue": telemetry["events_dropped_queue"],
            "events_dropped_reporter": telemetry["events_dropped_reporter"],
            "batches": telemetry["batches"],
            "wall_seconds": round(elapsed, 4),
            "events_per_second": round(
                telemetry["events_ingested"] / elapsed, 1
            ),
            "ingest_p50_seconds": latency.p50,
            "ingest_p99_seconds": latency.p99,
        }
    finally:
        gateway.close()
        reactor.stop()


def run_shard_ablation(shards: int) -> dict:
    """Fixed producer pressure for ``ABLATION_SECONDS``; vary shard count."""
    clock = SystemClock()
    reactor = Reactor(clock=clock, name=f"bench-ablate-{shards}")
    gateway = FleetGateway(
        reactor,
        clock=clock,
        shards=shards,
        max_queue=ABLATION_TOTAL_QUEUE // shards,
        max_batch=128,
    )
    stop = threading.Event()
    submitted_counts = [0] * ABLATION_PRODUCERS

    def produce(slot: int) -> None:
        # Distinct tag slices per producer so the hash spreads shards.
        uids = [
            f"tag-{slot:02d}-{i:04d}" for i in range(ABLATION_TAGS_PER_PRODUCER)
        ]
        station = f"station-{slot:02d}"
        index = 0
        while not stop.is_set():
            gateway.submit(
                ScanEvent("scan", uids[index % len(uids)], station, clock.now())
            )
            index += 1
        submitted_counts[slot] = index

    threads = [
        threading.Thread(target=produce, args=(slot,), daemon=True)
        for slot in range(ABLATION_PRODUCERS)
    ]
    started = time.monotonic()
    try:
        for thread in threads:
            thread.start()
        time.sleep(ABLATION_SECONDS)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        drained = gateway.drain(timeout=30.0)
        elapsed = time.monotonic() - started
        assert drained, f"{shards}-shard gateway failed to drain"
        telemetry = gateway.telemetry()
        latency = gateway.ingest_latency()
        return {
            "shards": shards,
            "producers": ABLATION_PRODUCERS,
            "queue_per_shard": ABLATION_TOTAL_QUEUE // shards,
            "events_submitted": telemetry["events_submitted"],
            "events_ingested": telemetry["events_ingested"],
            "events_dropped_queue": telemetry["events_dropped_queue"],
            "queue_high_water": telemetry["queue_high_water"],
            "wall_seconds": round(elapsed, 4),
            "events_per_second": round(
                telemetry["events_ingested"] / elapsed, 1
            ),
            "ingest_p99_seconds": latency.p99,
        }
    finally:
        gateway.close()
        reactor.stop()


def test_gateway_ingestion(benchmark):
    fleet = benchmark.pedantic(run_fleet_10k, rounds=1, iterations=1)
    single = run_shard_ablation(1)
    sharded = run_shard_ablation(ABLATION_SHARDS)

    table = Table(
        f"Fleet gateway -- {FLEET_DEVICES} devices, then "
        f"{ABLATION_PRODUCERS}-thread pressure ablation (wall clock)",
        ["experiment", "ingested", "dropped", "events/s", "p99 ingest (s)"],
    )
    table.add_row(
        f"fleet replay ({FLEET_SHARDS} shards)",
        fleet["events_ingested"],
        fleet["events_dropped_queue"],
        fleet["events_per_second"],
        round(fleet["ingest_p99_seconds"], 5),
    )
    for row in (single, sharded):
        table.add_row(
            f"pressure, {row['shards']} shard(s)",
            row["events_ingested"],
            row["events_dropped_queue"],
            row["events_per_second"],
            round(row["ingest_p99_seconds"], 5),
        )
    table.print()

    # The fleet replay must be lossless at this load.
    assert fleet["events_dropped_queue"] == 0
    assert fleet["events_ingested"] == fleet["events_recorded"]
    # The perf claim: N serial drain tasks sustain more ingested
    # events/second under the same producer pressure than one.
    assert sharded["events_per_second"] > single["events_per_second"], (
        f"sharding did not win: {ABLATION_SHARDS} shards "
        f"{sharded['events_per_second']}/s vs 1 shard "
        f"{single['events_per_second']}/s"
    )

    emit_bench_json(
        "gateway",
        {
            "fleet_10k": fleet,
            "shard_ablation": {
                "single": single,
                "sharded": sharded,
                "speedup": round(
                    sharded["events_per_second"]
                    / max(single["events_per_second"], 1e-9),
                    3,
                ),
            },
        },
    )
