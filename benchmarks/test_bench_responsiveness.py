"""Section 1.1 responsiveness claim.

"Read and write operations on RFID tags are blocking operations in the
Android NFC API ... the application becomes unresponsive when not
carefully used."

Experiment: with a realistic transfer latency, an application issues a
tag read and immediately afterwards a UI event lands on the main looper.
The naive blocking style (tag I/O on the main thread) delays the UI
event by the full transfer time; MORENA's asynchronous read keeps the
main loop free, so the UI event runs at once.
"""

import time

from repro.concurrent import EventLog
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.radio.timing import TransferTiming

from tests.conftest import PlainNfcActivity, make_reference, text_tag

TRANSFER = TransferTiming(base_seconds=0.15, seconds_per_byte=0.0)


def ui_latency_blocking() -> float:
    """Naive style: the blocking read runs on the main looper."""
    with Scenario(timing=TRANSFER) as scenario:
        phone = scenario.add_phone("phone")
        scenario.start(phone, PlainNfcActivity)
        tag = text_tag("payload")
        scenario.put(tag, phone)
        log = EventLog()

        def blocking_read():
            phone.port.read_ndef(tag)  # what the docs tell you NOT to do

        issued = time.monotonic()
        phone.main_looper.post(blocking_read)
        phone.main_looper.post(lambda: log.append(time.monotonic() - issued))
        assert log.wait_for_count(1, timeout=5)
        return log.snapshot()[0]


def ui_latency_morena() -> float:
    """MORENA style: asynchronous read, UI event unobstructed."""
    with Scenario(timing=TRANSFER) as scenario:
        phone = scenario.add_phone("phone")
        activity = scenario.start(phone, PlainNfcActivity)
        tag = text_tag("payload")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        log = EventLog()
        read_done = EventLog()

        issued = time.monotonic()
        reference.read(on_read=lambda r: read_done.append(r.cached))
        phone.main_looper.post(lambda: log.append(time.monotonic() - issued))
        assert log.wait_for_count(1, timeout=5)
        latency = log.snapshot()[0]
        # The read itself still completes -- just not on the UI's dime.
        assert read_done.wait_for_count(1, timeout=5)
        return latency


def test_ui_event_latency_during_tag_io(benchmark):
    blocking_ms, morena_ms = benchmark.pedantic(
        lambda: (ui_latency_blocking() * 1000, ui_latency_morena() * 1000),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Section 1.1 responsiveness -- UI event latency during one tag read "
        f"(transfer time {TRANSFER.base_seconds * 1000:.0f} ms)",
        ["style", "UI event latency (ms)"],
    )
    table.add_row("blocking (naive Android)", round(blocking_ms, 1))
    table.add_row("MORENA (async reference)", round(morena_ms, 1))
    table.print()

    assert blocking_ms >= TRANSFER.base_seconds * 1000 * 0.9
    assert morena_ms < blocking_ms / 3
